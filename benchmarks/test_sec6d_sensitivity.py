"""Sec. VI-D — sensitivity analysis.

The paper's sensitivity discussion makes three testable points:

* way prediction degrades on streaming workloads (mcf-like): coverage and the
  resulting energy benefit drop sharply compared to cache-friendly workloads;
* MALEC's performance is primarily limited by the number of memory references
  issued per cycle and the number of result buses — shrinking the result-bus
  count costs performance, growing it beyond four does not help much;
* L1 access latency shifts all configurations consistently (already shown per
  configuration in Fig. 4a; here swept for MALEC at 1/2/3 cycles).
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from benchmarks.conftest import TRACE_INSTRUCTIONS, WARMUP_FRACTION
from repro.analysis.reporting import format_table
from repro.sim.config import MalecParameters, SimulationConfig
from repro.sim.simulator import run_configuration
from repro.workloads.suites import benchmark_profile
from repro.workloads.synthetic import generate_trace


def _trace(name):
    return generate_trace(benchmark_profile(name), instructions=TRACE_INSTRUCTIONS)


def test_sec6d_streaming_workloads_defeat_way_prediction(benchmark):
    def run():
        rows = []
        for name in ("djpeg", "gzip", "art", "mcf"):
            result = run_configuration(
                SimulationConfig.malec(), _trace(name), warmup_fraction=WARMUP_FRACTION
            )
            rows.append([name, result.way_coverage, result.l1_load_miss_rate])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nSec. VI-D — way-determination coverage vs access locality")
    print(format_table(["benchmark", "coverage", "L1 load miss rate"], rows))

    by_name = {row[0]: row for row in rows}
    # Streaming benchmarks (mcf, art) have far lower coverage than local ones.
    assert by_name["djpeg"][1] > by_name["mcf"][1] + 0.2
    assert by_name["gzip"][1] > by_name["art"][1]


def test_sec6d_result_bus_sensitivity(benchmark):
    def run():
        trace = _trace("djpeg")
        rows = []
        for buses in (1, 2, 4, 6):
            config = SimulationConfig.malec(
                name=f"MALEC_{buses}buses",
                malec_options=MalecParameters(result_buses=buses),
            )
            result = run_configuration(config, trace, warmup_fraction=WARMUP_FRACTION)
            rows.append([buses, result.cycles])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nSec. VI-D — sensitivity to the number of result buses (djpeg)")
    print(format_table(["result buses", "cycles"], rows))

    cycles = {buses: value for buses, value in rows}
    # Fewer result buses cost performance; beyond four the gain saturates.
    assert cycles[1] >= cycles[4]
    assert abs(cycles[6] - cycles[4]) <= 0.05 * cycles[4]


def test_sec6d_l1_latency_sweep(benchmark):
    def run():
        trace = _trace("gzip")
        rows = []
        for latency in (1, 2, 3):
            config = SimulationConfig.malec(l1_hit_latency=latency)
            result = run_configuration(config, trace, warmup_fraction=WARMUP_FRACTION)
            rows.append([latency, result.cycles])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nSec. VI-D — MALEC execution time vs L1 hit latency (gzip)")
    print(format_table(["L1 latency [cycles]", "cycles"], rows))

    cycles = [value for _, value in rows]
    # Monotone: longer L1 latency never makes execution faster.
    assert cycles[0] <= cycles[1] <= cycles[2]


def test_sec6d_input_buffer_capacity(benchmark):
    def run():
        trace = _trace("h263dec")
        rows = []
        for capacity in (1, 2, 3):
            config = SimulationConfig.malec(
                name=f"MALEC_ib{capacity}",
                malec_options=MalecParameters(input_buffer_capacity=capacity),
            )
            result = run_configuration(config, trace, warmup_fraction=WARMUP_FRACTION)
            rows.append([capacity, result.cycles])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nSec. VI-D — sensitivity to Input Buffer held-load capacity (h263dec)")
    print(format_table(["held loads", "cycles"], rows))
    cycles = [value for _, value in rows]
    # A larger Input Buffer can only help (or be neutral) on average.
    assert cycles[2] <= cycles[0] * 1.02
