"""Fig. 1 — consecutive accesses to the same page.

Regenerates the motivation figure: for every suite, the fraction of loads
followed by another load to the same page when 0, 1, 2, 3, 4 or 8
intermediate accesses to a different page are tolerated, plus the stacked
run-length distribution of Fig. 1 and the same-line follow fraction quoted in
Sec. III (46 %).  Paper reference values: 70 % / 85 % / 90 % / 92 % for
0/1/2/3 intermediates and ~46 % same-line.
"""

from __future__ import annotations

import pytest

from repro.analysis.locality import PageLocalityAnalyzer, RUN_LENGTH_BUCKETS
from repro.analysis.reporting import format_table
from repro.workloads.suites import MEDIABENCH2, SPEC_FP, SPEC_INT, suite_profiles
from repro.workloads.synthetic import generate_trace

INTERMEDIATES = (0, 1, 2, 3, 4, 8)
INSTRUCTIONS = 4_000
#: per-suite benchmark subset (first entries of each suite, paper order)
PER_SUITE = 5


def _suite_loads(suite: str):
    """Load-address streams of a subset of the suite's benchmarks."""
    streams = {}
    for profile in suite_profiles(suite)[:PER_SUITE]:
        trace = generate_trace(profile, instructions=INSTRUCTIONS)
        streams[profile.name] = trace.load_addresses()
    return streams


def _figure1(analyzer: PageLocalityAnalyzer):
    """Compute the Fig. 1 data: per-suite and overall follow fractions."""
    rows = []
    overall = {n: [] for n in INTERMEDIATES}
    overall_line = []
    for suite in (SPEC_INT, SPEC_FP, MEDIABENCH2):
        per_suite = {n: [] for n in INTERMEDIATES}
        for name, loads in _suite_loads(suite).items():
            for n in INTERMEDIATES:
                fraction = analyzer.same_page_follow_fraction(loads, n)
                per_suite[n].append(fraction)
                overall[n].append(fraction)
            overall_line.append(analyzer.same_line_follow_fraction(loads))
        rows.append(
            [suite] + [sum(per_suite[n]) / len(per_suite[n]) for n in INTERMEDIATES]
        )
    rows.append(["Overall"] + [sum(overall[n]) / len(overall[n]) for n in INTERMEDIATES])
    return rows, sum(overall_line) / len(overall_line)


def test_fig1_page_locality(benchmark):
    analyzer = PageLocalityAnalyzer()
    rows, line_follow = benchmark.pedantic(
        _figure1, args=(analyzer,), rounds=1, iterations=1
    )

    headers = ["suite"] + [f"<= {n} interm." for n in INTERMEDIATES]
    print("\nFig. 1 — fraction of loads followed by a same-page load")
    print(format_table(headers, rows))
    print(f"same-line follow fraction (paper: ~0.46): {line_follow:.3f}")

    overall = dict(zip(INTERMEDIATES, rows[-1][1:]))
    # Paper: 70 % with no intermediates, rising to 92 % with three.
    assert 0.55 <= overall[0] <= 0.90
    assert overall[3] >= overall[0] + 0.03
    assert all(overall[a] <= overall[b] + 1e-9 for a, b in zip(INTERMEDIATES, INTERMEDIATES[1:]))
    # Paper: 46 % of loads are directly followed by a same-line load.
    assert 0.25 <= line_follow <= 0.70


def test_fig1_run_length_distribution(benchmark):
    """The stacked-bar view of Fig. 1 (run lengths 1, 2, 3-4, 5-8, >8)."""
    analyzer = PageLocalityAnalyzer()

    def compute():
        loads = _suite_loads(MEDIABENCH2)
        rows = []
        for name, addresses in loads.items():
            distribution = analyzer.run_length_distribution(addresses, 0)
            rows.append([name] + [distribution[bucket] for bucket in RUN_LENGTH_BUCKETS])
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print("\nFig. 1 (stacked bars) — MB2 run-length distribution, 0 intermediates")
    print(format_table(["benchmark"] + list(RUN_LENGTH_BUCKETS), rows))

    for row in rows:
        assert sum(row[1:]) == pytest.approx(1.0)
        # Media benchmarks are dominated by long same-page runs (light bars).
        assert row[-1] + row[-2] > row[1]
