"""Tables I and II — analyzed configurations and simulation parameters.

These are static tables; the benchmark regenerates them from the
configuration objects (rather than hard-coded strings) so any drift between
the code and the paper's parameters is caught here.
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.memory.address import DEFAULT_LAYOUT
from repro.sim.config import SimulationConfig


def test_table1_configurations(benchmark):
    configs = [
        SimulationConfig.base_1ldst(),
        SimulationConfig.base_2ld1st(),
        SimulationConfig.malec(),
    ]
    rows = benchmark.pedantic(
        lambda: [list(config.table1_row().values()) for config in configs],
        rounds=1,
        iterations=1,
    )
    print("\nTable I — basic configurations")
    print(
        format_table(
            ["configuration", "addr. comp. per cycle", "uTLB/TLB ports", "cache ports"],
            rows,
        )
    )
    by_name = {row[0]: row for row in rows}
    assert by_name["Base1ldst"][1:] == ["1 ld/st", "1 rd/wt", "1 rd/wt"]
    assert by_name["Base2ld1st"][1:] == ["2 ld + 1 st", "1 rd/wt + 2 rd", "1 rd/wt + 1 rd"]
    assert by_name["MALEC"][1:] == ["1 ld + 2 ld/st", "1 rd/wt", "1 rd/wt"]


def test_table2_simulation_parameters(benchmark):
    def build():
        config = SimulationConfig.malec()
        layout = DEFAULT_LAYOUT
        return [
            ["Processor", f"out-of-order, {config.pipeline.rob_entries} ROB entries, "
                          f"{config.pipeline.fetch_width}-wide fetch/dispatch, "
                          f"{config.pipeline.issue_width}-wide issue"],
            ["L1 interface", f"{config.tlb.tlb_entries} TLB entries, {config.tlb.utlb_entries} uTLB entries, "
                             f"{config.lq_entries} LQ entries, {config.sb_entries} SB entries, "
                             f"{config.mb_entries} MB entries, {layout.address_bits} bit addr. space, "
                             f"{layout.page_bytes // 1024} KByte pages"],
            ["L1 D-cache", f"{layout.l1_capacity_bytes // 1024} KByte, {config.cache.l1_hit_latency} cycle latency, "
                           f"{layout.line_bytes} byte lines, {layout.l1_associativity}-way set-assoc., "
                           f"{layout.l1_banks} independent banks, PIPT, "
                           f"{layout.subblock_bytes * 8} bit sub-blocks per line"],
            ["L2 cache", f"1 MByte, {config.cache.l2_latency} cycle latency, 16-way set-assoc."],
            ["DRAM", f"256 MByte, {config.cache.dram_latency} cycle latency"],
        ]

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    print("\nTable II — relevant simulation parameters")
    print(format_table(["component", "parameters"], rows))

    text = {name: value for name, value in rows}
    assert "168 ROB entries" in text["Processor"]
    assert "64 TLB entries" in text["L1 interface"] and "16 uTLB entries" in text["L1 interface"]
    assert "32 KByte" in text["L1 D-cache"] and "4 independent banks" in text["L1 D-cache"]
    assert "12 cycle" in text["L2 cache"]
    assert "54 cycle" in text["DRAM"]
