"""Shared fixtures for the benchmark harness.

Every file in this directory regenerates one table or figure of the paper
(see DESIGN.md's experiment index).  The full paper runs 1-billion
instruction Simpoint phases of 38 benchmarks; this harness uses the synthetic
stand-ins with much shorter traces and a representative subset of benchmarks
per suite so the whole harness completes in a few minutes.  The absolute
numbers therefore differ from the paper; the *shape* (who wins, by roughly
what factor) is what the assertions check and what the printed tables show.

Run with ``pytest benchmarks/ --benchmark-only`` (add ``-s`` to see the
regenerated tables).
"""

from __future__ import annotations

import os

import pytest

from repro.analysis.experiments import ExperimentRunner, ExperimentResults
from repro.sim.config import SimulationConfig

#: worker processes for the Fig. 4 sweep (results are bit-identical either
#: way; set e.g. REPRO_BENCH_JOBS=4 to shorten the harness wall-clock)
BENCH_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))

#: representative benchmarks per suite (kept small so the harness stays fast;
#: extend to repro.workloads.ALL_BENCHMARKS for a full sweep)
FIG4_BENCHMARKS = [
    # SPEC-INT
    "gzip", "gcc", "mcf", "gap", "twolf",
    # SPEC-FP
    "swim", "mgrid", "art", "equake", "mesa",
    # MediaBench2
    "djpeg", "h263dec", "mpeg2dec", "h264enc",
]

#: trace length per benchmark (instructions) and warm-up fraction
TRACE_INSTRUCTIONS = 5_000
WARMUP_FRACTION = 0.3

BASELINE = "Base1ldst"


@pytest.fixture(scope="session")
def figure4_results() -> ExperimentResults:
    """Run the five Fig. 4 configurations over the benchmark subset once."""
    runner = ExperimentRunner(
        instructions=TRACE_INSTRUCTIONS,
        benchmarks=FIG4_BENCHMARKS,
        warmup_fraction=WARMUP_FRACTION,
    )
    return runner.run(SimulationConfig.figure4_suite(), jobs=BENCH_JOBS)


@pytest.fixture(scope="session")
def experiment_runner() -> ExperimentRunner:
    """A runner over the benchmark subset for ablation sweeps."""
    return ExperimentRunner(
        instructions=TRACE_INSTRUCTIONS,
        benchmarks=FIG4_BENCHMARKS,
        warmup_fraction=WARMUP_FRACTION,
    )
