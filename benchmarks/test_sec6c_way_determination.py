"""Sec. VI-C and Sec. V — Page-Based Way Determination vs the WDU.

Two experiments:

* **WT vs WDU** — substituting the way tables with 8-, 16- and 32-entry
  line-based WDUs.  Paper: the WDUs reach only 68 %, 76 % and 78 % coverage
  (vs 94 % for the way tables) and consume 4 %, 5 % and 8 % more energy.
* **uWT feedback ablation** — disabling the last-entry-register update that
  trains the uWT when an "unknown" prediction turns out to be a conventional
  hit.  Paper: coverage drops from 94 % to 75 %.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import TRACE_INSTRUCTIONS, WARMUP_FRACTION
from repro.analysis.reporting import format_table
from repro.sim.config import MalecParameters, SimulationConfig
from repro.sim.simulator import run_configuration
from repro.workloads.profiles import BenchmarkProfile, StreamKind, StreamSpec
from repro.workloads.suites import SPEC_INT, benchmark_profile
from repro.workloads.synthetic import generate_trace

BENCHMARKS = ["gzip", "gap", "mesa", "djpeg", "h263dec", "mpeg2dec"]


def _coverage_and_energy(config):
    coverages, energies = [], []
    for name in BENCHMARKS:
        trace = generate_trace(benchmark_profile(name), instructions=TRACE_INSTRUCTIONS)
        result = run_configuration(config, trace, warmup_fraction=WARMUP_FRACTION)
        coverages.append(result.way_coverage)
        energies.append(result.energy.total_pj)
    return sum(coverages) / len(coverages), sum(energies)


def test_sec6c_wt_vs_wdu(benchmark):
    def sweep():
        rows = []
        wt_config = SimulationConfig.malec()
        wt_coverage, wt_energy = _coverage_and_energy(wt_config)
        rows.append(["WT (page-based)", wt_coverage, 1.0])
        for entries in (8, 16, 32):
            config = SimulationConfig.malec(
                name=f"MALEC_WDU{entries}",
                malec_options=MalecParameters(way_determination="wdu", wdu_entries=entries),
            )
            coverage, energy = _coverage_and_energy(config)
            rows.append([f"WDU {entries} entries", coverage, energy / wt_energy])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nSec. VI-C — way determination schemes "
          "(paper coverage: WT 94%, WDU8 68%, WDU16 76%, WDU32 78%; "
          "WDU energy +4/5/8%)")
    print(format_table(["scheme", "avg coverage", "energy vs WT"], rows))

    by_scheme = {row[0]: row for row in rows}
    wt = by_scheme["WT (page-based)"]
    wdu8 = by_scheme["WDU 8 entries"]
    wdu16 = by_scheme["WDU 16 entries"]
    wdu32 = by_scheme["WDU 32 entries"]

    # The page-based scheme covers more accesses than every WDU size.
    assert wt[1] > wdu8[1]
    assert wt[1] > wdu16[1]
    assert wt[1] > wdu32[1]
    # Larger WDUs cover more than smaller ones.
    assert wdu32[1] >= wdu16[1] >= wdu8[1]
    # Every WDU configuration costs more energy than the way tables.
    assert wdu8[2] > 1.0 and wdu16[2] > 1.0 and wdu32[2] > 1.0


def _tlb_pressure_trace():
    """A workload whose page footprint (≈150 pages) exceeds the 64-entry TLB
    while its line footprint still fits the 32 KByte L1.

    This is exactly the situation the last-entry-register feedback of Sec. V
    targets: pages get evicted from the TLB (losing their WT entry) while
    their lines stay cache resident, so the next access predicts "unknown",
    hits conventionally and the feedback re-learns the way.  The regular
    benchmark profiles have either small footprints (no TLB pressure) or
    streaming behaviour (lines do not survive in the L1), which is why the
    paper's 94 % vs 75 % gap is demonstrated on this targeted workload.
    """
    profile = BenchmarkProfile(
        name="tlb_pressure",
        suite=SPEC_INT,
        memory_fraction=0.45,
        streams=(
            StreamSpec(
                kind=StreamKind.POINTER_CHASE,
                footprint_pages=150,
                page_stay_probability=0.3,
                store_fraction=0.1,
            ),
            StreamSpec(kind=StreamKind.HOT_REGION, footprint_pages=4, weight=0.5),
        ),
        stream_switch_probability=0.3,
        pointer_chase_dependency=0.2,
        load_use_dependency=0.4,
        seed=11,
    )
    return generate_trace(profile, instructions=6000)


def test_sec5_feedback_update_ablation(benchmark):
    def sweep():
        trace = _tlb_pressure_trace()
        with_feedback = run_configuration(
            SimulationConfig.malec(), trace, warmup_fraction=WARMUP_FRACTION
        )
        without_feedback = run_configuration(
            SimulationConfig.malec(
                name="MALEC_no_feedback",
                malec_options=MalecParameters(enable_feedback_update=False),
            ),
            trace,
            warmup_fraction=WARMUP_FRACTION,
        )
        return with_feedback.way_coverage, without_feedback.way_coverage

    cov_with, cov_without = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nSec. V — uWT feedback update ablation on a TLB-pressure workload "
          f"(paper: 94% with vs 75% without): {cov_with:.3f} vs {cov_without:.3f}")
    # The feedback path must recover a measurable amount of coverage.
    assert cov_with > cov_without
    assert cov_with - cov_without > 0.02
