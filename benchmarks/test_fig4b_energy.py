"""Fig. 4b — normalized energy consumption (dynamic + leakage).

Regenerates the energy view of Fig. 4: per benchmark and per suite, the
dynamic and leakage energy of every configuration normalized to Base1ldst's
total energy.

Paper reference (averages): Base2ld1st consumes ~42 % more *dynamic* energy
and ~48 % more *total* energy than Base1ldst; MALEC saves ~33 % dynamic and
~22 % total energy (48 % less than Base2ld1st).  mcf shows unusually high
MALEC savings thanks to load merging reducing the number of missing loads.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import BASELINE
from repro.analysis.reporting import format_table

CONFIG_ORDER = ["Base1ldst", "Base2ld1st_1cycleL1", "Base2ld1st", "MALEC", "MALEC_3cycleL1"]


def test_fig4b_normalized_energy(benchmark, figure4_results):
    results = figure4_results

    def summarize():
        rows = []
        for run in results.runs:
            normalized = run.normalized_energy(BASELINE)
            row = [run.benchmark, run.suite]
            for name in CONFIG_ORDER:
                row.append(normalized[name]["dynamic"])
                row.append(normalized[name]["total"])
            rows.append(row)
        overall_total = results.geomean_normalized_energy(BASELINE, component="total")
        overall_dynamic = results.geomean_normalized_energy(BASELINE, component="dynamic")
        overall_leakage = results.geomean_normalized_energy(BASELINE, component="leakage")
        return rows, overall_dynamic, overall_leakage, overall_total

    rows, dynamic, leakage, total = benchmark.pedantic(summarize, rounds=1, iterations=1)

    headers = ["benchmark", "suite"]
    for name in CONFIG_ORDER:
        headers += [f"{name}:dyn", f"{name}:tot"]
    print("\nFig. 4b — normalized energy (fraction of Base1ldst total)")
    print(format_table(headers, rows))
    summary = [
        [name, dynamic[name], leakage[name], total[name]] for name in CONFIG_ORDER
    ]
    print(format_table(["configuration", "dynamic", "leakage", "total"], summary))
    print(
        "paper reference: Base2ld1st dyn +42% / total +48%; "
        "MALEC dyn -33% / total -22% vs Base1ldst"
    )

    base_dynamic = dynamic["Base1ldst"]
    # Base2ld1st pays for its extra ports in both dynamic and total energy.
    assert dynamic["Base2ld1st"] > 1.15 * base_dynamic
    assert total["Base2ld1st"] > 1.15
    # MALEC saves dynamic energy and total energy relative to Base1ldst ...
    assert dynamic["MALEC"] < 0.85 * base_dynamic
    assert total["MALEC"] < 0.95
    # ... and roughly half of Base2ld1st's total energy (paper: 48 % less).
    assert total["MALEC"] / total["Base2ld1st"] < 0.70
    # Leakage, unlike dynamic energy, is similar for MALEC and Base1ldst
    # (same port counts; the way tables add only a few percent).
    assert leakage["MALEC"] == pytest.approx(leakage["Base1ldst"], rel=0.25)


def test_fig4b_mcf_benefits_from_load_merging(benchmark, figure4_results):
    """Sec. VI-C: mcf's high miss rate makes load merging especially valuable."""
    malec = benchmark.pedantic(
        lambda: figure4_results.run_for("mcf").results["MALEC"], rounds=1, iterations=1
    )
    # Some loads are merged even in the pointer-chasing benchmark because
    # consecutive field accesses hit the same node line.  The synthetic mcf
    # merges far fewer loads than the real benchmark (its dependent loads
    # rarely coexist in one Input Buffer group), so only the existence of the
    # effect is asserted here; the energy consequence is checked in
    # benchmarks/test_sec6b_load_merging.py.
    assert malec.merged_load_fraction > 0.0
