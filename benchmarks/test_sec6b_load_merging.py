"""Sec. VI-B — contribution of load merging to MALEC's speed-up.

The paper reports that merging loads to the same cache line contributes about
21 % of MALEC's overall performance improvement on average, with gap and
equake far above (56 % and 66 %) and mgrid essentially not profiting (<2 %),
and that without data sharing mcf would consume 5 % *more* instead of 51 %
less dynamic energy.

The experiment runs MALEC twice — with and without load merging — and
compares both execution time and dynamic energy against Base1ldst.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from benchmarks.conftest import TRACE_INSTRUCTIONS, WARMUP_FRACTION
from repro.analysis.reporting import format_table
from repro.sim.config import MalecParameters, SimulationConfig
from repro.sim.simulator import run_configuration
from repro.workloads.suites import benchmark_profile
from repro.workloads.synthetic import generate_trace

BENCHMARKS = ["gap", "equake", "mgrid", "mcf", "gzip", "djpeg"]


def _run_merging_study():
    base_config = SimulationConfig.base_1ldst()
    malec_config = SimulationConfig.malec()
    no_merge_config = SimulationConfig.malec(
        name="MALEC_no_merge",
        malec_options=MalecParameters(merge_granularity="none"),
    )
    rows = []
    details = {}
    for name in BENCHMARKS:
        trace = generate_trace(benchmark_profile(name), instructions=TRACE_INSTRUCTIONS)
        base = run_configuration(base_config, trace, warmup_fraction=WARMUP_FRACTION)
        malec = run_configuration(malec_config, trace, warmup_fraction=WARMUP_FRACTION)
        no_merge = run_configuration(no_merge_config, trace, warmup_fraction=WARMUP_FRACTION)

        speedup_with = base.cycles / malec.cycles - 1.0
        speedup_without = base.cycles / no_merge.cycles - 1.0
        contribution = 0.0
        if speedup_with > 0:
            contribution = max(0.0, (speedup_with - speedup_without) / speedup_with)
        rows.append(
            [
                name,
                malec.merged_load_fraction,
                speedup_with,
                speedup_without,
                contribution,
                malec.energy.dynamic_pj / base.energy.dynamic_pj,
                no_merge.energy.dynamic_pj / base.energy.dynamic_pj,
            ]
        )
        details[name] = rows[-1]
    return rows, details


def test_sec6b_load_merging_contribution(benchmark):
    rows, details = benchmark.pedantic(_run_merging_study, rounds=1, iterations=1)
    print("\nSec. VI-B — load merging contribution "
          "(paper: ~21% of speed-up on average; gap 56%, equake 66%, mgrid <2%)")
    print(
        format_table(
            [
                "benchmark",
                "merged load frac",
                "speedup (merge on)",
                "speedup (merge off)",
                "merge contribution",
                "dyn energy (on)",
                "dyn energy (off)",
            ],
            rows,
        )
    )

    # Merge-friendly benchmarks actually merge a sizeable share of loads ...
    assert details["gap"][1] > 0.05
    assert details["equake"][1] > 0.05
    assert details["djpeg"][1] > 0.10
    # ... while mgrid's strides defeat merging (paper: <2 % contribution).
    assert details["mgrid"][1] < 0.05
    # Merging never increases dynamic energy; for the merge-friendly
    # benchmarks it reduces it measurably.
    for name in ("gap", "equake", "djpeg", "gzip"):
        assert details[name][5] <= details[name][6] + 1e-9
    # mcf: without data sharing MALEC loses most of its advantage (paper: +5 %
    # instead of -51 % dynamic energy); with merging it must not be worse.
    assert details["mcf"][5] <= details["mcf"][6] + 1e-9
