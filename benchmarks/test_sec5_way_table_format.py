"""Sec. V / Fig. 3 — the packed 2-bit way-table entry format.

Two claims are reproduced:

* the packed validity+way encoding needs 128 bits per 64-line page entry,
  one third less than the naive 192-bit format (separate valid bit plus
  2-bit way id per line);
* restricting each line to three representable ways (so that 2 bits suffice)
  causes no measurable increase of the L1 miss rate.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import TRACE_INSTRUCTIONS, WARMUP_FRACTION
from repro.analysis.reporting import format_table
from repro.core.way_table import WayTableEntry
from repro.sim.config import MalecParameters, SimulationConfig
from repro.sim.simulator import run_configuration
from repro.workloads.suites import benchmark_profile
from repro.workloads.synthetic import generate_trace

BENCHMARKS = ["gzip", "gap", "mesa", "djpeg", "mpeg2dec"]


def test_fig3_entry_storage(benchmark):
    entry = benchmark.pedantic(WayTableEntry, rounds=1, iterations=1)
    rows = [
        ["packed 2-bit format (Fig. 3)", entry.storage_bits],
        ["naive valid + way-id format", entry.naive_storage_bits],
        ["saving", entry.naive_storage_bits - entry.storage_bits],
    ]
    print("\nSec. V — way-table entry storage per 4 KByte page (64 lines)")
    print(format_table(["format", "bits"], rows))
    assert entry.storage_bits == 128
    assert entry.naive_storage_bits == 192
    # "reducing area and leakage power by 1/3 compared to the naive format"
    assert entry.storage_bits == pytest.approx(entry.naive_storage_bits * 2 / 3)


def test_sec5_way_restriction_does_not_hurt_miss_rate(benchmark):
    def sweep():
        restricted = SimulationConfig.malec()
        unrestricted = SimulationConfig.malec(
            name="MALEC_unrestricted",
            malec_options=MalecParameters(restrict_way_allocation=False),
        )
        rows = []
        for name in BENCHMARKS:
            trace = generate_trace(benchmark_profile(name), instructions=TRACE_INSTRUCTIONS)
            a = run_configuration(restricted, trace, warmup_fraction=WARMUP_FRACTION)
            b = run_configuration(unrestricted, trace, warmup_fraction=WARMUP_FRACTION)
            rows.append([name, a.l1_load_miss_rate, b.l1_load_miss_rate])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nSec. V — L1 load miss rate with and without the 3-way restriction "
          "(paper: no measurable increase)")
    print(format_table(["benchmark", "restricted (3 ways/line)", "unrestricted (4 ways)"], rows))

    restricted_avg = sum(row[1] for row in rows) / len(rows)
    unrestricted_avg = sum(row[2] for row in rows) / len(rows)
    # The restriction must not raise the average miss rate by more than one
    # percentage point ("no measurable increase" in the paper).
    assert restricted_avg - unrestricted_avg < 0.01
