"""Fig. 4a — normalized execution times.

Regenerates the per-benchmark and per-suite normalized execution times of the
five configurations (Base1ldst, Base2ld1st_1cycleL1, Base2ld1st, MALEC,
MALEC_3cycleL1), all normalized to Base1ldst.

Paper reference (geometric means over all 38 benchmarks): Base2ld1st ≈ 0.85
(15 % speedup), MALEC ≈ 0.86 (14 % speedup, i.e. within 1 % of Base2ld1st),
MALEC_3cycleL1 ≈ 0.90, with mcf/art showing almost no improvement and
djpeg/h263dec the largest (≈30 %).  The synthetic traces reproduce the
ordering and the relative gap between MALEC and Base2ld1st; absolute speedups
are smaller because the traces are far shorter than the paper's 1-billion
instruction phases.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import BASELINE, FIG4_BENCHMARKS, TRACE_INSTRUCTIONS, WARMUP_FRACTION
from repro.analysis.experiments import ExperimentRunner
from repro.analysis.reporting import format_table
from repro.sim.config import SimulationConfig

CONFIG_ORDER = ["Base1ldst", "Base2ld1st_1cycleL1", "Base2ld1st", "MALEC", "MALEC_3cycleL1"]


def test_fig4a_normalized_execution_time(benchmark, figure4_results):
    results = figure4_results

    def summarize():
        rows = []
        for run in results.runs:
            normalized = run.normalized_cycles(BASELINE)
            rows.append([run.benchmark, run.suite] + [normalized[name] for name in CONFIG_ORDER])
        for suite in results.suites():
            geomean = results.geomean_normalized_cycles(BASELINE, suite=suite)
            rows.append([f"geo. mean ({suite})", suite] + [geomean[name] for name in CONFIG_ORDER])
        overall = results.geomean_normalized_cycles(BASELINE)
        rows.append(["geo. mean (overall)", "-"] + [overall[name] for name in CONFIG_ORDER])
        return rows, overall

    rows, overall = benchmark.pedantic(summarize, rounds=1, iterations=1)
    print("\nFig. 4a — normalized execution time (Base1ldst = 1.0)")
    print(format_table(["benchmark", "suite"] + CONFIG_ORDER, rows))

    # Shape checks against the paper's findings.
    assert overall["Base1ldst"] == pytest.approx(1.0)
    # Both multi-access interfaces are faster than the single-access baseline.
    assert overall["Base2ld1st"] < 0.99
    assert overall["MALEC"] < 0.99
    # MALEC stays within a few percent of the physically multi-ported design.
    assert overall["MALEC"] - overall["Base2ld1st"] < 0.05
    # L1 latency ordering: 1-cycle Base2ld1st fastest variant, 3-cycle MALEC slowest MALEC.
    assert overall["Base2ld1st_1cycleL1"] <= overall["Base2ld1st"] + 1e-9
    assert overall["MALEC_3cycleL1"] >= overall["MALEC"] - 1e-9

    # Benchmark-level character: streaming mcf/art benefit least, media most.
    by_benchmark = {run.benchmark: run.normalized_cycles(BASELINE) for run in results.runs}
    media_speedup = 1 - min(by_benchmark[b]["MALEC"] for b in ("djpeg", "h263dec"))
    mcf_speedup = 1 - by_benchmark["mcf"]["MALEC"]
    assert media_speedup > mcf_speedup
