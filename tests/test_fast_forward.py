"""Idle fast-forward: skipping stalled cycles must not change any result.

The pipeline's fast-forward jumps the clock across cycles in which nothing
can retire, issue, tick, commit or fetch.  These tests build workloads with
long idle gaps — pointer-chasing loads missing all the way to DRAM — and
assert the skipped-cycle path is (a) actually exercised and (b) bit-identical
to the cycle-by-cycle path, for every interface model.
"""

from __future__ import annotations

import pytest

from repro.cpu.instruction import compute, load, store
from repro.cpu.pipeline import OutOfOrderPipeline
from repro.sim.config import SimulationConfig
from repro.workloads.trace import MemoryTrace

CONFIGURATIONS = [
    SimulationConfig.base_1ldst(),
    SimulationConfig.base_2ld1st(),
    SimulationConfig.malec(),
]


def pointer_chase_trace(chain_length: int = 60) -> MemoryTrace:
    """Serially dependent loads, each to a fresh page: every load misses to
    DRAM and stalls the machine for the full miss latency — long idle gaps."""
    instructions = []
    for index in range(chain_length):
        # 1 MByte stride: distinct pages, distinct L1/L2 sets.
        instructions.append(load(0x10000 + index * (1 << 20), deps=(1,) if index else ()))
        instructions.append(compute(deps=(1,)))
    instructions.append(store(0x500000, deps=(1,)))
    return MemoryTrace(name="pointer-chase", instructions=instructions)


def run_once(config: SimulationConfig, trace: MemoryTrace, fast_forward: bool):
    """One fresh simulator run with the fast-forward toggled explicitly."""
    from repro.sim.simulator import Simulator

    simulator = Simulator(config)
    pipeline = OutOfOrderPipeline(
        simulator.interface,
        params=simulator._pipeline_parameters(),
        stats=simulator.stats,
        enable_fast_forward=fast_forward,
    )
    result = pipeline.run(list(trace))
    return result, pipeline, simulator.stats.as_dict()


class TestFastForwardIdentical:
    @pytest.mark.parametrize("config", CONFIGURATIONS, ids=lambda c: c.name)
    def test_idle_gap_trace_identical_with_and_without_fast_forward(self, config):
        trace = pointer_chase_trace()
        on_result, on_pipeline, on_stats = run_once(config, trace, fast_forward=True)
        off_result, off_pipeline, off_stats = run_once(config, trace, fast_forward=False)

        # The gap trace must actually exercise the skip path...
        assert on_pipeline.fast_forwarded_cycles > 0
        assert off_pipeline.fast_forwarded_cycles == 0
        # ...and skip a meaningful share of the DRAM-bound stall cycles.
        assert on_pipeline.fast_forwarded_cycles > on_result.cycles // 2

        # Bit-identical outcomes: timing, instruction mix and every counter.
        assert on_result.cycles == off_result.cycles
        assert (on_result.loads, on_result.stores, on_result.computes) == (
            off_result.loads,
            off_result.stores,
            off_result.computes,
        )
        assert on_stats == off_stats

    @pytest.mark.parametrize("config", CONFIGURATIONS, ids=lambda c: c.name)
    def test_busy_trace_identical_with_and_without_fast_forward(
        self, config, small_trace
    ):
        # A high-IPC trace rarely idles; the invariant must still hold.
        on_result, _, on_stats = run_once(config, small_trace, fast_forward=True)
        off_result, _, off_stats = run_once(config, small_trace, fast_forward=False)
        assert on_result.cycles == off_result.cycles
        assert on_stats == off_stats

    @pytest.mark.parametrize("config", CONFIGURATIONS, ids=lambda c: c.name)
    @pytest.mark.parametrize("seed", range(6))
    def test_random_burst_traces_identical(self, config, seed):
        """Randomized adversarial sweep: bursts of same-page loads, deferred
        stores and mixed dependency chains probe the corners where a deferred
        op's back-pressure is released by the same cycle's tick — the skip
        must never change the outcome."""
        import random

        rng = random.Random(seed)
        instructions = []
        pages = [0x10000 * (1 + p) for p in range(3)] + [
            (1 << 20) * (7 + p) for p in range(4)
        ]
        for index in range(400):
            roll = rng.random()
            page = rng.choice(pages)
            address = page + rng.randrange(0, 4096, 4)
            deps = ()
            if index and rng.random() < 0.5:
                deps = (rng.randrange(1, min(index, 12) + 1),)
            if roll < 0.45:
                instructions.append(load(address, deps=deps))
            elif roll < 0.65:
                instructions.append(store(address, deps=deps))
            else:
                instructions.append(compute(deps=deps))
        trace = MemoryTrace(name=f"burst-{seed}", instructions=instructions)

        on_result, _, on_stats = run_once(config, trace, fast_forward=True)
        off_result, _, off_stats = run_once(config, trace, fast_forward=False)
        assert on_result.cycles == off_result.cycles
        assert on_stats == off_stats

    def test_fast_forward_requires_quiescent_protocol(self):
        """Interfaces without quiescent() (test stubs) never fast-forward."""

        class MinimalInterface:
            def begin_cycle(self, cycle):
                pass

            def can_accept_load(self):
                return True

            def can_accept_store(self):
                return True

            def reserve_load_slot(self):
                return True

            def reserve_store_slot(self):
                return True

            def submit_load(self, tag, address, size, cycle):
                self._pending = (tag, cycle + 100)

            def submit_store(self, tag, address, size, cycle):
                pass

            def commit_store(self, tag, cycle):
                pass

            def tick(self, cycle):
                pending = getattr(self, "_pending", None)
                if pending is not None:
                    self._pending = None
                    return [pending]
                return []

            def finalize(self, cycle):
                pass

        pipeline = OutOfOrderPipeline(MinimalInterface())
        result = pipeline.run([load(0x100)])
        assert result.cycles > 100  # waited for the slow completion...
        assert pipeline.fast_forwarded_cycles == 0  # ...cycle by cycle
