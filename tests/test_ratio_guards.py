"""Zero-denominator behaviour of every derived-rate helper.

All ratio-style properties follow one convention — 0.0 when the denominator
never counted — so degenerate inputs (empty traces, configurations without
way determination, empty sweeps) flow through analyses without raising.
These tests pin the convention down for each helper individually.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import BenchmarkRun, ExperimentResults
from repro.analysis.reporting import geometric_mean, normalize
from repro.campaign.aggregate import summarize_results
from repro.cpu.pipeline import PipelineResult
from repro.energy.accounting import EnergyReport, StructureEnergy
from repro.sim.simulator import SimulationResult, _guarded_ratio
from repro.stats import StatCounters


def empty_result(cycles: int = 0) -> SimulationResult:
    return SimulationResult(
        config_name="empty",
        cycles=cycles,
        instructions=0,
        loads=0,
        stores=0,
        energy=EnergyReport(cycles=cycles),
        stats={},
    )


class TestGuardedRatio:
    def test_normal_division(self):
        assert _guarded_ratio(3.0, 4.0) == 0.75

    def test_zero_denominator(self):
        assert _guarded_ratio(5.0, 0.0) == 0.0
        assert _guarded_ratio(0.0, 0.0) == 0.0


class TestSimulationResultRatios:
    def test_ipc_with_zero_cycles(self):
        assert empty_result().ipc == 0.0

    def test_l1_load_miss_rate_without_loads(self):
        assert empty_result(cycles=10).l1_load_miss_rate == 0.0

    def test_way_coverage_without_way_lookups(self):
        # Baseline configurations never touch malec.way_lookup.
        result = empty_result(cycles=10)
        result.stats = {"l1.load": 5.0}
        assert result.way_coverage == 0.0

    def test_merged_load_fraction_without_accesses(self):
        assert empty_result(cycles=10).merged_load_fraction == 0.0

    def test_ratios_still_compute_with_counts(self):
        result = empty_result(cycles=4)
        result.instructions = 8
        result.stats = {
            "l1.load": 10.0,
            "l1.load_miss": 2.0,
            "malec.way_lookup": 8.0,
            "malec.way_known": 6.0,
            "interface.load_accesses": 6.0,
            "interface.loads_merged": 2.0,
        }
        assert result.ipc == 2.0
        assert result.l1_load_miss_rate == pytest.approx(0.2)
        assert result.way_coverage == pytest.approx(0.75)
        assert result.merged_load_fraction == pytest.approx(0.25)

    def test_normalized_time_rejects_zero_baseline(self):
        with pytest.raises(ValueError):
            empty_result(cycles=5).normalized_time(empty_result(cycles=0))


class TestPipelineAndEnergyRatios:
    def test_pipeline_ipc_zero_cycles(self):
        result = PipelineResult(cycles=0, instructions=0, loads=0, stores=0, computes=0)
        assert result.ipc == 0.0

    def test_energy_leakage_share_zero_total(self):
        assert EnergyReport(cycles=0).leakage_share == 0.0

    def test_energy_normalized_to_zero_baseline_raises(self):
        report = EnergyReport(cycles=1, structures={"l1": StructureEnergy(1.0, 1.0)})
        with pytest.raises(ValueError):
            report.normalized_to(EnergyReport(cycles=1))

    def test_stats_ratio_zero_denominator(self):
        stats = StatCounters()
        stats.add("hits", 3)
        assert stats.ratio("hits", "never_counted") == 0.0


class TestAggregationEdgeCases:
    def test_geometric_mean_empty_is_zero(self):
        assert geometric_mean([]) == 0.0

    def test_geometric_mean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_normalize_rejects_zero_baseline(self):
        with pytest.raises(ValueError):
            normalize({"a": 0.0, "b": 1.0}, "a")

    def test_geomeans_over_empty_results(self):
        results = ExperimentResults(runs=[], configurations=["A", "B"])
        assert results.geomean_normalized_cycles("A") == {"A": 0.0, "B": 0.0}
        assert results.geomean_normalized_energy("A") == {"A": 0.0, "B": 0.0}
        assert results.mean_stat("A", lambda r: r.cycles) == 0.0

    def test_geomeans_over_unknown_suite(self):
        run = BenchmarkRun(benchmark="gzip", suite="spec2000int")
        run.results["A"] = empty_result(cycles=10)
        results = ExperimentResults(runs=[run], configurations=["A"])
        assert results.geomean_normalized_cycles("A", suite="nonexistent") == {"A": 0.0}

    def test_summarize_empty_store_results(self):
        results = ExperimentResults(runs=[], configurations=[])
        assert summarize_results(results) == "store is empty"
