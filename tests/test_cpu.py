"""Tests for instructions, the ROB and the out-of-order pipeline."""

import pytest

from repro.cpu.instruction import Instruction, InstructionKind, compute, load, store
from repro.cpu.pipeline import OutOfOrderPipeline, PipelineParametersLite
from repro.cpu.rob import ReorderBuffer


class TestInstruction:
    def test_factories(self):
        ld, s, c = load(0x100), store(0x200), compute()
        assert ld.is_load and ld.is_memory
        assert s.is_store and s.is_memory
        assert not c.is_memory

    def test_memory_ops_need_address(self):
        with pytest.raises(ValueError):
            Instruction(kind=InstructionKind.LOAD)
        with pytest.raises(ValueError):
            Instruction(kind=InstructionKind.STORE, address=0, size=0)

    def test_dependency_distances_must_be_positive(self):
        with pytest.raises(ValueError):
            compute(deps=(0,))
        with pytest.raises(ValueError):
            compute(deps=(-1,))

    def test_producers_resolved_from_seq(self):
        instruction = compute(deps=(1, 3))
        instruction.seq = 10
        assert instruction.producers() == (9, 7)

    def test_producers_before_trace_start_dropped(self):
        instruction = compute(deps=(5,))
        instruction.seq = 2
        assert instruction.producers() == ()

    def test_producers_requires_seq(self):
        with pytest.raises(ValueError):
            compute(deps=(1,)).producers()


class TestReorderBuffer:
    def test_dispatch_commit_in_order(self):
        rob = ReorderBuffer(entries=4)
        a = rob.dispatch(load(0x0), cycle=0)
        b = rob.dispatch(compute(), cycle=0)
        b.completed = True
        # Head (a) is not complete: nothing commits yet.
        assert rob.commit_ready(4) == []
        a.completed = True
        committed = rob.commit_ready(4)
        assert [e.instruction for e in committed] == [a.instruction, b.instruction]
        assert rob.empty

    def test_commit_width_respected(self):
        rob = ReorderBuffer(entries=8)
        entries = [rob.dispatch(compute(), 0) for _ in range(5)]
        for entry in entries:
            entry.completed = True
        assert len(rob.commit_ready(2)) == 2
        assert len(rob) == 3

    def test_overflow(self):
        rob = ReorderBuffer(entries=1)
        rob.dispatch(compute(), 0)
        assert rob.full
        with pytest.raises(RuntimeError):
            rob.dispatch(compute(), 0)

    def test_zero_entries_rejected(self):
        with pytest.raises(ValueError):
            ReorderBuffer(entries=0)


class FakeInterface:
    """Minimal deterministic interface used to unit-test the pipeline.

    Loads complete ``latency`` cycles after submission; per-cycle load/store
    slots are configurable so resource-driven stalls can be tested.
    """

    def __init__(self, latency=2, load_slots=1, store_slots=1):
        self.latency = latency
        self.load_slots = load_slots
        self.store_slots = store_slots
        self.submitted_loads = []
        self.submitted_stores = []
        self.committed_stores = []
        self._pending = []
        self._loads_this_cycle = 0
        self._stores_this_cycle = 0
        self.finalized = False

    def begin_cycle(self, cycle):
        self._loads_this_cycle = 0
        self._stores_this_cycle = 0

    def can_accept_load(self):
        return True

    def can_accept_store(self):
        return True

    def reserve_load_slot(self):
        if self._loads_this_cycle < self.load_slots:
            self._loads_this_cycle += 1
            return True
        return False

    def reserve_store_slot(self):
        if self._stores_this_cycle < self.store_slots:
            self._stores_this_cycle += 1
            return True
        return False

    def submit_load(self, tag, address, size, cycle):
        self.submitted_loads.append((tag, cycle))
        self._pending.append((tag, cycle + self.latency))

    def submit_store(self, tag, address, size, cycle):
        self.submitted_stores.append((tag, cycle))

    def commit_store(self, tag, cycle):
        self.committed_stores.append(tag)

    def tick(self, cycle):
        ready = [(tag, when) for tag, when in self._pending if when <= cycle + self.latency]
        self._pending = []
        return ready

    def finalize(self, cycle):
        self.finalized = True


class TestPipeline:
    def _run(self, trace, **kwargs):
        interface = FakeInterface(**{k: v for k, v in kwargs.items() if k in ("latency", "load_slots", "store_slots")})
        params = kwargs.get("params", PipelineParametersLite())
        pipeline = OutOfOrderPipeline(interface, params=params)
        result = pipeline.run(trace)
        return result, interface

    def test_empty_trace(self):
        result, _ = self._run([])
        assert result.cycles == 0 and result.instructions == 0

    def test_all_instructions_commit(self):
        trace = [load(0x100), compute(deps=(1,)), store(0x200), compute()]
        result, interface = self._run(trace)
        assert result.instructions == 4
        assert result.loads == 1 and result.stores == 1 and result.computes == 2
        assert interface.finalized
        assert interface.committed_stores  # the store was reported at commit

    def test_ipc_bounded_by_commit_width(self):
        trace = [compute() for _ in range(600)]
        result, _ = self._run(trace)
        assert result.ipc <= 6.0 + 1e-9

    def test_dependent_compute_waits_for_load(self):
        fast = [load(0x100), compute()]
        slow = [load(0x100), compute(deps=(1,))]
        independent, _ = self._run(fast, latency=20)
        dependent, _ = self._run(slow, latency=20)
        assert dependent.cycles >= independent.cycles

    def test_load_latency_affects_execution_time(self):
        trace = []
        for i in range(50):
            trace.append(load(0x1000 + 64 * i))
            trace.append(compute(deps=(1,)))
        short, _ = self._run(trace, latency=2)
        long, _ = self._run(trace, latency=10)
        assert long.cycles > short.cycles

    def test_load_slots_limit_throughput(self):
        trace = [load(0x1000 + 64 * i) for i in range(60)]
        narrow, _ = self._run(trace, load_slots=1)
        wide, _ = self._run(trace, load_slots=2)
        assert wide.cycles < narrow.cycles

    def test_stores_issue_in_program_order(self):
        trace = [store(0x100), store(0x200), store(0x300)]
        _, interface = self._run(trace)
        tags = [tag for tag, _ in interface.submitted_stores]
        assert tags == sorted(tags)

    def test_rob_capacity_limits_window(self):
        # A tiny ROB forces near-serial execution of dependent loads.
        params = PipelineParametersLite(rob_entries=4)
        trace = [load(0x1000 + 64 * i) for i in range(40)]
        small, _ = self._run(trace, params=params)
        big, _ = self._run(trace)
        assert small.cycles >= big.cycles

    def test_deadlock_guard_raises(self):
        class StuckInterface(FakeInterface):
            def tick(self, cycle):
                return []  # never completes any load

        pipeline = OutOfOrderPipeline(StuckInterface(), max_cycles=200)
        with pytest.raises(RuntimeError):
            pipeline.run([load(0x100)])
