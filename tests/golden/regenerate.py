"""Regenerate ``tests/golden/fig4_mini.json`` from the current code.

Run only when a PR *deliberately* changes simulation behaviour (and say so
in the PR description) — the golden test exists precisely so performance
work cannot drift the paper reproduction silently::

    PYTHONPATH=src python tests/golden/regenerate.py
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

from repro.campaign.executor import ParallelExecutor
from repro.campaign.spec import campaign_preset
from repro.campaign.store import ResultStore


def regenerate(path: Path) -> int:
    spec = campaign_preset("fig4-mini")
    with tempfile.TemporaryDirectory() as tmp:
        store = ResultStore(tmp)
        ParallelExecutor(jobs=1, store=store).run(spec)
        records = {record["key"]: record for record in store.records()}
    payload = {
        "preset": spec.name,
        "instructions": spec.instructions,
        "warmup_fraction": spec.warmup_fraction,
        "seed": spec.seed,
        "records": records,
    }
    path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    return len(records)


if __name__ == "__main__":
    target = Path(__file__).parent / "fig4_mini.json"
    count = regenerate(target)
    print(f"wrote {target} ({count} records)")
