"""Regenerate the golden result files from the current code.

Rewrites ``tests/golden/fig4_mini.json`` (the fig4-mini campaign records)
and ``tests/golden/stress_profiles.json`` (the STRESS-suite differential
anchors).  Run only when a PR *deliberately* changes simulation behaviour
(and say so in the PR description) — the golden tests exist precisely so
performance work cannot drift the paper reproduction silently::

    PYTHONPATH=src python tests/golden/regenerate.py
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

from repro.campaign.executor import ParallelExecutor
from repro.campaign.spec import campaign_preset
from repro.campaign.store import ResultStore
from repro.sim.config import SimulationConfig
from repro.sim.simulator import run_configuration
from repro.workloads.suites import STRESS_BENCHMARKS, benchmark_profile
from repro.workloads.synthetic import generate_trace

#: trace length / warmup the stress anchors are pinned at (mirrored by
#: ``tests/test_columnar_differential.py``)
STRESS_INSTRUCTIONS = 1200
STRESS_WARMUP = 0.3


def regenerate(path: Path) -> int:
    spec = campaign_preset("fig4-mini")
    with tempfile.TemporaryDirectory() as tmp:
        store = ResultStore(tmp)
        ParallelExecutor(jobs=1, store=store).run(spec)
        records = {record["key"]: record for record in store.records()}
    payload = {
        "preset": spec.name,
        "instructions": spec.instructions,
        "warmup_fraction": spec.warmup_fraction,
        "seed": spec.seed,
        "records": records,
    }
    path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    return len(records)


def regenerate_stress(path: Path) -> int:
    """Pin the STRESS profiles on the Fig. 4 grid (object-path oracle)."""
    records = {}
    for bench in STRESS_BENCHMARKS:
        trace = generate_trace(
            benchmark_profile(bench), instructions=STRESS_INSTRUCTIONS
        )
        for config in SimulationConfig.figure4_suite():
            result = run_configuration(
                config, trace, warmup_fraction=STRESS_WARMUP, frontend="object"
            )
            records[f"{bench}/{config.name}"] = {
                "cycles": result.cycles,
                "instructions": result.instructions,
                "loads": result.loads,
                "stores": result.stores,
                "stats": result.stats,
                "energy": {
                    name: {
                        "dynamic_pj": item.dynamic_pj,
                        "leakage_pj": item.leakage_pj,
                    }
                    for name, item in sorted(result.energy.structures.items())
                },
            }
    payload = {
        "instructions": STRESS_INSTRUCTIONS,
        "warmup_fraction": STRESS_WARMUP,
        "records": records,
    }
    path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    return len(records)


if __name__ == "__main__":
    target = Path(__file__).parent / "fig4_mini.json"
    count = regenerate(target)
    print(f"wrote {target} ({count} records)")
    stress_target = Path(__file__).parent / "stress_profiles.json"
    stress_count = regenerate_stress(stress_target)
    print(f"wrote {stress_target} ({stress_count} records)")
