"""Tests for the CACTI-like energy model and the energy accounting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.energy.accounting import EnergyAccountant, EnergyReport, StructureEnergy
from repro.energy.cacti import CactiParameters, SRAMArraySpec, SRAMEnergyModel
from repro.energy.energy_model import EnergyModelConfig, build_energy_model
from repro.stats import StatCounters


def spec(rows=32, row_bits=512, output_bits=256, ports=1, is_cam=False, search_bits=0):
    return SRAMArraySpec(
        name="test",
        rows=rows,
        row_bits=row_bits,
        output_bits=output_bits,
        ports=ports,
        is_cam=is_cam,
        search_bits=search_bits,
    )


class TestSRAMEnergyModel:
    def test_energies_are_positive(self):
        model = SRAMEnergyModel()
        s = spec()
        assert model.read_energy_pj(s) > 0
        assert model.write_energy_pj(s) > 0
        assert model.leakage_mw(s) > 0

    def test_bigger_array_costs_more(self):
        model = SRAMEnergyModel()
        small, large = spec(rows=16), spec(rows=256)
        assert model.read_energy_pj(large) > model.read_energy_pj(small)
        assert model.leakage_mw(large) > model.leakage_mw(small)

    def test_more_ports_cost_more(self):
        model = SRAMEnergyModel()
        single, dual = spec(ports=1), spec(ports=2)
        assert model.read_energy_pj(dual) > model.read_energy_pj(single)
        assert model.leakage_mw(dual) > model.leakage_mw(single)

    def test_extra_port_leakage_factor_is_80_percent(self):
        """One additional port raises leakage by 80 % (Sec. VI-C)."""
        model = SRAMEnergyModel()
        single, dual = spec(ports=1), spec(ports=2)
        assert model.leakage_mw(dual) / model.leakage_mw(single) == pytest.approx(1.8)

    def test_cam_search_costs_more_than_ram_read(self):
        model = SRAMEnergyModel()
        ram = spec(rows=64, row_bits=20, output_bits=20)
        cam = spec(rows=64, row_bits=20, output_bits=20, is_cam=True, search_bits=20)
        assert model.read_energy_pj(cam) > model.read_energy_pj(ram)

    def test_leakage_energy_scales_with_cycles(self):
        model = SRAMEnergyModel()
        s = spec()
        assert model.leakage_energy_pj(s, 2000) == pytest.approx(
            2 * model.leakage_energy_pj(s, 1000)
        )
        assert model.leakage_energy_pj(s, 0) == 0

    def test_negative_cycles_rejected(self):
        with pytest.raises(ValueError):
            SRAMEnergyModel().leakage_energy_pj(spec(), -1)

    def test_port_scale_validation(self):
        params = CactiParameters()
        with pytest.raises(ValueError):
            params.dynamic_port_scale(0)
        with pytest.raises(ValueError):
            params.leakage_port_scale(0)

    @given(st.integers(min_value=1, max_value=4096), st.integers(min_value=1, max_value=4))
    @settings(max_examples=60)
    def test_monotone_in_rows_and_ports(self, rows, ports):
        model = SRAMEnergyModel()
        base = model.read_energy_pj(spec(rows=rows, ports=ports))
        assert model.read_energy_pj(spec(rows=rows + 1, ports=ports)) >= base
        assert model.read_energy_pj(spec(rows=rows, ports=ports + 1)) > base


class TestInterfaceEnergyModel:
    def test_baseline_has_no_way_tables(self):
        model = build_energy_model(EnergyModelConfig())
        assert "uwt" not in model.specs and "wt" not in model.specs
        assert "l1.tag" in model.specs and "tlb.vtag" in model.specs

    def test_malec_model_has_way_tables(self):
        model = build_energy_model(EnergyModelConfig(has_way_tables=True))
        assert model.specs["uwt"].rows == 16
        assert model.specs["wt"].rows == 64
        assert model.specs["uwt"].row_bits == 128

    def test_wdu_model(self):
        model = build_energy_model(EnergyModelConfig(wdu_entries=16, wdu_ports=4))
        assert model.specs["wdu"].rows == 16
        assert model.specs["wdu"].ports == 4

    def test_port_counts_propagate(self):
        model = build_energy_model(EnergyModelConfig(l1_ports=2, tlb_ports=3))
        assert model.specs["l1.data"].ports == 2
        assert model.specs["tlb.vtag"].ports == 3

    def test_dynamic_energy_from_events(self):
        model = build_energy_model(EnergyModelConfig())
        stats = StatCounters()
        stats.add("l1.tag_read", 4)
        stats.add("l1.data_read", 4)
        stats.add("utlb.lookup", 1)
        totals = model.dynamic_energy_pj(stats)
        assert totals["l1.tag"] > 0 and totals["l1.data"] > 0 and totals["utlb.vtag"] > 0
        assert totals["l1.data"] > totals["l1.tag"]

    def test_control_energy_charged_per_access(self):
        model = build_energy_model(EnergyModelConfig())
        stats = StatCounters()
        stats.add("l1.ctrl", 10)
        totals = model.dynamic_energy_pj(stats)
        assert totals["l1.control"] == pytest.approx(
            10 * model.sram.parameters.l1_control_energy_pj
        )

    def test_unknown_events_are_ignored(self):
        model = build_energy_model(EnergyModelConfig())
        stats = StatCounters()
        stats.add("nonsense.event", 100)
        totals = model.dynamic_energy_pj(stats)
        assert sum(totals.values()) == 0

    def test_leakage_includes_all_l1_arrays(self):
        model = build_energy_model(EnergyModelConfig())
        leakage = model.leakage_power_mw()
        single_array = model.sram.leakage_mw(model.specs["l1.data"])
        assert leakage["l1.data"] == pytest.approx(16 * single_array)

    def test_buffers_optional(self):
        without = build_energy_model(EnergyModelConfig(include_buffers=False))
        with_buffers = build_energy_model(EnergyModelConfig(include_buffers=True))
        assert "sb" not in without.specs
        assert "sb" in with_buffers.specs and "mb" in with_buffers.specs

    def test_access_energy_kind_validation(self):
        model = build_energy_model(EnergyModelConfig())
        with pytest.raises(ValueError):
            model.access_energy_pj("l1.tag", "erase")


class TestEnergyAccounting:
    def _report(self, cycles=1000):
        model = build_energy_model(EnergyModelConfig(has_way_tables=True))
        accountant = EnergyAccountant(model)
        stats = StatCounters()
        stats.add("l1.tag_read", 400)
        stats.add("l1.data_read", 400)
        stats.add("l1.ctrl", 100)
        stats.add("utlb.lookup", 100)
        stats.add("uwt.read", 100)
        return accountant.report(stats, cycles)

    def test_report_totals_are_consistent(self):
        report = self._report()
        assert report.total_pj == pytest.approx(report.dynamic_pj + report.leakage_pj)
        assert 0 < report.leakage_share < 1

    def test_leakage_scales_with_cycles(self):
        short = self._report(cycles=1000)
        long = self._report(cycles=2000)
        assert long.leakage_pj == pytest.approx(2 * short.leakage_pj)
        assert long.dynamic_pj == pytest.approx(short.dynamic_pj)

    def test_normalization(self):
        a = self._report(cycles=1000)
        b = self._report(cycles=2000)
        normalized = b.normalized_to(a)
        assert normalized["total"] > 1.0
        assert normalized["dynamic"] == pytest.approx(a.dynamic_pj / a.total_pj)

    def test_normalize_to_zero_baseline_rejected(self):
        empty = EnergyReport(cycles=0)
        with pytest.raises(ValueError):
            self._report().normalized_to(empty)

    def test_negative_cycles_rejected(self):
        model = build_energy_model(EnergyModelConfig())
        with pytest.raises(ValueError):
            EnergyAccountant(model).report(StatCounters(), -5)

    def test_summary_lists_structures(self):
        text = self._report().summary()
        assert "l1.data" in text and "TOTAL" in text

    def test_structure_energy_total(self):
        item = StructureEnergy(dynamic_pj=2.0, leakage_pj=3.0)
        assert item.total_pj == 5.0
