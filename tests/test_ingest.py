"""Tests for external-trace ingestion: parsers, transforms, registry, campaigns."""

import gzip
from pathlib import Path

import pytest

from repro.campaign.executor import ParallelExecutor
from repro.campaign.spec import CampaignCell, CampaignSpec
from repro.campaign.store import ResultStore
from repro.cpu.instruction import InstructionKind, compute, load, store
from repro.sim.config import SimulationConfig
from repro.sim.simulator import run_configuration
from repro.workloads.ingest import (
    TraceParseError,
    interleave,
    load_trace,
    parse_csv,
    parse_dinero,
    parse_lackey,
    skip_warmup,
    sniff_format,
    subsample,
    window,
)
from repro.workloads.registry import (
    clear_registry,
    register_trace,
    registered_handle,
    registered_trace,
    validate_workload,
    workload_suite,
    workload_trace_hash,
)
from repro.workloads.trace import MemoryTrace

DATA = Path(__file__).parent / "data"


@pytest.fixture(autouse=True)
def _clean_registry():
    clear_registry()
    yield
    clear_registry()


def _toy_trace(name: str = "toy", base: int = 0x1000) -> MemoryTrace:
    return MemoryTrace(
        name=name,
        instructions=[
            load(base),
            compute(deps=(1,)),
            store(base + 8, deps=(1,)),
            load(base + 64),
            compute(),
            store(base + 72),
        ],
    )


# ----------------------------------------------------------------------
# Parsers
# ----------------------------------------------------------------------
class TestLackeyParser:
    def test_sample_file(self):
        trace = load_trace(DATA / "sample.lackey")
        assert trace.name == "sample"
        # 17 I lines -> compute, 9 L, 5 S, 3 M (load+store each).
        kinds = [i.kind for i in trace.instructions]
        assert kinds.count(InstructionKind.COMPUTE) == 17
        assert kinds.count(InstructionKind.LOAD) == 9 + 3
        assert kinds.count(InstructionKind.STORE) == 5 + 3
        assert trace[1].address == 0x04222CAC and trace[1].size == 4

    def test_modify_expands_to_load_then_store(self):
        trace = parse_lackey([" M 0400,8"])
        assert [i.kind for i in trace] == [InstructionKind.LOAD, InstructionKind.STORE]
        assert trace[0].address == trace[1].address == 0x400
        assert trace[0].size == trace[1].size == 8

    def test_banner_and_blank_lines_skipped(self):
        trace = parse_lackey(["==12== tool banner", "", "--12-- more", " L 10,4"])
        assert len(trace) == 1

    def test_malformed_line_reports_number(self):
        with pytest.raises(TraceParseError, match=r"line 3: malformed lackey"):
            parse_lackey([" L 10,4", " S 20,4", "garbage here"], source="app.lackey")

    def test_unknown_operation_reports_number(self):
        with pytest.raises(TraceParseError, match=r"line 2: unknown lackey operation 'X'"):
            parse_lackey([" L 10,4", " X 20,4"])

    def test_non_positive_size_rejected(self):
        with pytest.raises(TraceParseError, match=r"line 1: non-positive"):
            parse_lackey([" L 10,0"])


class TestDineroParser:
    def test_sample_file(self):
        trace = load_trace(DATA / "sample.din")
        kinds = [i.kind for i in trace.instructions]
        assert kinds.count(InstructionKind.COMPUTE) == 12
        assert kinds.count(InstructionKind.LOAD) == 8
        assert kinds.count(InstructionKind.STORE) == 4
        assert all(i.size == 4 for i in trace.memory_references)

    def test_extra_columns_ignored(self):
        trace = parse_dinero(["0 12ff00a4 extra stuff"])
        assert trace[0].address == 0x12FF00A4

    def test_malformed_line_reports_number(self):
        with pytest.raises(TraceParseError, match=r"line 2: malformed din"):
            parse_dinero(["0 12ff00a4", "only-one-field"], source="app.din")

    def test_bad_address_reports_number(self):
        with pytest.raises(TraceParseError, match=r"line 1: bad din address"):
            parse_dinero(["0 zz"])

    def test_unknown_label_reports_number(self):
        with pytest.raises(TraceParseError, match=r"line 1: unknown din label '7'"):
            parse_dinero(["7 12ff00a4"])


class TestCsvParser:
    def test_sample_file(self):
        trace = load_trace(DATA / "sample.csv")
        assert len(trace) == 10
        assert trace[0].kind is InstructionKind.LOAD and trace[0].address == 0x1000
        assert trace[3].deps == (1, 3)
        assert trace[5].address == 4128 and trace[5].size == 8

    def test_size_defaults_to_four(self):
        trace = parse_csv(["kind,address", "load,0x10"])
        assert trace[0].size == 4

    def test_missing_header_rejected(self):
        with pytest.raises(TraceParseError, match="must name 'kind' and 'address'"):
            parse_csv(["address,size", "0x10,4"])

    def test_empty_file_rejected(self):
        with pytest.raises(TraceParseError, match="empty file"):
            parse_csv([])

    def test_malformed_row_reports_number(self):
        with pytest.raises(TraceParseError, match=r"line 3: malformed CSV"):
            parse_csv(["kind,address", "load,0x10", "jump,0x14"], source="app.csv")


class TestLoadTrace:
    def test_sniffing(self):
        assert sniff_format("a.lackey") == "lackey"
        assert sniff_format("a.vgtrace.gz") == "lackey"
        assert sniff_format("a.din") == "din"
        assert sniff_format("a.csv.gz") == "csv"
        assert sniff_format("a.rtrc") == "rtrc"
        assert sniff_format("a.jsonl.gz") == "jsonl"
        assert sniff_format("a.bin") is None

    def test_unknown_extension_raises(self, tmp_path):
        path = tmp_path / "trace.bin"
        path.write_text(" L 10,4\n")
        with pytest.raises(TraceParseError, match="cannot infer the trace format"):
            load_trace(path)

    def test_explicit_format_overrides_extension(self, tmp_path):
        path = tmp_path / "trace.bin"
        path.write_text(" L 10,4\n")
        assert len(load_trace(path, fmt="lackey")) == 1

    def test_gzip_text_input(self, tmp_path):
        path = tmp_path / "app.lackey.gz"
        with gzip.open(path, "wt") as handle:
            handle.write("I  100,4\n L 200,4\n")
        trace = load_trace(path)
        assert trace.name == "app" and len(trace) == 2

    def test_jsonl_and_rtrc_formats(self, tmp_path):
        source = _toy_trace()
        jsonl = tmp_path / "t.jsonl"
        source.to_jsonl(jsonl)
        assert load_trace(jsonl).instructions == source.instructions
        rtrc = tmp_path / "t.rtrc"
        rtrc.write_bytes(source.to_bytes())
        assert load_trace(rtrc).instructions == source.instructions

    def test_name_override(self):
        trace = load_trace(DATA / "sample.din", name="renamed")
        assert trace.name == "renamed"


# ----------------------------------------------------------------------
# Transforms
# ----------------------------------------------------------------------
class TestTransforms:
    def test_window_slices_region_of_interest(self):
        trace = _toy_trace()
        roi = window(trace, 2, 5)
        assert [i.kind for i in roi] == [i.kind for i in trace.instructions[2:5]]
        assert roi[0].seq == 0  # re-sequenced

    def test_skip_warmup(self):
        trace = _toy_trace()
        assert len(skip_warmup(trace, 4)) == len(trace) - 4
        assert skip_warmup(trace, 0).instructions == trace.instructions

    def test_subsample_keeps_every_kth(self):
        trace = _toy_trace()
        sampled = subsample(trace, 2)
        assert len(sampled) == 3
        assert [i.address for i in sampled] == [
            trace[0].address,
            trace[2].address,
            trace[4].address,
        ]
        assert all(i.deps == () for i in sampled)

    def test_interleave_round_robin_order(self):
        a = MemoryTrace("a", [load(0x100), load(0x104), load(0x108)])
        b = MemoryTrace("b", [store(0x200), store(0x204)])
        merged = interleave([a, b], granularity=2)
        assert [i.address for i in merged] == [0x100, 0x104, 0x200, 0x204, 0x108]
        assert merged.name == "a+b"

    def test_interleave_remaps_dependencies_exactly(self):
        a = MemoryTrace("a", [load(0x100), compute(deps=(1,)), load(0x108, deps=(2,))])
        b = MemoryTrace("b", [store(0x200), store(0x204), store(0x208)])
        merged = interleave([a, b], granularity=1)
        # Order: a0 b0 a1 b1 a2 b2 -> a1 at seq 2 consumes a0 at seq 0,
        # a2 at seq 4 also consumes a0.
        assert merged[2].producers() == (0,)
        assert merged[4].producers() == (0,)

    def test_interleave_simulates(self):
        merged = interleave([_toy_trace("a"), _toy_trace("b", base=0x8000)])
        result = run_configuration(SimulationConfig.malec(), merged, warmup_fraction=0.0)
        assert result.instructions == len(merged)


# ----------------------------------------------------------------------
# Registry and campaign integration
# ----------------------------------------------------------------------
class TestRegistry:
    def test_register_and_resolve(self):
        handle = register_trace(_toy_trace())
        assert registered_trace(handle.name) is not None
        assert registered_handle(handle.name).fingerprint == handle.fingerprint
        assert handle.name.startswith("toy@")
        assert workload_suite(handle.name) == "ingested"
        assert workload_trace_hash(handle.name) == handle.fingerprint
        validate_workload(handle.name)

    def test_reregistering_same_content_is_idempotent(self):
        assert register_trace(_toy_trace()) == register_trace(_toy_trace())

    def test_same_name_different_content_conflicts(self):
        register_trace(_toy_trace(), name="app")
        with pytest.raises(ValueError, match="different content"):
            register_trace(_toy_trace(base=0x9000), name="app")

    def test_profile_names_are_reserved(self):
        with pytest.raises(ValueError, match="synthetic benchmark profile"):
            register_trace(_toy_trace(), name="gzip")

    def test_unknown_workload_rejected(self):
        with pytest.raises(KeyError, match="unknown workload"):
            validate_workload("no-such-workload")

    def test_synthetic_workloads_still_resolve(self):
        validate_workload("gzip")
        assert workload_suite("gzip") == "SPEC-INT"
        assert workload_trace_hash("gzip") == ""


class TestCampaignIntegration:
    def _spec(self, *names, instructions=300):
        return CampaignSpec(
            name="ingest-test",
            configurations=(SimulationConfig.base_1ldst(), SimulationConfig.malec()),
            benchmarks=names,
            instructions=instructions,
            warmup_fraction=0.0,
        )

    def test_spec_rejects_unregistered_trace_names(self):
        with pytest.raises(KeyError, match="unknown workload"):
            self._spec("gzip", "missing@0123456789")

    def test_cells_carry_the_content_hash(self):
        handle = register_trace(_toy_trace())
        cells = self._spec("gzip", handle.name).cells()
        by_benchmark = {cell.benchmark: cell for cell in cells}
        assert by_benchmark["gzip"].trace_hash == ""
        assert by_benchmark[handle.name].trace_hash == handle.fingerprint

    def test_cell_key_depends_on_trace_content(self):
        config = SimulationConfig.malec()
        cell = CampaignCell(
            benchmark="app", config=config, instructions=300, trace_hash="a" * 20
        )
        other = CampaignCell(
            benchmark="app", config=config, instructions=300, trace_hash="b" * 20
        )
        plain = CampaignCell(benchmark="app", config=config, instructions=300)
        assert len({cell.key(), other.key(), plain.key()}) == 3

    def test_synthetic_cell_keys_unchanged_by_the_new_field(self):
        # The trace_hash field must not shift keys of existing stored cells.
        config = SimulationConfig.base_1ldst()
        cell = CampaignCell(benchmark="gzip", config=config, instructions=500)
        assert cell.key() == CampaignCell(
            benchmark="gzip", config=config, instructions=500, trace_hash=""
        ).key()

    def test_executor_runs_mixed_grid(self):
        handle = register_trace(_toy_trace())
        results = ParallelExecutor(jobs=1).run(self._spec("gzip", handle.name))
        run = results.run_for(handle.name)
        assert run.suite == "ingested"
        assert run.results["MALEC"].instructions == len(_toy_trace())
        assert results.run_for("gzip").results["MALEC"].instructions > 0

    def test_long_traces_truncate_to_the_cell_budget(self):
        long = MemoryTrace("long", [load(0x100 + 4 * i) for i in range(64)])
        handle = register_trace(long)
        results = ParallelExecutor(jobs=1).run(self._spec(handle.name, instructions=16))
        assert results.run_for(handle.name).results["MALEC"].instructions == 16

    def test_store_resume_recognises_reregistered_traces(self, tmp_path):
        handle = register_trace(_toy_trace())
        store_dir = ResultStore(tmp_path / "camp")
        spec = self._spec(handle.name)
        first = ParallelExecutor(jobs=1, store=store_dir)
        first.run(spec)
        assert len(first.completed_cells) == 2

        # A fresh registry (new process, same trace bytes) resumes fully.
        clear_registry()
        register_trace(_toy_trace())
        second = ParallelExecutor(jobs=1, store=ResultStore(tmp_path / "camp"))
        second.run(self._spec(handle.name))
        assert len(second.completed_cells) == 0
        assert len(second.skipped_cells) == 2

    def test_store_records_the_trace_hash(self, tmp_path):
        handle = register_trace(_toy_trace())
        store_dir = ResultStore(tmp_path / "camp")
        ParallelExecutor(jobs=1, store=store_dir).run(self._spec(handle.name))
        records = list(store_dir.records())
        assert all(r["trace_hash"] == handle.fingerprint for r in records)

    def test_pool_path_ships_trace_bytes(self):
        handle = register_trace(_toy_trace())
        executor = ParallelExecutor(jobs=2)
        results = executor.run(self._spec("gzip", handle.name))
        # Pool or serial fallback: either way every cell must be present.
        assert results.run_for(handle.name).results["Base1ldst"].cycles > 0

    def test_reregistered_name_with_new_content_is_not_served_stale(self):
        # Same name, different bytes after a registry reset: the trace cache
        # is keyed by content hash, so the second sweep must simulate the
        # *new* trace, not the one cached from the first sweep.
        register_trace(_toy_trace(), name="app")
        executor = ParallelExecutor(jobs=1)
        first = executor.run(self._spec("app"))

        clear_registry()
        longer = MemoryTrace("toy", list(_toy_trace()) + [load(0x4000), store(0x4008)])
        register_trace(longer, name="app")
        second = ParallelExecutor(jobs=1, trace_cache=executor.trace_cache).run(
            self._spec("app")
        )
        assert first.run_for("app").results["MALEC"].instructions == 6
        assert second.run_for("app").results["MALEC"].instructions == 8

    def test_manifest_lists_trace_fingerprints(self, tmp_path):
        handle = register_trace(_toy_trace())
        store_dir = ResultStore(tmp_path / "camp")
        ParallelExecutor(jobs=1, store=store_dir).run(self._spec("gzip", handle.name))
        manifest = store_dir.manifest()
        assert manifest["traces"] == {handle.name: handle.fingerprint}
