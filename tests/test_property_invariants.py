"""Property-based invariants for the cache, TLB and way-determination logic.

The properties are the structural guarantees the paper's Sec. IV/V argument
rests on:

* a set-associative lookup immediately after an insert always hits, in the
  way the insert reported;
* true-LRU replacement never victimises the most-recently-used way;
* way-table predictions are *valid-or-unknown* — a known way always matches
  the tag array (this is what makes tag-bypassed "reduced" accesses safe);
* a TLB lookup after an insert hits, and the reverse (physical) index stays
  consistent with the forward one.

Each invariant is written as a plain checker driven by ``hypothesis`` when
it is installed, and by a seeded ``random`` sweep otherwise, so the suite
keeps its property coverage on minimal environments.
"""

from __future__ import annotations

import random

import pytest

from repro.cache.replacement import LRUReplacement
from repro.cache.set_assoc import SetAssociativeArray
from repro.memory.address import AddressLayout
from repro.memory.hierarchy import MemoryHierarchy
from repro.core.way_table import WayTableHierarchy
from repro.stats import StatCounters
from repro.tlb.tlb import TLBHierarchy

try:  # pragma: no cover - which branch runs depends on the environment
    from hypothesis import HealthCheck, given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover
    HAVE_HYPOTHESIS = False

#: cases per property in the stdlib-random fallback sweep
FALLBACK_CASES = 25


def fallback_seeds():
    """Deterministic seeds for the no-hypothesis sweep."""
    return pytest.mark.parametrize("seed", range(FALLBACK_CASES))


# ----------------------------------------------------------------------
# Invariant checkers (shared by both drivers)
# ----------------------------------------------------------------------
def check_lookup_after_insert_hits(num_sets: int, ways: int, seed: int) -> None:
    """Filling a tag and looking it up immediately must hit in that way."""
    rng = random.Random(seed)
    array = SetAssociativeArray(num_sets=num_sets, ways=ways, seed=seed)
    for _ in range(4 * num_sets * ways):
        set_index = rng.randrange(num_sets)
        tag = rng.randrange(8 * ways)
        way, _ = array.fill(set_index, tag)
        result = array.lookup(set_index, tag, update_replacement=False)
        assert result.hit, (set_index, tag)
        assert result.way == way
        assert array.line(set_index, way).tag == tag
        assert tag in array.valid_tags(set_index)


def check_lru_never_evicts_mru(ways: int, seed: int) -> None:
    """With every way valid, the LRU victim is never the last-touched way."""
    rng = random.Random(seed)
    policy = LRUReplacement(ways)
    all_valid = [True] * ways
    last_touched = None
    for _ in range(8 * ways):
        way = rng.randrange(ways)
        policy.touch(way)
        last_touched = way
        victim = policy.victim(all_valid)
        assert victim != last_touched or ways == 1
        # The victim stays stable until someone touches it.
        assert policy.victim(all_valid) == victim


def check_way_predictions_match_tag_array(accesses: int, seed: int) -> None:
    """A *known* way-table prediction always matches the cache's tag array.

    This is the safety property behind reduced (tag-bypassed) accesses: the
    paper's way tables are "valid-or-unknown", never wrong (Sec. V).
    """
    rng = random.Random(seed)
    stats = StatCounters()
    layout = AddressLayout()
    hierarchy = MemoryHierarchy(layout=layout, stats=stats, seed=seed)
    translation = TLBHierarchy(layout=layout, stats=stats, seed=seed)
    way_tables = WayTableHierarchy(translation, layout=layout, stats=stats)
    way_tables.attach_to_cache(hierarchy.l1)

    pages = [rng.randrange(1 << 10) for _ in range(6)]
    for _ in range(accesses):
        virtual = layout.compose_line(
            rng.choice(pages),
            rng.randrange(layout.lines_per_page),
            rng.randrange(0, layout.line_bytes, 4),
        )
        result = translation.translate(virtual)
        line_in_page = layout.line_in_page(virtual)
        prediction = way_tables.predict_line(result.virtual_page, line_in_page)
        physical_line = layout.line_address(result.physical_address)
        if prediction.known:
            assert hierarchy.l1.way_of(physical_line) == prediction.way, (
                hex(virtual),
                prediction.way,
            )
        # Access (and possibly fill) the line, mutating cache + way tables.
        hierarchy.l1.load(result.physical_address)


def check_tlb_insert_lookup_consistency(entries: int, seed: int) -> None:
    """Lookups after inserts hit, and the reverse index mirrors the forward."""
    rng = random.Random(seed)
    stats = StatCounters()
    translation = TLBHierarchy(
        utlb_entries=max(2, entries // 4),
        tlb_entries=entries,
        stats=stats,
        seed=seed,
    )
    tlb = translation.tlb
    for _ in range(6 * entries):
        vpage = rng.randrange(1 << 12)
        ppage = translation.page_table.translate_page(vpage)
        slot = tlb.insert(vpage, ppage)
        assert tlb.lookup(vpage, count_event=False) == slot
        assert tlb.slot(slot).physical_page == ppage
        assert tlb.reverse_lookup(ppage, count_event=False) == slot
        assert tlb.occupancy <= entries
    # Every resident virtual page must be reachable both ways.
    for vpage in tlb.resident_virtual_pages():
        slot = tlb.lookup(vpage, count_event=False)
        assert slot is not None
        assert tlb.reverse_lookup(tlb.slot(slot).physical_page, count_event=False) == slot


# ----------------------------------------------------------------------
# Drivers
# ----------------------------------------------------------------------
if HAVE_HYPOTHESIS:

    COMMON = dict(
        deadline=None,
        max_examples=25,
        suppress_health_check=[HealthCheck.too_slow],
    )

    class TestPropertiesHypothesis:
        @given(
            num_sets=st.integers(min_value=1, max_value=32),
            ways=st.integers(min_value=1, max_value=8),
            seed=st.integers(min_value=0, max_value=2**20),
        )
        @settings(**COMMON)
        def test_lookup_after_insert_hits(self, num_sets, ways, seed):
            check_lookup_after_insert_hits(num_sets, ways, seed)

        @given(
            ways=st.integers(min_value=1, max_value=16),
            seed=st.integers(min_value=0, max_value=2**20),
        )
        @settings(**COMMON)
        def test_lru_never_evicts_mru(self, ways, seed):
            check_lru_never_evicts_mru(ways, seed)

        @given(seed=st.integers(min_value=0, max_value=2**20))
        @settings(deadline=None, max_examples=10)
        def test_way_predictions_match_tag_array(self, seed):
            check_way_predictions_match_tag_array(accesses=120, seed=seed)

        @given(
            entries=st.integers(min_value=2, max_value=64),
            seed=st.integers(min_value=0, max_value=2**20),
        )
        @settings(**COMMON)
        def test_tlb_insert_lookup_consistency(self, entries, seed):
            check_tlb_insert_lookup_consistency(entries, seed)

else:  # pragma: no cover - exercised only without hypothesis

    class TestPropertiesFallback:
        @fallback_seeds()
        def test_lookup_after_insert_hits(self, seed):
            rng = random.Random(1000 + seed)
            check_lookup_after_insert_hits(
                num_sets=rng.randrange(1, 33), ways=rng.randrange(1, 9), seed=seed
            )

        @fallback_seeds()
        def test_lru_never_evicts_mru(self, seed):
            rng = random.Random(2000 + seed)
            check_lru_never_evicts_mru(ways=rng.randrange(1, 17), seed=seed)

        @pytest.mark.parametrize("seed", range(8))
        def test_way_predictions_match_tag_array(self, seed):
            check_way_predictions_match_tag_array(accesses=120, seed=seed)

        @fallback_seeds()
        def test_tlb_insert_lookup_consistency(self, seed):
            rng = random.Random(3000 + seed)
            check_tlb_insert_lookup_consistency(
                entries=rng.randrange(2, 65), seed=seed
            )
