"""Integration tests: configuration, simulator, experiment runner, reporting,
and coarse checks of the paper's headline claims on small traces."""

import pytest

from repro.analysis.experiments import ExperimentRunner
from repro.analysis.reporting import format_table, geometric_mean, normalize
from repro.energy.energy_model import EnergyModelConfig
from repro.sim.config import InterfaceKind, MalecParameters, SimulationConfig
from repro.sim.simulator import run_configuration
from repro.workloads.suites import benchmark_profile
from repro.workloads.synthetic import generate_trace


class TestReportingHelpers:
    def test_geometric_mean(self):
        assert geometric_mean([2, 8]) == pytest.approx(4.0)
        assert geometric_mean([]) == 0.0
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_normalize(self):
        values = {"a": 2.0, "b": 4.0}
        assert normalize(values, "a") == {"a": 1.0, "b": 2.0}
        with pytest.raises(ValueError):
            normalize({"a": 0.0}, "a")

    def test_format_table(self):
        text = format_table(["name", "value"], [["x", 1.23456], ["y", 2]])
        assert "name" in text and "x" in text and "1.235" in text
        assert len(text.splitlines()) == 4


class TestSimulationConfig:
    def test_factories_and_names(self):
        assert SimulationConfig.base_1ldst().name == "Base1ldst"
        assert SimulationConfig.base_2ld1st().name == "Base2ld1st"
        assert SimulationConfig.malec().name == "MALEC"
        assert SimulationConfig.malec(l1_hit_latency=3).name == "MALEC_3cycleL1"
        assert SimulationConfig.base_2ld1st(l1_hit_latency=1).name == "Base2ld1st_1cycleL1"

    def test_figure4_suite_has_five_configurations(self):
        names = [config.name for config in SimulationConfig.figure4_suite()]
        assert len(names) == 5 and len(set(names)) == 5
        assert "Base1ldst" in names and "MALEC" in names

    def test_table1_ports(self):
        """Table I: port counts of the three interfaces."""
        base1 = SimulationConfig.base_1ldst()
        base2 = SimulationConfig.base_2ld1st()
        malec = SimulationConfig.malec()
        assert base1.l1_read_ports == 1 and base1.tlb_ports == 1
        assert base2.l1_read_ports == 2 and base2.tlb_ports == 3
        assert malec.l1_read_ports == 1 and malec.tlb_ports == 1
        assert base2.table1_row()["addr_comp_per_cycle"] == "2 ld + 1 st"
        assert malec.table1_row()["addr_comp_per_cycle"] == "1 ld + 2 ld/st"

    def test_energy_model_config_derivation(self):
        malec = SimulationConfig.malec()
        config = malec.energy_model_config()
        assert isinstance(config, EnergyModelConfig)
        assert config.has_way_tables and config.wdu_entries == 0
        wdu = SimulationConfig.malec(
            malec_options=MalecParameters(way_determination="wdu", wdu_entries=32)
        )
        assert wdu.energy_model_config().wdu_entries == 32
        base = SimulationConfig.base_2ld1st().energy_model_config()
        assert base.l1_ports == 2 and not base.has_way_tables

    def test_with_name(self):
        config = SimulationConfig.malec().with_name("MALEC-ablation")
        assert config.name == "MALEC-ablation"
        assert config.interface is InterfaceKind.MALEC


class TestSimulator:
    @pytest.fixture(scope="class")
    def trace(self):
        return generate_trace(benchmark_profile("gzip"), instructions=1500)

    def test_result_fields(self, trace):
        result = run_configuration(SimulationConfig.base_1ldst(), trace)
        assert result.cycles > 0
        assert result.instructions == len(trace)
        assert result.loads > 0 and result.stores > 0
        assert 0 < result.ipc <= 6
        assert result.energy.total_pj > 0
        assert 0 <= result.l1_load_miss_rate <= 1

    def test_all_interfaces_run_the_same_trace(self, trace):
        for config in SimulationConfig.figure4_suite():
            result = run_configuration(config, trace)
            assert result.instructions == len(trace)

    def test_determinism(self, trace):
        a = run_configuration(SimulationConfig.malec(), trace)
        b = run_configuration(SimulationConfig.malec(), trace)
        assert a.cycles == b.cycles
        assert a.energy.total_pj == pytest.approx(b.energy.total_pj)

    def test_warmup_reduces_measured_instructions(self, trace):
        full = run_configuration(SimulationConfig.base_1ldst(), trace)
        warmed = run_configuration(SimulationConfig.base_1ldst(), trace, warmup_fraction=0.5)
        assert warmed.instructions < full.instructions
        assert warmed.cycles < full.cycles

    def test_invalid_warmup_rejected(self, trace):
        with pytest.raises(ValueError):
            run_configuration(SimulationConfig.base_1ldst(), trace, warmup_fraction=1.0)

    def test_malec_counts_way_lookups_and_merges(self, trace):
        result = run_configuration(SimulationConfig.malec(), trace)
        assert result.stats["malec.way_lookup"] > 0
        assert 0 <= result.way_coverage <= 1
        assert 0 <= result.merged_load_fraction < 1

    def test_baselines_never_use_way_determination(self, trace):
        result = run_configuration(SimulationConfig.base_2ld1st(), trace)
        assert result.way_coverage == 0.0
        assert result.stats.get("l1.reduced_access", 0) == 0


class TestPaperClaims:
    """Coarse trend checks of the headline results on a small, fast workload."""

    @pytest.fixture(scope="class")
    def results(self):
        trace = generate_trace(benchmark_profile("djpeg"), instructions=3000)
        out = {}
        for config in SimulationConfig.figure4_suite():
            out[config.name] = run_configuration(config, trace, warmup_fraction=0.3)
        return out

    def test_multi_access_interfaces_are_faster(self, results):
        base = results["Base1ldst"].cycles
        assert results["Base2ld1st"].cycles < base
        assert results["MALEC"].cycles < base

    def test_malec_close_to_base2ld1st_performance(self, results):
        """Sec. VI-B: MALEC performs within a few percent of Base2ld1st."""
        ratio = results["MALEC"].cycles / results["Base2ld1st"].cycles
        assert ratio < 1.08

    def test_shorter_l1_latency_helps_and_longer_hurts(self, results):
        assert results["Base2ld1st_1cycleL1"].cycles <= results["Base2ld1st"].cycles
        assert results["MALEC_3cycleL1"].cycles >= results["MALEC"].cycles

    def test_base2ld1st_costs_more_energy_than_base1ldst(self, results):
        """Fig. 4b: the multi-ported interface pays in dynamic and leakage energy."""
        base = results["Base1ldst"].energy
        multi = results["Base2ld1st"].energy
        assert multi.dynamic_pj > 1.2 * base.dynamic_pj
        assert multi.total_pj > 1.2 * base.total_pj

    def test_malec_saves_energy_relative_to_both_baselines(self, results):
        base = results["Base1ldst"].energy.total_pj
        multi = results["Base2ld1st"].energy.total_pj
        malec = results["MALEC"].energy.total_pj
        assert malec < base < multi

    def test_malec_dynamic_energy_reduction(self, results):
        """Sec. VI-C: MALEC saves a large share of dynamic energy."""
        base = results["Base1ldst"].energy.dynamic_pj
        malec = results["MALEC"].energy.dynamic_pj
        assert malec < 0.85 * base

    def test_way_coverage_majority_of_accesses(self, results):
        assert results["MALEC"].way_coverage > 0.5

    def test_l2_traffic_roughly_unchanged(self, results):
        """Sec. VI-A: MALEC does not significantly change L2 access counts."""
        base = results["Base1ldst"].stats.get("l2.access", 0)
        malec = results["MALEC"].stats.get("l2.access", 0)
        assert base > 0
        assert abs(malec - base) / base < 0.35


class TestExperimentRunner:
    def test_runner_over_two_benchmarks(self):
        runner = ExperimentRunner(instructions=1200, benchmarks=["gzip", "djpeg"], warmup_fraction=0.2)
        configs = [SimulationConfig.base_1ldst(), SimulationConfig.malec()]
        results = runner.run(configs)
        assert results.configurations == ["Base1ldst", "MALEC"]
        assert len(results.runs) == 2
        run = results.run_for("gzip")
        assert set(run.results) == {"Base1ldst", "MALEC"}
        normalized = run.normalized_cycles("Base1ldst")
        assert normalized["Base1ldst"] == pytest.approx(1.0)
        geomeans = results.geomean_normalized_cycles("Base1ldst")
        assert geomeans["Base1ldst"] == pytest.approx(1.0)
        energy = results.geomean_normalized_energy("Base1ldst")
        assert energy["MALEC"] > 0
        assert results.suites() == ["SPEC-INT", "MB2"]
        with pytest.raises(KeyError):
            results.run_for("missing")

    def test_trace_cache_reused(self):
        runner = ExperimentRunner(instructions=500, benchmarks=["gzip"])
        assert runner.trace_for("gzip") is runner.trace_for("gzip")

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ExperimentRunner(instructions=0)
