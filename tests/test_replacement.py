"""Tests for the replacement policies (LRU, PLRU, random, second chance)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.replacement import (
    LRUReplacement,
    RandomReplacement,
    SecondChanceReplacement,
    TreePLRUReplacement,
    make_replacement_policy,
)


class TestFactory:
    @pytest.mark.parametrize("name", ["lru", "plru", "random", "second_chance"])
    def test_factory_builds_each_policy(self, name):
        policy = make_replacement_policy(name, 4)
        assert policy.ways == 4

    def test_factory_rejects_unknown_policy(self):
        with pytest.raises(ValueError):
            make_replacement_policy("fifo", 4)

    def test_rejects_zero_ways(self):
        with pytest.raises(ValueError):
            LRUReplacement(0)


class TestCommonBehaviour:
    @pytest.mark.parametrize("name", ["lru", "plru", "random", "second_chance"])
    def test_invalid_ways_preferred(self, name):
        policy = make_replacement_policy(name, 4)
        valid = [True, False, True, True]
        assert policy.victim(valid) == 1

    @pytest.mark.parametrize("name", ["lru", "plru", "random", "second_chance"])
    def test_excluded_way_never_chosen(self, name):
        policy = make_replacement_policy(name, 4)
        for _ in range(50):
            victim = policy.victim([True] * 4, excluded_way=2)
            assert victim != 2
            policy.touch(victim)

    @pytest.mark.parametrize("name", ["lru", "plru", "random", "second_chance"])
    def test_victim_in_range(self, name):
        policy = make_replacement_policy(name, 8)
        assert 0 <= policy.victim([True] * 8) < 8

    def test_touch_rejects_bad_way(self):
        policy = LRUReplacement(4)
        with pytest.raises(ValueError):
            policy.touch(4)

    def test_mismatched_valid_mask_rejected(self):
        policy = LRUReplacement(4)
        with pytest.raises(ValueError):
            policy.victim([True, True])

    def test_cannot_exclude_only_way(self):
        policy = LRUReplacement(1)
        with pytest.raises(ValueError):
            policy.victim([True], excluded_way=0)


class TestLRU:
    def test_evicts_least_recently_used(self):
        policy = LRUReplacement(4)
        for way in (0, 1, 2, 3):
            policy.touch(way)
        policy.touch(0)  # order (MRU..LRU): 0,3,2,1
        assert policy.victim([True] * 4) == 1

    def test_touch_promotes(self):
        policy = LRUReplacement(4)
        for way in (0, 1, 2, 3):
            policy.touch(way)
        policy.touch(1)
        assert policy.victim([True] * 4) == 0

    def test_excluded_way_falls_back_to_next_lru(self):
        policy = LRUReplacement(4)
        for way in (0, 1, 2, 3):
            policy.touch(way)
        # LRU order is 0 but it is excluded, so 1 is chosen.
        assert policy.victim([True] * 4, excluded_way=0) == 1


class TestTreePLRU:
    def test_requires_power_of_two(self):
        with pytest.raises(ValueError):
            TreePLRUReplacement(3)

    def test_points_away_from_recent_touches(self):
        policy = TreePLRUReplacement(4)
        policy.touch(0)
        victim = policy.victim([True] * 4)
        assert victim != 0

    @given(st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=40))
    @settings(max_examples=50)
    def test_victim_always_valid_way(self, touches):
        policy = TreePLRUReplacement(4)
        for way in touches:
            policy.touch(way)
        assert 0 <= policy.victim([True] * 4) < 4


class TestRandom:
    def test_deterministic_with_seed(self):
        a = RandomReplacement(4, seed=7)
        b = RandomReplacement(4, seed=7)
        seq_a = [a.victim([True] * 4) for _ in range(20)]
        seq_b = [b.victim([True] * 4) for _ in range(20)]
        assert seq_a == seq_b

    def test_covers_all_ways_eventually(self):
        policy = RandomReplacement(4, seed=3)
        chosen = {policy.victim([True] * 4) for _ in range(200)}
        assert chosen == {0, 1, 2, 3}


class TestSecondChance:
    def test_referenced_way_gets_second_chance(self):
        policy = SecondChanceReplacement(4)
        policy.touch(0)  # way 0 referenced
        victim = policy.victim([True] * 4)
        assert victim == 1  # hand starts at 0, skips referenced way 0

    def test_sweep_clears_reference_bits(self):
        policy = SecondChanceReplacement(2)
        policy.touch(0)
        policy.touch(1)
        # All referenced: the sweep clears bits and then evicts the first.
        victim = policy.victim([True, True])
        assert victim in (0, 1)

    def test_prefers_invalid_ways(self):
        policy = SecondChanceReplacement(4)
        policy.touch(2)
        assert policy.victim([True, True, True, False]) == 3
