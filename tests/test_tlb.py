"""Tests for the page table, TLB/uTLB and the translation hierarchy."""

import pytest

from repro.memory.address import DEFAULT_LAYOUT
from repro.stats import StatCounters
from repro.tlb.page_table import PageTable
from repro.tlb.tlb import TLB, TLBHierarchy

layout = DEFAULT_LAYOUT


class TestPageTable:
    def test_translation_is_deterministic(self):
        a = PageTable(seed=1)
        b = PageTable(seed=1)
        pages = [7, 3, 1000, 7, 3]
        assert [a.translate_page(p) for p in pages] == [b.translate_page(p) for p in pages]

    def test_same_virtual_page_keeps_mapping(self):
        table = PageTable()
        first = table.translate_page(42)
        assert table.translate_page(42) == first
        assert table.mapped_pages == 1

    def test_distinct_pages_get_distinct_frames(self):
        table = PageTable()
        frames = {table.translate_page(p) for p in range(200)}
        assert len(frames) == 200

    def test_translate_preserves_offset(self):
        table = PageTable()
        vaddr = layout.compose(5, 123)
        paddr = table.translate(vaddr)
        assert layout.page_offset(paddr) == 123

    def test_reverse_translate(self):
        table = PageTable()
        frame = table.translate_page(9)
        assert table.reverse_translate_page(frame) == 9
        assert table.reverse_translate_page(frame + 1 if frame + 1 < table.physical_pages else frame - 1) in (None, 9) or True

    def test_out_of_frames(self):
        table = PageTable(physical_pages=2)
        table.translate_page(0)
        table.translate_page(1)
        with pytest.raises(RuntimeError):
            table.translate_page(2)

    def test_rejects_bad_virtual_page(self):
        table = PageTable()
        with pytest.raises(ValueError):
            table.translate_page(1 << 20)


class TestTLB:
    def test_insert_and_lookup(self):
        tlb = TLB(entries=4, name="t")
        slot = tlb.insert(5, 100)
        assert tlb.lookup(5) == slot
        assert tlb.translation(5) == 100
        assert tlb.occupancy == 1

    def test_miss_counts(self):
        stats = StatCounters()
        tlb = TLB(entries=4, name="t", stats=stats)
        assert tlb.lookup(9) is None
        assert stats["t.lookup"] == 1 and stats["t.miss"] == 1

    def test_reverse_lookup(self):
        tlb = TLB(entries=4, name="t")
        slot = tlb.insert(5, 100)
        assert tlb.reverse_lookup(100) == slot
        assert tlb.reverse_lookup(999) is None

    def test_eviction_callback_on_replacement(self):
        events = []
        tlb = TLB(entries=2, name="t", replacement="lru")
        tlb.add_eviction_callback(lambda slot, old, new: events.append((slot, old.valid)))
        tlb.insert(1, 10)
        tlb.insert(2, 20)
        tlb.insert(3, 30)
        # Three inserts into two slots: the third replaces a valid entry.
        assert any(valid for _, valid in events)
        assert tlb.occupancy == 2

    def test_reinsert_same_page_updates_mapping(self):
        tlb = TLB(entries=4, name="t")
        slot = tlb.insert(5, 100)
        assert tlb.insert(5, 200) == slot
        assert tlb.translation(5) == 200
        assert tlb.reverse_lookup(200) == slot
        assert tlb.reverse_lookup(100) is None

    def test_invalidate_all(self):
        tlb = TLB(entries=4, name="t")
        tlb.insert(5, 100)
        tlb.invalidate_all()
        assert tlb.occupancy == 0
        assert tlb.lookup(5, count_event=False) is None

    def test_resident_pages_listing(self):
        tlb = TLB(entries=4, name="t")
        tlb.insert(5, 100)
        tlb.insert(3, 101)
        assert tlb.resident_virtual_pages() == [3, 5]

    def test_rejects_zero_entries(self):
        with pytest.raises(ValueError):
            TLB(entries=0)


class TestTLBHierarchy:
    def test_first_access_walks_then_hits(self, stats):
        hierarchy = TLBHierarchy(stats=stats)
        vaddr = layout.compose(77, 10)
        first = hierarchy.translate(vaddr)
        assert not first.utlb_hit and not first.tlb_hit
        assert first.latency == hierarchy.walk_latency
        second = hierarchy.translate(vaddr)
        assert second.utlb_hit and second.latency == 0
        assert second.physical_page == first.physical_page

    def test_tlb_hit_refills_utlb(self, stats):
        hierarchy = TLBHierarchy(utlb_entries=2, tlb_entries=64, stats=stats)
        pages = list(range(10))
        for page in pages:
            hierarchy.translate(layout.compose(page, 0))
        # Page 0 has long since left the 2-entry uTLB but stays in the TLB.
        result = hierarchy.translate(layout.compose(0, 0))
        assert not result.utlb_hit and result.tlb_hit
        assert result.latency == 1

    def test_offset_preserved(self):
        hierarchy = TLBHierarchy()
        result = hierarchy.translate(layout.compose(55, 321))
        assert layout.page_offset(result.physical_address) == 321

    def test_translation_is_stable(self):
        hierarchy = TLBHierarchy()
        a = hierarchy.translate(layout.compose(5, 0)).physical_page
        for page in range(200):
            hierarchy.translate(layout.compose(page, 0))
        assert hierarchy.translate(layout.compose(5, 0)).physical_page == a

    def test_utlb_uses_second_chance_and_tlb_random(self):
        hierarchy = TLBHierarchy()
        from repro.cache.replacement import RandomReplacement, SecondChanceReplacement

        assert isinstance(hierarchy.utlb._policy, SecondChanceReplacement)
        assert isinstance(hierarchy.tlb._policy, RandomReplacement)

    def test_lookup_event_counting(self, stats):
        hierarchy = TLBHierarchy(stats=stats)
        hierarchy.translate(layout.compose(3, 0))
        hierarchy.translate(layout.compose(3, 0))
        assert stats["utlb.lookup"] == 2
        assert stats["utlb.hit"] == 1
        assert stats["tlb.walk"] == 1

    def test_translate_page_helper(self):
        hierarchy = TLBHierarchy()
        result = hierarchy.translate_page(12)
        assert result.virtual_page == 12
