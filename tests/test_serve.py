"""Round-trip tests for ``repro serve`` over a real HTTP socket.

A :class:`~repro.serve.ReproServer` on an ephemeral port, driven through
:mod:`http.client`: submit the fig4-mini preset, poll to completion, fetch
cells and the frontier, then prove the second identical submission was
served entirely from the store (zero recompute) via the telemetry journal.
"""

from __future__ import annotations

import http.client
import json
import time

import pytest

from repro.campaign.spec import campaign_preset
from repro.obs import telemetry
from repro.serve import ReproServer

POLL_TIMEOUT = 300.0


@pytest.fixture
def server(tmp_path):
    server = ReproServer(f"sqlite:{tmp_path / 'serve.db'}", port=0, jobs=1)
    server.start()
    yield server
    server.shutdown()


def request(server, method, path, body=None):
    """One HTTP exchange; returns ``(status, decoded JSON)``."""
    conn = http.client.HTTPConnection(server.host, server.port, timeout=30)
    try:
        payload = json.dumps(body) if body is not None else None
        headers = {"Content-Type": "application/json"} if payload else {}
        conn.request(method, path, body=payload, headers=headers)
        response = conn.getresponse()
        return response.status, json.loads(response.read().decode("utf-8"))
    finally:
        conn.close()


def poll_until_done(server, job_id):
    deadline = time.time() + POLL_TIMEOUT
    while time.time() < deadline:
        status, job = request(server, "GET", f"/api/v1/campaigns/{job_id}")
        assert status == 200
        if job["state"] == "done":
            return job
        assert job["state"] != "failed", job.get("error")
        time.sleep(0.1)
    raise AssertionError(f"campaign {job_id} never finished")


class TestEndpoints:
    def test_health(self, server):
        status, payload = request(server, "GET", "/api/v1/health")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["store"].startswith("sqlite:")

    def test_unknown_path_is_404(self, server):
        status, payload = request(server, "GET", "/nope")
        assert status == 404
        assert "api/v1" in payload["error"]

    def test_submit_needs_a_preset(self, server):
        status, payload = request(server, "POST", "/api/v1/campaigns", body={})
        assert status == 400
        assert "preset" in payload["error"]
        status, payload = request(
            server, "POST", "/api/v1/campaigns", body={"preset": "fig99"}
        )
        assert status == 400

    def test_bad_body_is_400(self, server):
        conn = http.client.HTTPConnection(server.host, server.port, timeout=30)
        try:
            conn.request(
                "POST", "/api/v1/campaigns", body="not json",
                headers={"Content-Type": "application/json"},
            )
            assert conn.getresponse().status == 400
        finally:
            conn.close()

    def test_missing_cell_is_404(self, server):
        status, _ = request(server, "GET", "/api/v1/cells/deadbeef")
        assert status == 404

    def test_frontier_before_done_is_409(self, server):
        status, _ = request(server, "GET", "/api/v1/campaigns/c0001/frontier")
        assert status == 404  # not submitted at all


class TestRoundTrip:
    def test_submit_poll_fetch_and_zero_recompute(self, server):
        # --- first submission computes every cell -----------------------
        status, job = request(
            server, "POST", "/api/v1/campaigns", body={"preset": "fig4-mini"}
        )
        assert status == 202
        assert job["state"] == "queued" or job["state"] == "running"
        first = poll_until_done(server, job["id"])
        spec = campaign_preset("fig4-mini")
        expected_keys = sorted(cell.key() for cell in spec.cells())
        assert first["keys"] == expected_keys
        assert first["cells_computed"] == len(expected_keys)
        assert first["cells_skipped"] == 0

        # --- cells come back verbatim from the shared store -------------
        for key in expected_keys[:3]:
            status, record = request(server, "GET", f"/api/v1/cells/{key}")
            assert status == 200
            assert record == server.store.record(key)

        # --- frontier: baseline normalizes to (1.0, 1.0) ----------------
        status, frontier = request(
            server, "GET", f"/api/v1/campaigns/{first['id']}/frontier"
        )
        assert status == 200
        assert frontier["objectives"] == ["runtime", "energy"]
        by_config = {point["config"]: point["values"] for point in frontier["points"]}
        baseline_values = by_config[frontier["baseline"]]
        assert baseline_values["runtime"] == pytest.approx(1.0)
        assert baseline_values["energy"] == pytest.approx(1.0)
        assert frontier["frontier"]  # non-empty

        # --- second identical submission: zero recompute ----------------
        status, job2 = request(
            server, "POST", "/api/v1/campaigns", body={"preset": "fig4-mini"}
        )
        assert status == 202
        second = poll_until_done(server, job2["id"])
        assert second["cells_computed"] == 0
        assert second["cells_skipped"] == len(expected_keys)
        assert second["keys"] == expected_keys

        # Proof from the journal, not just the in-memory counters: the
        # second submission's run_end records zero computed cells.
        lines = [
            json.loads(line)
            for line in server.store.telemetry_path.read_text().splitlines()
        ]
        run_end = {
            rec["run_id"]: rec for rec in lines if rec["record"] == "run_end"
        }
        assert run_end[second["run_id"]]["cells_computed"] == 0
        assert run_end[first["run_id"]]["cells_computed"] == len(expected_keys)

        # Every journal line — serve_request records included — validates
        # against the checked-in schema.
        schema = telemetry.load_schema()
        kinds = set()
        for record in lines:
            telemetry.validate_record(record, schema)
            kinds.add(record["record"])
        assert "serve_request" in kinds
        served = [rec for rec in lines if rec["record"] == "serve_request"]
        assert all(rec["run_id"] == server.journal.run_id for rec in served)
        assert {(rec["method"], rec["status"]) for rec in served} >= {
            ("POST", 202),
            ("GET", 200),
        }

    def test_campaign_listing(self, server):
        request(server, "POST", "/api/v1/campaigns", body={"preset": "fig4-mini"})
        status, listing = request(server, "GET", "/api/v1/campaigns")
        assert status == 200
        assert [job["id"] for job in listing["campaigns"]] == ["c0001"]
