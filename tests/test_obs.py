"""Tests for the observability subsystem (``repro.obs``).

The two hard guarantees the tentpole rests on are exercised here:

* **bit-identity** — attaching a collector / enabling metrics never changes
  a simulation's results (the golden fig4-mini comparison);
* **partition** — the cycle-attribution categories count every cycle exactly
  once, so they sum to the run's total cycle count.

Plus the supporting machinery: the metrics registry, the trace-event
exporter and its in-repo schema validator, collapsed-stack rendering, the
progress reporter, run-scoped logging and bench host metadata.
"""

from __future__ import annotations

import io
import json
import logging
import pstats

import pytest

from repro.bench import compare_host_warnings, host_metadata, run_benchmarks
from repro.campaign.executor import ParallelExecutor
from repro.campaign.spec import campaign_preset
from repro.obs import metrics as obs_metrics
from repro.obs import logs as obs_logs
from repro.obs.attribution import attribute_run, format_attribution
from repro.obs.collector import CYCLE_CATEGORIES, RunCollector
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.progress import ProgressReporter, make_progress
from repro.obs.traceevent import (
    SchemaError,
    TraceEventLog,
    load_schema,
    validate_trace_events,
)
from repro.sim.config import SimulationConfig
from repro.sim.simulator import run_configuration
from repro.workloads.suites import benchmark_profile
from repro.workloads.synthetic import generate_trace

INSTRUCTIONS = 1500
WARMUP = 0.25


@pytest.fixture(autouse=True)
def _isolate_obs_state():
    """Metrics/logging are process-global: leave them as we found them."""
    obs_metrics.disable()
    obs_metrics.registry.clear()
    yield
    obs_metrics.disable()
    obs_metrics.registry.clear()
    obs_logs.reset()


def _run(config, collector=None, benchmark="gzip"):
    trace = generate_trace(
        benchmark_profile(benchmark), instructions=INSTRUCTIONS
    )
    return run_configuration(
        config, trace, warmup_fraction=WARMUP, collector=collector
    )


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------
class TestMetrics:
    def test_counter_increments_and_rejects_negative(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_set_and_inc(self):
        gauge = Gauge("g")
        gauge.set(2.5)
        gauge.inc(-0.5)
        assert gauge.value == 2.0

    def test_histogram_buckets_and_summary(self):
        histogram = Histogram("h", buckets=(1.0, 10.0))
        for value in (0.5, 5.0, 50.0):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.sum == pytest.approx(55.5)
        assert histogram.min == pytest.approx(0.5)
        assert histogram.max == pytest.approx(50.0)
        assert histogram.mean == pytest.approx(55.5 / 3)

    def test_registry_get_or_create_and_kind_mismatch(self):
        registry = MetricsRegistry()
        counter = registry.counter("x")
        assert registry.counter("x") is counter
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_snapshot_is_json_able_and_sorted(self):
        registry = MetricsRegistry()
        registry.counter("b").inc(2)
        registry.gauge("a").set(1.0)
        registry.histogram("c").observe(0.01)
        snapshot = registry.snapshot()
        assert list(snapshot) == sorted(snapshot)
        payload = json.loads(json.dumps(snapshot))
        assert payload["b"] == 2
        assert "+Inf" in payload["c"]["buckets"]

    def test_module_enable_disable(self):
        assert not obs_metrics.enabled()
        obs_metrics.enable()
        assert obs_metrics.enabled()
        obs_metrics.disable()
        assert not obs_metrics.enabled()


# ----------------------------------------------------------------------
# Golden bit-identity and cycle attribution
# ----------------------------------------------------------------------
class TestIdentityAndAttribution:
    def test_results_bit_identical_with_collector_and_metrics(self):
        """The tentpole's hard constraint: observing a run never changes it."""
        config = SimulationConfig.malec()
        baseline = _run(config)
        obs_metrics.enable()
        observed = _run(config, collector=RunCollector(sample_every=50))
        assert observed.stats == baseline.stats
        assert observed.cycles == baseline.cycles
        assert observed.energy.total_pj == baseline.energy.total_pj

    def test_fig4_mini_campaign_bit_identical_with_metrics(self):
        spec = campaign_preset("fig4-mini").with_overrides(instructions=500)
        plain = ParallelExecutor(jobs=1).run(spec)
        obs_metrics.enable()
        observed = ParallelExecutor(jobs=1, trace_log=TraceEventLog()).run(spec)
        for before, after in zip(plain.runs, observed.runs):
            assert before.benchmark == after.benchmark
            for name, result in before.results.items():
                assert after.results[name].cycles == result.cycles
                assert after.results[name].stats == result.stats

    @pytest.mark.parametrize(
        "config",
        [SimulationConfig.malec(), SimulationConfig.base_1ldst()],
        ids=["malec", "base1ldst"],
    )
    def test_categories_partition_the_run(self, config):
        collector = RunCollector()
        result = _run(config, collector=collector)
        assert set(collector.cycle_categories) == set(CYCLE_CATEGORIES)
        assert collector.attributed_cycles == result.cycles
        assert collector.total_cycles == result.cycles

    def test_attribution_checks_and_formats(self):
        collector = RunCollector()
        result = _run(SimulationConfig.malec(), collector=collector)
        attribution = attribute_run("gzip", result, collector)
        attribution.check()
        assert attribution.attributed_cycles == result.cycles
        text = format_attribution(attribution)
        assert "cycles go to" in text
        assert "energy goes to" in text
        payload = attribution.as_dict()
        assert payload["total_cycles"] == result.cycles
        assert sum(payload["cycles"].values()) == result.cycles

    def test_attribution_without_collector_is_unattributed(self):
        result = _run(SimulationConfig.malec())
        attribution = attribute_run("gzip", result)
        attribution.check()
        assert attribution.cycles["unattributed"] == result.cycles

    def test_attribution_check_raises_on_mismatch(self):
        collector = RunCollector()
        result = _run(SimulationConfig.malec(), collector=collector)
        attribution = attribute_run("gzip", result, collector)
        attribution.cycles["commit"] += 1
        with pytest.raises(ValueError):
            attribution.check()

    def test_sampling_observes_occupancy(self):
        collector = RunCollector(sample_every=25)
        result = _run(SimulationConfig.malec(), collector=collector)
        assert collector.samples
        cycles = [sample[0] for sample in collector.samples]
        assert cycles == sorted(cycles)
        assert cycles[-1] <= result.cycles


# ----------------------------------------------------------------------
# Trace-event export + schema validation
# ----------------------------------------------------------------------
class TestTraceEvents:
    def test_log_round_trips_and_validates(self, tmp_path):
        log = TraceEventLog()
        log.name_process(1, "worker")
        log.name_thread(1, 2, "cells")
        log.add_span("cell", "campaign.cell", 10.0, 5.0, pid=1, tid=2)
        log.add_instant("rung 1", "dse.rung", 12.0, pid=1)
        log.add_counter("occupancy", "sim", 3.0, {"rob": 4, "lq": 1})
        assert len(log) == 5
        assert validate_trace_events(log.as_dict()) == 5
        target = tmp_path / "nested" / "trace.json"
        log.write(target)
        assert validate_trace_events(target.read_text()) == 5

    def test_metadata_events_are_idempotent(self):
        log = TraceEventLog()
        log.name_process(1, "worker")
        log.name_process(1, "worker")
        assert len(log) == 1

    def test_negative_duration_is_clamped(self):
        log = TraceEventLog()
        log.add_span("x", "c", 10.0, -5.0)
        assert log.events[0]["dur"] == 0.0

    def test_schema_rejects_bad_payloads(self):
        schema = load_schema()
        with pytest.raises(SchemaError):
            validate_trace_events({"no": "traceEvents"}, schema)
        with pytest.raises(SchemaError):
            validate_trace_events(
                {"traceEvents": [{"name": "x", "ph": "Z", "pid": 0, "tid": 0}]},
                schema,
            )
        with pytest.raises(SchemaError):
            validate_trace_events(
                {
                    "traceEvents": [
                        {"name": "x", "ph": "X", "pid": 0, "tid": 0, "ts": -1}
                    ]
                },
                schema,
            )

    def test_executor_emits_schema_valid_spans(self):
        spec = campaign_preset("fig4-mini").with_overrides(instructions=400)
        log = TraceEventLog()
        ParallelExecutor(jobs=1, trace_log=log).run(spec)
        assert validate_trace_events(log.as_dict()) == len(log)
        spans = [e for e in log.events if e["ph"] == "X"]
        assert len(spans) == len(spec.cells())


# ----------------------------------------------------------------------
# Profiling
# ----------------------------------------------------------------------
class TestProfile:
    def test_collapsed_stack_lines_are_well_formed(self):
        from repro.obs.profile import collapsed_stacks

        import cProfile

        def leaf():
            return sum(range(2000))

        def root():
            return leaf()

        profiler = cProfile.Profile()
        profiler.enable()
        root()
        profiler.disable()
        lines = collapsed_stacks(pstats.Stats(profiler))
        assert lines == sorted(lines)
        for line in lines:
            stack, _, weight = line.rpartition(" ")
            assert stack
            assert int(weight) > 0

    def test_run_profile_unknown_scenario_raises(self):
        from repro.obs.profile import run_profile

        with pytest.raises(KeyError):
            run_profile("nope")

    def test_run_profile_writes_collapsed_output(self, tmp_path):
        from repro.obs.profile import run_profile

        target = tmp_path / "stacks.txt"
        report, count = run_profile(
            "trace_generation", instructions=300, top=5, collapsed_out=target
        )
        assert "cumulative" in report
        assert count == len(target.read_text().splitlines())


# ----------------------------------------------------------------------
# Progress reporting
# ----------------------------------------------------------------------
class _Cell:
    def __init__(self, benchmark, config_name):
        self.benchmark = benchmark
        self.config = type("C", (), {"name": config_name})()


class _TtyStream(io.StringIO):
    def isatty(self):
        return True


class TestProgress:
    def test_non_tty_fallback_lines(self):
        stream = io.StringIO()
        reporter = ProgressReporter(stream=stream, fallback_lines=True)
        reporter("completed", _Cell("gzip", "MALEC"), 1, 2)
        reporter.finish()
        assert stream.getvalue() == "[1/2] completed gzip MALEC\n"

    def test_non_tty_silent_without_fallback(self):
        stream = io.StringIO()
        reporter = ProgressReporter(stream=stream, fallback_lines=False)
        reporter("completed", _Cell("gzip", "MALEC"), 1, 2)
        reporter.finish()
        assert stream.getvalue() == ""

    def test_tty_line_rewrites_and_pads(self):
        stream = _TtyStream()
        clock = iter(float(i) for i in range(10))
        reporter = ProgressReporter(
            stream=stream, min_interval=0.0, clock=lambda: next(clock)
        )
        assert reporter.interactive
        reporter("completed", _Cell("gzip", "A_very_long_config"), 1, 2)
        reporter("completed", _Cell("gzip", "B"), 2, 2)
        reporter.finish()
        output = stream.getvalue()
        assert output.count("\r") == 2
        assert output.endswith("\n")
        assert "cells/s" in output
        assert "eta" in output

    def test_make_progress_quiet_returns_none(self):
        assert make_progress(quiet=True) is None
        assert make_progress(quiet=False) is not None


# ----------------------------------------------------------------------
# Logging
# ----------------------------------------------------------------------
class TestLogs:
    def test_configure_attaches_run_context(self):
        stream = io.StringIO()
        obs_logs.configure(stream=stream)
        logger = obs_logs.get_logger("test")
        with obs_logs.run_context("sweep:fig4"):
            logger.info("hello")
        logger.info("outside")
        lines = stream.getvalue().splitlines()
        assert "[sweep:fig4] hello" in lines[0]
        assert "[-] outside" in lines[1]

    def test_json_lines_format(self):
        stream = io.StringIO()
        obs_logs.configure(json_lines=True, stream=stream)
        obs_logs.get_logger("test").warning("badness %d", 7)
        record = json.loads(stream.getvalue())
        assert record["level"] == "WARNING"
        assert record["message"] == "badness 7"
        assert record["logger"] == "repro.test"

    def test_quiet_wins_over_verbose(self):
        stream = io.StringIO()
        obs_logs.configure(verbose=True, quiet=True, stream=stream)
        assert logging.getLogger(obs_logs.ROOT_LOGGER).level == logging.ERROR

    def test_configure_is_idempotent(self):
        stream = io.StringIO()
        obs_logs.configure(stream=stream)
        obs_logs.configure(stream=stream)
        obs_logs.get_logger("test").info("once")
        assert stream.getvalue().count("once") == 1


# ----------------------------------------------------------------------
# Executor / campaign metrics
# ----------------------------------------------------------------------
class TestCampaignObservability:
    def test_metrics_flushed_after_run(self):
        obs_metrics.enable()
        spec = campaign_preset("fig4-mini").with_overrides(instructions=400)
        ParallelExecutor(jobs=1).run(spec)
        snapshot = obs_metrics.registry.snapshot()
        assert snapshot["campaign.cells_completed"] == len(spec.cells())
        assert snapshot["campaign.cells_skipped"] == 0
        assert snapshot["campaign.cells_per_sec"] > 0
        assert snapshot["campaign.cell_seconds"]["count"] == len(spec.cells())

    def test_no_metrics_when_disabled(self):
        spec = campaign_preset("fig4-mini").with_overrides(instructions=400)
        ParallelExecutor(jobs=1).run(spec)
        assert len(obs_metrics.registry) == 0


# ----------------------------------------------------------------------
# Bench host metadata
# ----------------------------------------------------------------------
class TestBenchHostMetadata:
    def test_report_records_host(self):
        report = run_benchmarks(quick=True, scenarios=["trace_generation"])
        host = report["host"]
        assert host["cpu_count"] >= 1
        assert host["python"]
        assert host["platform"]
        assert host["revision"] == report["revision"]

    def test_unknown_scenario_raises(self):
        with pytest.raises(ValueError):
            run_benchmarks(quick=True, scenarios=["nope"])

    def test_compare_host_warnings(self):
        before = {"host": host_metadata("a")}
        after = {"host": dict(host_metadata("b"), cpu_count=12345)}
        warnings = compare_host_warnings(before, after)
        assert any("cpu_count" in warning for warning in warnings)
        # differing revisions alone never warn: comparing them is the point
        assert compare_host_warnings(
            {"host": host_metadata("a")}, {"host": host_metadata("b")}
        ) == []

    def test_legacy_reports_fall_back_to_top_level_fields(self):
        before = {"python": "3.10.0", "platform": "Linux-x"}
        after = {"python": "3.11.7", "platform": "Linux-x"}
        warnings = compare_host_warnings(before, after)
        assert any("python" in warning for warning in warnings)
