"""Tests for the synthetic workload generators and the locality analysis."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.locality import PageLocalityAnalyzer, RUN_LENGTH_BUCKETS
from repro.memory.address import DEFAULT_LAYOUT
from repro.workloads.profiles import BenchmarkProfile, StreamKind, StreamSpec
from repro.workloads.suites import (
    ALL_BENCHMARKS,
    EXTENDED_BENCHMARKS,
    LOCALITY_DIVERSE_BENCHMARKS,
    MEDIABENCH2,
    SPEC_FP,
    SPEC_INT,
    STRESS,
    STRESS_BENCHMARKS,
    SYNTHETIC,
    SYNTHETIC_BENCHMARKS,
    benchmark_profile,
    suite_profiles,
)
from repro.workloads.synthetic import generate_trace
from repro.workloads.trace import MemoryTrace

layout = DEFAULT_LAYOUT
analyzer = PageLocalityAnalyzer()


class TestProfilesRegistry:
    def test_all_38_benchmarks_present(self):
        assert len(ALL_BENCHMARKS) == 38
        assert len(suite_profiles(SPEC_INT)) == 12
        assert len(suite_profiles(SPEC_FP)) == 14
        assert len(suite_profiles(MEDIABENCH2)) == 12

    def test_paper_benchmarks_named(self):
        for name in ("gzip", "mcf", "gap", "equake", "mgrid", "djpeg", "h263dec"):
            assert name in ALL_BENCHMARKS

    def test_synthetic_extras_registered_but_not_counted(self):
        # The SYN profiles extend the registry without touching the paper's
        # 38-benchmark grid (Fig. 4 sweeps must not change shape).
        assert SYNTHETIC_BENCHMARKS == ("ptrchase", "streamwrite")
        assert len(EXTENDED_BENCHMARKS) == 43
        assert not set(SYNTHETIC_BENCHMARKS) & set(ALL_BENCHMARKS)
        assert len(suite_profiles(SYNTHETIC)) == 2
        for name in SYNTHETIC_BENCHMARKS:
            assert benchmark_profile(name).suite == SYNTHETIC
            assert name in LOCALITY_DIVERSE_BENCHMARKS

    def test_stress_profiles_registered_but_out_of_sweeps(self):
        # The STRESS profiles exist for the columnar/object differential net;
        # sweeps and DSE presets must never pick them up implicitly.
        assert STRESS_BENCHMARKS == ("tlbthrash", "depchase", "mlpladder")
        assert len(suite_profiles(STRESS)) == 3
        for name in STRESS_BENCHMARKS:
            assert benchmark_profile(name).suite == STRESS
            assert name not in SYNTHETIC_BENCHMARKS
            assert name not in LOCALITY_DIVERSE_BENCHMARKS
            assert name not in ALL_BENCHMARKS
            assert name in EXTENDED_BENCHMARKS

    def test_tlbthrash_marches_pages(self):
        trace = generate_trace(benchmark_profile("tlbthrash"), instructions=3000)
        refs = trace.memory_references
        # Far more distinct pages than the 64-entry TLB can hold, and nearly
        # every reference lands on a new page (page-sized strides).
        assert trace.footprint_pages() > 256
        assert trace.footprint_pages() > 0.8 * len(refs)
        # No dependent loads: full MLP keeps translation pressure maximal.
        assert all(not i.deps for i in trace if i.is_load)

    def test_depchase_serializes_addresses(self):
        def dependent_load_fraction(name):
            trace = generate_trace(benchmark_profile(name), instructions=3000)
            loads = [i for i in trace if i.is_load]
            return sum(1 for i in loads if i.deps) / len(loads)

        # Nearly every load waits on a producer (chase_dep = 0.85 across
        # four chase streams) — well beyond mcf, the paper's chase extreme.
        assert dependent_load_fraction("depchase") > 0.9
        assert dependent_load_fraction("depchase") > dependent_load_fraction("mcf")

    def test_mlpladder_keeps_independent_misses_in_flight(self):
        trace = generate_trace(benchmark_profile("mlpladder"), instructions=3000)
        loads = [i for i in trace if i.is_load]
        # Stepped ladders of independent sweeps: a multi-rung footprint well
        # past the uTLB with almost no dependent loads, so misses overlap
        # freely instead of serializing behind producers.
        assert trace.footprint_pages() > 64
        assert sum(1 for i in loads if i.deps) / len(loads) < 0.2

    def test_ptrchase_has_low_page_locality(self):
        def locality(name):
            trace = generate_trace(benchmark_profile(name), instructions=3000)
            return analyzer.same_page_follow_fraction(trace.load_addresses(), 0)

        # Lower than the lowest-locality paper pick and far below media.
        assert locality("ptrchase") < locality("mcf")
        assert locality("ptrchase") < locality("djpeg") - 0.2

    def test_streamwrite_is_store_dominated(self):
        trace = generate_trace(benchmark_profile("streamwrite"), instructions=3000)
        stores = sum(1 for i in trace if i.is_store)
        loads = sum(1 for i in trace if i.is_load)
        assert stores > loads  # inverted load/store ratio vs the 2:1 suites
        gzip_trace = generate_trace(benchmark_profile("gzip"), instructions=3000)
        gzip_stores = sum(1 for i in gzip_trace if i.is_store)
        gzip_loads = sum(1 for i in gzip_trace if i.is_load)
        assert stores / (stores + loads) > 2 * gzip_stores / (gzip_stores + gzip_loads)

    def test_unknown_lookup_raises(self):
        with pytest.raises(KeyError):
            benchmark_profile("doom")
        with pytest.raises(ValueError):
            suite_profiles("SPEC-2017")

    def test_suite_memory_fractions_follow_paper(self):
        """Sec. III: INT ~45 %, FP ~40 %, MB2 ~37 % memory references."""
        int_avg = sum(p.memory_fraction for p in suite_profiles(SPEC_INT)) / 12
        fp_avg = sum(p.memory_fraction for p in suite_profiles(SPEC_FP)) / 14
        mb_avg = sum(p.memory_fraction for p in suite_profiles(MEDIABENCH2)) / 12
        assert int_avg > fp_avg > mb_avg
        assert 0.42 <= int_avg <= 0.48
        assert 0.35 <= mb_avg <= 0.39

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            BenchmarkProfile(name="bad", suite=SPEC_INT, streams=())
        with pytest.raises(ValueError):
            BenchmarkProfile(
                name="bad", suite=SPEC_INT, memory_fraction=1.5,
                streams=(StreamSpec(kind=StreamKind.HOT_REGION),),
            )
        with pytest.raises(ValueError):
            StreamSpec(kind=StreamKind.HOT_REGION, weight=0)
        with pytest.raises(ValueError):
            StreamSpec(kind=StreamKind.HOT_REGION, page_stay_probability=2.0)


class TestTraceJsonl:
    @pytest.mark.parametrize("suffix", ["jsonl", "jsonl.gz"])
    def test_round_trip(self, tmp_path, suffix):
        original = generate_trace(benchmark_profile("gzip"), instructions=600)
        path = tmp_path / f"gzip.{suffix}"
        original.to_jsonl(path)
        restored = MemoryTrace.from_jsonl(path)
        assert restored.name == original.name
        assert restored.suite == original.suite
        assert restored.layout == original.layout
        assert len(restored) == len(original)
        for left, right in zip(original, restored):
            assert left.kind is right.kind
            assert left.address == right.address
            assert left.size == right.size
            assert left.deps == right.deps
            assert left.seq == right.seq

    def test_gzip_file_is_actually_compressed(self, tmp_path):
        trace = generate_trace(benchmark_profile("gzip"), instructions=600)
        plain, packed = tmp_path / "t.jsonl", tmp_path / "t.jsonl.gz"
        trace.to_jsonl(plain)
        trace.to_jsonl(packed)
        assert packed.read_bytes()[:2] == b"\x1f\x8b"  # gzip magic
        assert packed.stat().st_size < plain.stat().st_size

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError):
            MemoryTrace.from_jsonl(path)

    def test_simulation_on_reloaded_trace_matches(self, tmp_path):
        from repro.sim.config import SimulationConfig
        from repro.sim.simulator import run_configuration

        trace = generate_trace(benchmark_profile("djpeg"), instructions=600)
        path = tmp_path / "djpeg.jsonl.gz"
        trace.to_jsonl(path)
        reloaded = MemoryTrace.from_jsonl(path)
        config = SimulationConfig.malec()
        direct = run_configuration(config, trace, warmup_fraction=0.25)
        cached = run_configuration(config, reloaded, warmup_fraction=0.25)
        assert direct.cycles == cached.cycles
        assert direct.stats == cached.stats


class TestTraceGeneration:
    def test_deterministic_per_profile(self):
        profile = benchmark_profile("gzip")
        a = generate_trace(profile, instructions=800)
        b = generate_trace(profile, instructions=800)
        assert [i.address for i in a if i.is_memory] == [
            i.address for i in b if i.is_memory
        ]

    def test_different_benchmarks_differ(self):
        a = generate_trace(benchmark_profile("gzip"), instructions=800)
        b = generate_trace(benchmark_profile("mcf"), instructions=800)
        assert [i.address for i in a if i.is_memory] != [
            i.address for i in b if i.is_memory
        ]

    def test_requested_length(self):
        trace = generate_trace(benchmark_profile("crafty"), instructions=500)
        assert len(trace) == 500

    def test_memory_fraction_close_to_profile(self):
        profile = benchmark_profile("gzip")
        trace = generate_trace(profile, instructions=6000)
        assert abs(trace.memory_fraction - profile.memory_fraction) < 0.06

    def test_load_store_ratio_near_two(self):
        """Sec. III: load/store ratio of roughly 2:1."""
        trace = generate_trace(benchmark_profile("gzip"), instructions=6000)
        assert 1.5 <= trace.load_store_ratio <= 3.5

    def test_addresses_within_address_space(self):
        trace = generate_trace(benchmark_profile("swim"), instructions=2000)
        for address in trace.memory_addresses():
            assert 0 <= address <= layout.max_address

    def test_dependencies_point_backwards(self):
        trace = generate_trace(benchmark_profile("mcf"), instructions=2000)
        for instruction in trace:
            for distance in instruction.deps:
                assert distance > 0
                assert instruction.seq - distance >= -1

    def test_mcf_has_pointer_chase_dependencies(self):
        trace = generate_trace(benchmark_profile("mcf"), instructions=4000)
        dependent_loads = sum(1 for i in trace if i.is_load and i.deps)
        assert dependent_loads > 50

    def test_mcf_footprint_much_larger_than_media(self):
        mcf = generate_trace(benchmark_profile("mcf"), instructions=4000)
        djpeg = generate_trace(benchmark_profile("djpeg"), instructions=4000)
        assert mcf.footprint_pages() > 5 * djpeg.footprint_pages()

    def test_trace_container_helpers(self):
        trace = generate_trace(benchmark_profile("eon"), instructions=300)
        head = trace.head(100)
        assert len(head) == 100
        assert head[0].kind == trace[0].kind
        assert "eon" in trace.summary()
        assert trace.footprint_lines() >= trace.footprint_pages()


class TestPaperMotivation:
    """Sec. III / Fig. 1: the statistics motivating page-based grouping."""

    def test_overall_page_locality_near_70_percent(self):
        values = []
        for name in ("gzip", "gap", "crafty", "mesa", "djpeg", "h263dec", "mpeg2dec"):
            trace = generate_trace(benchmark_profile(name), instructions=4000)
            values.append(analyzer.same_page_follow_fraction(trace.load_addresses(), 0))
        average = sum(values) / len(values)
        assert 0.60 <= average <= 0.85

    def test_intermediate_accesses_increase_coverage(self):
        trace = generate_trace(benchmark_profile("gzip"), instructions=4000)
        loads = trace.load_addresses()
        series = [analyzer.same_page_follow_fraction(loads, n) for n in (0, 1, 2, 3)]
        assert series == sorted(series)
        assert series[3] > series[0]

    def test_line_locality_lower_than_page_locality(self):
        trace = generate_trace(benchmark_profile("gzip"), instructions=4000)
        loads = trace.load_addresses()
        line = analyzer.same_line_follow_fraction(loads)
        page = analyzer.same_page_follow_fraction(loads, 0)
        assert line < page
        assert 0.2 <= line <= 0.7

    def test_media_benchmarks_most_page_local(self):
        def locality(name):
            trace = generate_trace(benchmark_profile(name), instructions=4000)
            return analyzer.same_page_follow_fraction(trace.load_addresses(), 0)

        assert locality("h263dec") > locality("mcf")
        assert locality("djpeg") > locality("mcf")


class TestLocalityAnalyzer:
    def test_follow_fraction_simple_sequence(self):
        a = layout.compose(1, 0)
        b = layout.compose(2, 0)
        # a a b a : 2 of 3 transitions stay on the same page.
        assert analyzer.same_page_follow_fraction([a, a, b, a], 0) == pytest.approx(1 / 3)
        assert analyzer.same_page_follow_fraction([a, a, b, a], 1) == pytest.approx(2 / 3)

    def test_same_line_follow(self):
        a = layout.compose_line(1, 0, 0)
        b = layout.compose_line(1, 0, 8)
        c = layout.compose_line(1, 1, 0)
        assert analyzer.same_line_follow_fraction([a, b, c]) == pytest.approx(0.5)

    def test_short_sequences(self):
        assert analyzer.same_page_follow_fraction([], 0) == 0.0
        assert analyzer.same_page_follow_fraction([0x1000], 0) == 0.0
        assert analyzer.same_line_follow_fraction([0x1000]) == 0.0

    def test_run_distribution_sums_to_one(self):
        trace = generate_trace(benchmark_profile("vpr"), instructions=2000)
        distribution = analyzer.run_length_distribution(trace.load_addresses(), 1)
        assert sum(distribution.values()) == pytest.approx(1.0)
        assert set(distribution) == set(RUN_LENGTH_BUCKETS)

    def test_run_distribution_all_same_page(self):
        addresses = [layout.compose(1, i * 8) for i in range(20)]
        distribution = analyzer.run_length_distribution(addresses, 0)
        assert distribution["8<x"] == pytest.approx(1.0)

    def test_run_distribution_alternating_pages(self):
        a = layout.compose(1, 0)
        b = layout.compose(2, 0)
        strict = analyzer.run_length_distribution([a, b] * 10, 0)
        tolerant = analyzer.run_length_distribution([a, b] * 10, 1)
        # With no tolerated intermediates every access is a run of one; with
        # one intermediate the alternating pattern fuses into long runs.
        assert strict["x=1"] == pytest.approx(1.0)
        assert tolerant["8<x"] == pytest.approx(1.0)

    def test_negative_intermediates_rejected(self):
        with pytest.raises(ValueError):
            analyzer.same_page_follow_fraction([0x0, 0x1], -1)
        with pytest.raises(ValueError):
            analyzer.run_length_distribution([0x0], -1)

    def test_full_report(self):
        trace = generate_trace(benchmark_profile("cjpeg"), instructions=1500)
        report = analyzer.analyze(trace.load_addresses(), intermediates=(0, 1, 2, 3))
        assert report.accesses == len(trace.load_addresses())
        assert set(report.follow_fraction) == {0, 1, 2, 3}
        assert "same-line" in report.summary()

    @given(st.lists(st.integers(min_value=0, max_value=layout.max_address), min_size=2, max_size=60))
    @settings(max_examples=50)
    def test_follow_fraction_monotone_in_window(self, addresses):
        """Tolerating more intermediates can only increase the fraction."""
        f0 = analyzer.same_page_follow_fraction(addresses, 0)
        f2 = analyzer.same_page_follow_fraction(addresses, 2)
        f5 = analyzer.same_page_follow_fraction(addresses, 5)
        assert f0 <= f2 <= f5

    @given(st.lists(st.integers(min_value=0, max_value=layout.max_address), min_size=1, max_size=60))
    @settings(max_examples=50)
    def test_run_distribution_is_a_distribution(self, addresses):
        distribution = analyzer.run_length_distribution(addresses, 1)
        assert sum(distribution.values()) == pytest.approx(1.0)
        assert all(0 <= value <= 1 for value in distribution.values())


class TestPrecomputeDecompositions:
    def test_warms_layout_cache_and_counts_memory_refs(self):
        from repro.memory.address import AddressLayout

        layout = AddressLayout()
        trace = generate_trace(benchmark_profile("gzip"), instructions=400)
        count = trace.precompute_decompositions(layout)
        assert count == len(trace.memory_references)
        # Every memory address decomposes straight out of the cache now.
        for instruction in trace.memory_references[:20]:
            parts = layout.decompose(instruction.address)
            assert parts.page_id == layout.page_id(instruction.address)
            assert parts.bank_index == layout.bank_index(instruction.address)

    def test_defaults_to_own_layout(self):
        trace = generate_trace(benchmark_profile("gzip"), instructions=200)
        assert trace.precompute_decompositions() == len(trace.memory_references)
