"""Golden-result regression net for the fig4-mini sweep.

``tests/golden/fig4_mini.json`` was produced by the seed code (PR 1, commit
560284a) via the campaign store; every hot-path rewrite since must leave the
records *bit-identical* — cycles, instruction/load/store counts, every
statistics counter and every per-structure energy value.  The test drives
the real CLI (``repro sweep fig4-mini --out <tmp>``), so it also covers the
executor, store serialisation and cell-key stability end to end.

Regenerating the golden file is a deliberate act (a behaviour change must be
explained in the PR that makes it)::

    PYTHONPATH=src python tests/golden/regenerate.py
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.campaign.executor import ParallelExecutor
from repro.campaign.spec import campaign_preset
from repro.campaign.store import ResultStore
from repro.cli import main

GOLDEN_PATH = Path(__file__).parent / "golden" / "fig4_mini.json"


@pytest.fixture(scope="module")
def golden() -> dict:
    return json.loads(GOLDEN_PATH.read_text())


@pytest.fixture(scope="module")
def fresh_store(tmp_path_factory) -> ResultStore:
    """One fig4-mini sweep through the real CLI, persisted to a tmp store."""
    out = tmp_path_factory.mktemp("fig4_mini_store")
    exit_code = main(["sweep", "fig4-mini", "--out", str(out), "--quiet"])
    assert exit_code == 0
    return ResultStore(out)


class TestGoldenFig4Mini:
    def test_golden_file_matches_preset_shape(self, golden):
        spec = campaign_preset("fig4-mini")
        assert golden["preset"] == "fig4-mini"
        assert golden["instructions"] == spec.instructions
        assert golden["warmup_fraction"] == spec.warmup_fraction
        assert golden["seed"] == spec.seed
        assert len(golden["records"]) == len(spec.cells())

    def test_cell_keys_are_stable(self, golden):
        # Key stability is what makes store resume work across code versions.
        expected = {cell.key() for cell in campaign_preset("fig4-mini").cells()}
        assert set(golden["records"]) == expected

    def test_sweep_records_bit_identical_to_golden(self, golden, fresh_store):
        fresh = {record["key"]: record for record in fresh_store.records()}
        assert set(fresh) == set(golden["records"])
        for key, golden_record in golden["records"].items():
            record = fresh[key]
            label = f"{golden_record['benchmark']}/{golden_record['config_name']}"
            golden_result = golden_record["result"]
            result = record["result"]
            # Compare the big blocks field by field first so a regression
            # reports *what* drifted, then require full equality.
            for field in ("cycles", "instructions", "loads", "stores"):
                assert result[field] == golden_result[field], (label, field)
            assert result["stats"] == golden_result["stats"], label
            assert result["energy"] == golden_result["energy"], label
            assert record == golden_record, label

    def test_serial_executor_matches_golden_without_cli(self, golden, tmp_path):
        # The same records must fall out of the Python API (no CLI layer).
        store = ResultStore(tmp_path / "api_store")
        ParallelExecutor(jobs=1, store=store).run(campaign_preset("fig4-mini"))
        fresh = {record["key"]: record for record in store.records()}
        assert fresh == golden["records"]
