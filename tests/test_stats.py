"""Tests for the shared statistics counters."""

from repro.stats import StatCounters


class TestBasics:
    def test_counters_start_at_zero(self):
        stats = StatCounters()
        assert stats.get("anything") == 0.0
        assert stats["anything"] == 0.0
        assert "anything" not in stats

    def test_add_and_get(self):
        stats = StatCounters()
        stats.add("l1.hit")
        stats.add("l1.hit", 2)
        assert stats.get("l1.hit") == 3
        assert "l1.hit" in stats

    def test_set_overwrites(self):
        stats = StatCounters()
        stats.add("x", 5)
        stats.set("x", 2)
        assert stats["x"] == 2

    def test_len_and_iter(self):
        stats = StatCounters()
        stats.add("a")
        stats.add("b")
        assert len(stats) == 2
        assert sorted(stats) == ["a", "b"]


class TestAggregation:
    def test_ratio(self):
        stats = StatCounters()
        stats.add("hits", 3)
        stats.add("lookups", 4)
        assert stats.ratio("hits", "lookups") == 0.75

    def test_ratio_zero_denominator(self):
        stats = StatCounters()
        stats.add("hits", 3)
        assert stats.ratio("hits", "lookups") == 0.0

    def test_total(self):
        stats = StatCounters()
        stats.add("a", 1)
        stats.add("b", 2)
        assert stats.total("a", "b", "missing") == 3

    def test_with_prefix(self):
        stats = StatCounters()
        stats.add("l1.hit", 1)
        stats.add("l1.miss", 2)
        stats.add("tlb.hit", 3)
        assert stats.with_prefix("l1.") == {"l1.hit": 1, "l1.miss": 2}

    def test_merge(self):
        a = StatCounters()
        b = StatCounters()
        a.add("x", 1)
        b.add("x", 2)
        b.add("y", 5)
        a.merge(b)
        assert a["x"] == 3
        assert a["y"] == 5

    def test_update_from_mapping(self):
        stats = StatCounters()
        stats.update_from({"a": 2, "b": 3})
        stats.update_from({"a": 1})
        assert stats["a"] == 3
        assert stats["b"] == 3

    def test_clear(self):
        stats = StatCounters()
        stats.add("x")
        stats.clear()
        assert len(stats) == 0


class TestPresentation:
    def test_as_dict_snapshot_is_independent(self):
        stats = StatCounters()
        stats.add("x", 1)
        snapshot = stats.as_dict()
        stats.add("x", 1)
        assert snapshot["x"] == 1
        assert stats["x"] == 2

    def test_summary_contains_counters(self):
        stats = StatCounters()
        stats.add("l1.hit", 10)
        stats.add("tlb.miss", 1)
        text = stats.summary()
        assert "l1.hit" in text and "tlb.miss" in text

    def test_summary_prefix_filter(self):
        stats = StatCounters()
        stats.add("l1.hit", 10)
        stats.add("tlb.miss", 1)
        text = stats.summary(prefix="l1.")
        assert "l1.hit" in text and "tlb.miss" not in text
