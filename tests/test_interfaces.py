"""Tests for the three L1 interface models (Table I)."""

import pytest

from repro.interfaces.base_1ldst import BaselineSingleInterface
from repro.interfaces.base_2ld1st import BaselineDualLoadInterface
from repro.interfaces.malec import MalecInterface
from repro.memory.address import DEFAULT_LAYOUT
from repro.memory.hierarchy import MemoryHierarchy
from repro.stats import StatCounters
from repro.tlb.tlb import TLBHierarchy

layout = DEFAULT_LAYOUT


def addr(page: int, line: int, offset: int = 0) -> int:
    return layout.compose_line(page, line, offset)


def build(interface_cls, **kwargs):
    stats = StatCounters()
    hierarchy = MemoryHierarchy(stats=stats)
    translation = TLBHierarchy(stats=stats)
    interface = interface_cls(hierarchy, translation, stats=stats, **kwargs)
    return stats, interface


def run_cycles(interface, cycles, start=0):
    """Advance an interface through idle cycles, collecting completions."""
    completions = []
    for cycle in range(start, start + cycles):
        interface.begin_cycle(cycle)
        completions.extend(interface.tick(cycle))
    return completions


class TestSlotAccounting:
    def test_base1ldst_single_shared_slot(self):
        _, interface = build(BaselineSingleInterface)
        interface.begin_cycle(0)
        assert interface.reserve_load_slot()
        assert not interface.reserve_load_slot()
        assert not interface.reserve_store_slot()
        interface.begin_cycle(1)
        assert interface.reserve_store_slot()

    def test_base2ld1st_two_loads_one_store(self):
        _, interface = build(BaselineDualLoadInterface)
        interface.begin_cycle(0)
        assert interface.reserve_load_slot()
        assert interface.reserve_load_slot()
        assert not interface.reserve_load_slot()
        assert interface.reserve_store_slot()
        assert not interface.reserve_store_slot()

    def test_malec_one_load_plus_two_flexible(self):
        _, interface = build(MalecInterface)
        interface.begin_cycle(0)
        assert interface.reserve_load_slot()
        assert interface.reserve_load_slot()
        assert interface.reserve_store_slot()
        assert not interface.reserve_store_slot()
        assert not interface.reserve_load_slot()


class TestBaselineSingle:
    def test_load_completes_after_hit_latency(self):
        stats, interface = build(BaselineSingleInterface)
        interface.begin_cycle(0)
        interface.submit_load("ld0", addr(1, 0), 4, 0)
        (tag, ready), = interface.tick(0)
        assert tag == "ld0"
        assert ready > 0
        # A second access to the same line is an L1 hit with 2-cycle latency.
        interface.begin_cycle(1)
        interface.submit_load("ld1", addr(1, 0), 4, 1)
        (_, ready_hit), = interface.tick(1)
        assert ready_hit == 1 + 2

    def test_one_access_per_cycle(self):
        stats, interface = build(BaselineSingleInterface)
        interface.begin_cycle(0)
        interface.submit_load("a", addr(1, 0), 4, 0)
        interface.submit_load("b", addr(1, 1), 4, 0)
        assert len(interface.tick(0)) == 1
        interface.begin_cycle(1)
        assert len(interface.tick(1)) == 1

    def test_every_load_translates_individually(self):
        stats, interface = build(BaselineSingleInterface)
        for cycle in range(3):
            interface.begin_cycle(cycle)
            interface.submit_load(f"ld{cycle}", addr(1, cycle), 4, cycle)
            interface.tick(cycle)
        assert stats["utlb.lookup"] == 3

    def test_store_commit_reaches_cache_via_merge_buffer(self):
        stats, interface = build(BaselineSingleInterface, mb_entries=1)
        # Two committed stores to different lines force an MBE eviction.
        for index in range(2):
            cycle = index
            interface.begin_cycle(cycle)
            interface.submit_store(f"st{index}", addr(2, index), 4, cycle)
            interface.commit_store(f"st{index}", cycle)
            interface.tick(cycle)
        run_cycles(interface, 4, start=2)
        assert stats["interface.mbe_written"] >= 1

    def test_finalize_drains_all_stores(self):
        stats, interface = build(BaselineSingleInterface)
        interface.begin_cycle(0)
        interface.submit_store("st", addr(3, 0), 4, 0)
        interface.commit_store("st", 0)
        interface.finalize(10)
        assert stats["interface.mbe_written"] == 1
        assert not interface.pending_work


class TestBaselineDual:
    def test_two_loads_serviced_in_one_cycle(self):
        stats, interface = build(BaselineDualLoadInterface)
        interface.begin_cycle(0)
        interface.submit_load("a", addr(1, 0), 4, 0)
        interface.submit_load("b", addr(1, 1), 4, 0)
        assert len(interface.tick(0)) == 2

    def test_bank_port_limit_defers_third_same_bank_load(self):
        stats, interface = build(BaselineDualLoadInterface, loads_per_cycle=3)
        interface.begin_cycle(0)
        for i, tag in enumerate(("a", "b", "c")):
            interface.submit_load(tag, addr(1, 4 * i), 4, 0)  # all map to bank 0
        first = interface.tick(0)
        assert len(first) == 2
        assert stats["interface.bank_conflict"] >= 1
        interface.begin_cycle(1)
        assert len(interface.tick(1)) == 1

    def test_translations_counted_per_access(self):
        stats, interface = build(BaselineDualLoadInterface)
        interface.begin_cycle(0)
        interface.submit_load("a", addr(1, 0), 4, 0)
        interface.submit_load("b", addr(1, 1), 4, 0)
        interface.submit_store("s", addr(1, 2), 4, 0)
        interface.tick(0)
        assert stats["utlb.lookup"] == 3


class TestMalecInterface:
    def test_group_shares_single_translation(self):
        stats, interface = build(MalecInterface)
        interface.begin_cycle(0)
        for i, tag in enumerate(("a", "b", "c")):
            interface.submit_load(tag, addr(1, i), 4, 0)
        completions = interface.tick(0)
        assert len(completions) == 3
        assert stats["utlb.lookup"] == 1          # one page translation
        assert stats["uwt.read"] + stats["wt.read"] >= 1

    def test_different_page_load_waits_for_next_cycle(self):
        stats, interface = build(MalecInterface)
        interface.begin_cycle(0)
        interface.submit_load("same", addr(1, 0), 4, 0)
        interface.submit_load("other", addr(2, 0), 4, 0)
        first = interface.tick(0)
        assert [tag for tag, _ in first] == ["same"]
        interface.begin_cycle(1)
        second = interface.tick(1)
        assert [tag for tag, _ in second] == ["other"]

    def test_same_line_loads_merge_into_one_access(self):
        stats, interface = build(MalecInterface)
        interface.begin_cycle(0)
        interface.submit_load("a", addr(1, 0, 0), 4, 0)
        interface.submit_load("b", addr(1, 0, 8), 4, 0)
        completions = interface.tick(0)
        assert len(completions) == 2
        assert stats["interface.load_accesses"] == 1
        assert stats["interface.loads_merged"] == 1

    def test_second_visit_uses_reduced_access(self):
        stats, interface = build(MalecInterface)
        interface.begin_cycle(0)
        interface.submit_load("first", addr(1, 0), 4, 0)
        interface.tick(0)
        stats.clear()
        interface.begin_cycle(1)
        interface.submit_load("again", addr(1, 0), 4, 1)
        interface.tick(1)
        assert stats["l1.reduced_access"] == 1
        assert stats["l1.tag_read"] == 0
        assert stats["malec.way_known"] == 1

    def test_way_coverage_property(self):
        stats, interface = build(MalecInterface)
        for cycle in range(4):
            interface.begin_cycle(cycle)
            interface.submit_load(f"ld{cycle}", addr(1, cycle % 2), 4, cycle)
            interface.tick(cycle)
        assert 0.0 <= interface.way_coverage <= 1.0
        assert interface.way_coverage > 0

    def test_wdu_mode_predicts_after_training(self):
        stats, interface = build(MalecInterface, way_determination="wdu", wdu_entries=8)
        interface.begin_cycle(0)
        interface.submit_load("first", addr(1, 0), 4, 0)
        interface.tick(0)
        interface.begin_cycle(1)
        interface.submit_load("again", addr(1, 0), 4, 1)
        interface.tick(1)
        assert stats["wdu.lookup"] >= 2
        assert stats["malec.way_known"] >= 1

    def test_no_way_determination_mode(self):
        stats, interface = build(MalecInterface, way_determination="none")
        interface.begin_cycle(0)
        interface.submit_load("a", addr(1, 0), 4, 0)
        interface.tick(0)
        assert stats["l1.reduced_access"] == 0
        assert interface.way_coverage == 0.0

    def test_invalid_way_determination_rejected(self):
        with pytest.raises(ValueError):
            build(MalecInterface, way_determination="oracle")

    def test_mbe_travels_through_input_buffer(self):
        stats, interface = build(MalecInterface, mb_entries=1)
        cycle = 0
        for index in range(2):
            interface.begin_cycle(cycle)
            interface.submit_store(f"st{index}", addr(7, index), 4, cycle)
            interface.commit_store(f"st{index}", cycle)
            interface.tick(cycle)
            cycle += 1
        run_cycles(interface, 6, start=cycle)
        assert stats["input_buffer.mbe_in"] >= 1
        assert stats["interface.mbe_written"] >= 1

    def test_split_buffer_lookups_counted(self):
        stats, interface = build(MalecInterface)
        interface.begin_cycle(0)
        interface.submit_load("a", addr(1, 0), 4, 0)
        interface.tick(0)
        assert stats["sb.lookup_offset"] == 1
        assert stats["sb.lookup_page_shared"] == 1
        assert stats["mb.lookup_offset"] == 1

    def test_finalize_flushes_mbe_backlog(self):
        stats, interface = build(MalecInterface, mb_entries=1)
        for index in range(3):
            interface.begin_cycle(index)
            interface.submit_store(f"st{index}", addr(8, index), 4, index)
            interface.commit_store(f"st{index}", index)
            interface.tick(index)
        interface.finalize(100)
        assert not interface.pending_work
        assert stats["interface.mbe_written"] == 3

    def test_back_pressure_from_input_buffer(self):
        stats, interface = build(MalecInterface)
        interface.begin_cycle(0)
        # Fill this cycle's arrival slots without letting the buffer drain.
        for index in range(4):
            assert interface.can_accept_load()
            interface.submit_load(f"ld{index}", addr(index, 0), 4, 0)
        assert not interface.can_accept_load()
