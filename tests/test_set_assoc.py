"""Tests for the generic set-associative array."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.set_assoc import SetAssociativeArray


class TestLookupAndFill:
    def test_miss_then_hit(self):
        array = SetAssociativeArray(num_sets=4, ways=2)
        assert not array.lookup(0, tag=7).hit
        way, eviction = array.fill(0, tag=7)
        assert eviction is None
        result = array.lookup(0, tag=7)
        assert result.hit and result.way == way

    def test_fill_existing_refreshes_payload(self):
        array = SetAssociativeArray(num_sets=1, ways=2)
        way1, _ = array.fill(0, tag=1, payload="a")
        way2, eviction = array.fill(0, tag=1, payload="b")
        assert way1 == way2 and eviction is None
        assert array.lookup(0, tag=1).line.payload == "b"

    def test_eviction_when_set_full(self):
        array = SetAssociativeArray(num_sets=1, ways=2)
        array.fill(0, tag=1)
        array.fill(0, tag=2)
        _, eviction = array.fill(0, tag=3)
        assert eviction is not None
        assert eviction.tag in (1, 2)
        assert array.occupancy() == 2

    def test_lru_eviction_order(self):
        array = SetAssociativeArray(num_sets=1, ways=2, replacement="lru")
        array.fill(0, tag=1)
        array.fill(0, tag=2)
        array.lookup(0, tag=1)  # make tag 1 most recently used
        _, eviction = array.fill(0, tag=3)
        assert eviction.tag == 2

    def test_excluded_way_respected(self):
        array = SetAssociativeArray(num_sets=1, ways=4)
        for tag in range(4):
            array.fill(0, tag=tag)
        way, _ = array.fill(0, tag=99, excluded_way=2)
        assert way != 2

    def test_preferred_way(self):
        array = SetAssociativeArray(num_sets=1, ways=4)
        way, _ = array.fill(0, tag=5, preferred_way=3)
        assert way == 3

    def test_preferred_conflicts_with_excluded(self):
        array = SetAssociativeArray(num_sets=1, ways=4)
        with pytest.raises(ValueError):
            array.fill(0, tag=5, preferred_way=2, excluded_way=2)

    def test_probe_does_not_touch_replacement(self):
        array = SetAssociativeArray(num_sets=1, ways=2, replacement="lru")
        array.fill(0, tag=1)
        array.fill(0, tag=2)
        array.probe(0, tag=1)  # non-updating probe
        _, eviction = array.fill(0, tag=3)
        assert eviction.tag == 1  # tag 1 stayed LRU despite the probe


class TestDirtyAndInvalidate:
    def test_mark_dirty(self):
        array = SetAssociativeArray(num_sets=1, ways=2)
        way, _ = array.fill(0, tag=1)
        array.mark_dirty(0, way)
        assert array.line(0, way).dirty

    def test_mark_dirty_invalid_line_rejected(self):
        array = SetAssociativeArray(num_sets=1, ways=2)
        with pytest.raises(ValueError):
            array.mark_dirty(0, 0)

    def test_invalidate(self):
        array = SetAssociativeArray(num_sets=2, ways=2)
        array.fill(1, tag=9)
        assert array.invalidate(1, tag=9)
        assert not array.lookup(1, tag=9).hit
        assert not array.invalidate(1, tag=9)

    def test_invalidate_all(self):
        array = SetAssociativeArray(num_sets=2, ways=2)
        array.fill(0, tag=1)
        array.fill(1, tag=2)
        array.invalidate_all()
        assert array.occupancy() == 0


class TestCallbacks:
    def test_eviction_callback_fired(self):
        events = []
        array = SetAssociativeArray(num_sets=1, ways=1, on_evict=events.append)
        array.fill(0, tag=1, dirty=True)
        array.fill(0, tag=2)
        assert len(events) == 1
        assert events[0].tag == 1 and events[0].dirty

    def test_invalidate_fires_callback(self):
        events = []
        array = SetAssociativeArray(num_sets=1, ways=2, on_evict=events.append)
        array.fill(0, tag=1)
        array.invalidate(0, tag=1)
        assert len(events) == 1


class TestValidation:
    def test_bad_set_index(self):
        array = SetAssociativeArray(num_sets=2, ways=2)
        with pytest.raises(ValueError):
            array.lookup(2, tag=0)

    def test_bad_way_index(self):
        array = SetAssociativeArray(num_sets=2, ways=2)
        with pytest.raises(ValueError):
            array.line(0, 2)

    def test_bad_geometry(self):
        with pytest.raises(ValueError):
            SetAssociativeArray(num_sets=0, ways=2)
        with pytest.raises(ValueError):
            SetAssociativeArray(num_sets=2, ways=0)


class TestProperties:
    @given(st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=100))
    @settings(max_examples=50)
    def test_occupancy_never_exceeds_capacity(self, tags):
        array = SetAssociativeArray(num_sets=2, ways=4)
        for tag in tags:
            array.fill(tag % 2, tag)
        assert array.occupancy() <= 8

    @given(st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=100))
    @settings(max_examples=50)
    def test_filled_tag_always_found_until_evicted(self, tags):
        """After a fill the tag is resident; valid tags per set stay unique."""
        array = SetAssociativeArray(num_sets=2, ways=4)
        for tag in tags:
            set_index = tag % 2
            array.fill(set_index, tag)
            assert array.lookup(set_index, tag).hit
            valid = array.valid_tags(set_index)
            assert len(valid) == len(set(valid))
