"""Tests for the load queue, store buffer and merge buffer."""

import pytest

from repro.buffers.load_queue import LoadQueue
from repro.buffers.merge_buffer import MergeBuffer
from repro.buffers.store_buffer import StoreBuffer
from repro.memory.address import DEFAULT_LAYOUT
from repro.stats import StatCounters

layout = DEFAULT_LAYOUT


class TestLoadQueue:
    def test_allocate_and_release(self):
        lq = LoadQueue(entries=2)
        lq.allocate("a", 0x1000, cycle=0)
        assert lq.occupancy == 1 and not lq.full
        lq.allocate("b", 0x2000, cycle=0)
        assert lq.full
        lq.release("a")
        assert lq.occupancy == 1

    def test_overflow_raises(self):
        lq = LoadQueue(entries=1)
        lq.allocate("a", 0, 0)
        with pytest.raises(RuntimeError):
            lq.allocate("b", 0, 0)

    def test_duplicate_tag_rejected(self):
        lq = LoadQueue(entries=4)
        lq.allocate("a", 0, 0)
        with pytest.raises(ValueError):
            lq.allocate("a", 0, 0)

    def test_latency_tracking(self):
        lq = LoadQueue()
        lq.allocate("a", 0, 0)
        lq.mark_issued("a", 2)
        lq.mark_complete("a", 7)
        assert lq.get("a").latency == 5
        assert lq.average_latency == 5

    def test_outstanding(self):
        lq = LoadQueue()
        lq.allocate("a", 0, 0)
        lq.allocate("b", 0, 0)
        lq.mark_issued("a", 0)
        lq.mark_complete("a", 3)
        assert [e.tag for e in lq.outstanding()] == ["b"]

    def test_zero_entries_rejected(self):
        with pytest.raises(ValueError):
            LoadQueue(entries=0)


class TestStoreBuffer:
    def test_insert_and_commit_drain(self):
        sb = StoreBuffer(entries=4)
        sb.insert("s1", 0x100, 4, cycle=0)
        sb.insert("s2", 0x200, 4, cycle=1)
        assert sb.occupancy == 2
        assert sb.pop_committed() is None
        sb.mark_committed("s1")
        drained = sb.pop_committed()
        assert drained.tag == "s1"
        assert sb.occupancy == 1

    def test_overflow(self):
        sb = StoreBuffer(entries=1)
        sb.insert("s1", 0, 4, 0)
        assert sb.full
        with pytest.raises(RuntimeError):
            sb.insert("s2", 0, 4, 0)

    def test_forwarding_hits_youngest_overlapping(self):
        sb = StoreBuffer()
        sb.insert("old", 0x100, 4, 0)
        sb.insert("new", 0x100, 4, 1)
        result = sb.lookup(0x100, 4)
        assert result.hit and result.entry.tag == "new"

    def test_forwarding_respects_overlap(self):
        sb = StoreBuffer()
        sb.insert("s", 0x100, 4, 0)
        assert not sb.lookup(0x104, 4).hit
        assert sb.lookup(0x102, 2).hit

    def test_split_vs_full_lookup_events(self):
        stats = StatCounters()
        sb = StoreBuffer(stats=stats)
        sb.lookup(0x100, split=False)
        sb.lookup(0x100, split=True)
        sb.charge_shared_page_lookup()
        assert stats["sb.lookup_full"] == 1
        assert stats["sb.lookup_offset"] == 1
        assert stats["sb.lookup_page_shared"] == 1

    def test_flush_speculative_keeps_committed(self):
        sb = StoreBuffer()
        sb.insert("a", 0, 4, 0)
        sb.insert("b", 4, 4, 0)
        sb.mark_committed("a")
        assert sb.flush_speculative() == 1
        assert sb.occupancy == 1
        assert sb.pop_committed().tag == "a"

    def test_mark_committed_unknown_tag(self):
        sb = StoreBuffer()
        assert sb.mark_committed("missing") is None


class TestMergeBuffer:
    def test_same_line_stores_merge(self):
        mb = MergeBuffer(entries=2)
        assert mb.commit_store(0x100, 4) is None
        assert mb.commit_store(0x104, 4) is None  # same 64-byte line
        assert mb.occupancy == 1
        assert mb.merge_rate == 0.5

    def test_eviction_when_full(self):
        mb = MergeBuffer(entries=2)
        mb.commit_store(layout.compose_line(1, 0), 4)
        mb.commit_store(layout.compose_line(1, 1), 4)
        evicted = mb.commit_store(layout.compose_line(1, 2), 4)
        assert evicted is not None
        assert evicted.line_address == layout.compose_line(1, 0)
        assert mb.occupancy == 2

    def test_lookup_finds_buffered_line(self):
        stats = StatCounters()
        mb = MergeBuffer(stats=stats)
        mb.commit_store(0x140, 4)
        assert mb.lookup(0x150) is not None   # same line
        assert mb.lookup(0x100) is None
        assert stats["mb.forward_hit"] == 1

    def test_split_lookup_events(self):
        stats = StatCounters()
        mb = MergeBuffer(stats=stats)
        mb.lookup(0x100, split=True)
        mb.charge_shared_page_lookup()
        assert stats["mb.lookup_offset"] == 1
        assert stats["mb.lookup_page_shared"] == 1

    def test_drain_returns_everything(self):
        mb = MergeBuffer(entries=4)
        mb.commit_store(layout.compose_line(2, 0), 4)
        mb.commit_store(layout.compose_line(2, 1), 4)
        drained = mb.drain()
        assert len(drained) == 2
        assert mb.occupancy == 0

    def test_pop_oldest(self):
        mb = MergeBuffer()
        assert mb.pop_oldest() is None
        mb.commit_store(layout.compose_line(3, 0), 4)
        assert mb.pop_oldest().line_address == layout.compose_line(3, 0)

    def test_store_count_accumulates(self):
        mb = MergeBuffer()
        mb.commit_store(0x200, 4)
        mb.commit_store(0x208, 8)
        entry = mb.lookup(0x200)
        assert entry.store_count == 2
        assert entry.dirty_bytes == 12
