"""Tests for the design-space exploration subsystem (``repro.dse``).

Covers the declarative search space, Pareto dominance on hand-built points,
the successive-halving promotion logic, objective computation, and the
engine's determinism contract: identical frontiers for any job count and
across a kill/resume of the result store.
"""

from __future__ import annotations

import pytest

from repro.campaign.store import ResultStore
from repro.dse.engine import Evaluator, extract_frontier, run_dse
from repro.dse.objectives import (
    OBJECTIVES,
    resolve_objectives,
)
from repro.dse.pareto import (
    ParetoPoint,
    dominance_ranks,
    dominates,
    pareto_frontier,
    rank_by_label,
)
from repro.dse.space import (
    SPACE_PRESET_NAMES,
    Dimension,
    SearchSpace,
    choice,
    int_range,
    space_preset,
)
from repro.dse.strategies import (
    EvaluatedCandidate,
    RandomSearch,
    SuccessiveHalving,
    strategy_by_name,
)
from repro.energy.accounting import EnergyReport, StructureEnergy
from repro.sim.config import InterfaceKind
from repro.sim.simulator import SimulationResult

# Tiny space used by every integration test: 2x2 grid over two
# locality-extreme benchmarks at a short trace length.
TINY_DIMENSIONS = (
    choice("buses", "malec_options.result_buses", (2, 4)),
    choice("l1lat", "cache.l1_hit_latency", (1, 2)),
)


def tiny_space(**overrides) -> SearchSpace:
    defaults = dict(
        name="tiny",
        dimensions=TINY_DIMENSIONS,
        benchmarks=("gzip", "streamwrite"),
        instructions=400,
        warmup_fraction=0.25,
    )
    defaults.update(overrides)
    return SearchSpace(**defaults)


def frontier_fingerprint(result):
    """Exact (name, objective vector) pairs of a frontier, in order."""
    return [(candidate.name, candidate.values) for candidate in result.frontier]


# ----------------------------------------------------------------------
# Search space
# ----------------------------------------------------------------------
class TestSearchSpace:
    def test_size_is_the_grid_product(self):
        assert tiny_space().size == 4
        assert space_preset("malec-mini").size == 4 * 3 * 3 * 2

    def test_enumeration_is_row_major_and_deterministic(self):
        space = tiny_space()
        assignments = [space.assignment_at(i) for i in range(space.size)]
        assert assignments == [
            (("buses", 2), ("l1lat", 1)),
            (("buses", 2), ("l1lat", 2)),
            (("buses", 4), ("l1lat", 1)),
            (("buses", 4), ("l1lat", 2)),
        ]
        assert len({space.candidate(i).name for i in range(space.size)}) == space.size

    def test_out_of_range_index_rejected(self):
        with pytest.raises(IndexError):
            tiny_space().assignment_at(4)
        with pytest.raises(IndexError):
            tiny_space().assignment_at(-1)

    def test_candidate_applies_nested_overrides(self):
        space = tiny_space()
        candidate = space.candidate(2)  # buses=4, l1lat=1
        assert candidate.config.malec_options.result_buses == 4
        assert candidate.config.cache.l1_hit_latency == 1
        # Untouched knobs keep the base configuration's values.
        assert candidate.config.malec_options.merge_window == 3
        assert candidate.config.interface is InterfaceKind.MALEC
        assert candidate.name == "MALEC[buses=4,l1lat=1]"
        assert candidate.assignment_dict() == {"buses": 4, "l1lat": 1}

    def test_interface_dimension_coerces_enum_values(self):
        space = tiny_space(
            dimensions=(choice("iface", "interface", ("Base1ldst", "MALEC")),)
        )
        assert space.candidate(0).config.interface is InterfaceKind.BASE_1LDST
        assert space.candidate(1).config.interface is InterfaceKind.MALEC

    def test_unknown_path_rejected_at_compile_time(self):
        space = tiny_space(dimensions=(choice("x", "no_such_knob", (1, 2)),))
        with pytest.raises(AttributeError):
            space.candidate(0)

    def test_cells_cover_every_benchmark_with_distinct_keys(self):
        space = tiny_space()
        cells = space.cells_for(space.candidate(1))
        assert [cell.benchmark for cell in cells] == list(space.benchmarks)
        assert all(cell.instructions == space.instructions for cell in cells)
        short = space.cells_for(space.candidate(1), instructions=100)
        # Different trace lengths are different content-hash keys.
        assert {c.key() for c in cells}.isdisjoint({c.key() for c in short})

    def test_validation(self):
        with pytest.raises(ValueError):
            tiny_space(dimensions=())
        with pytest.raises(ValueError):
            tiny_space(dimensions=TINY_DIMENSIONS + (choice("buses", "seed", (1,)),))
        with pytest.raises(ValueError):
            tiny_space(benchmarks=())
        with pytest.raises(KeyError):
            tiny_space(benchmarks=("gzip", "doom"))
        with pytest.raises(ValueError):
            tiny_space(instructions=0)
        with pytest.raises(ValueError):
            Dimension(name="empty", path="seed", values=())
        with pytest.raises(ValueError):
            Dimension(name="dup", path="seed", values=(1, 1))
        with pytest.raises(ValueError):
            int_range("bad", "seed", 1, 4, step=0)

    def test_int_range_covers_inclusive_stop(self):
        assert int_range("r", "seed", 1, 7, 2).values == (1, 3, 5, 7)

    def test_with_overrides(self):
        space = tiny_space().with_overrides(benchmarks=("djpeg",), instructions=999)
        assert space.benchmarks == ("djpeg",)
        assert space.instructions == 999
        assert tiny_space().with_overrides() == tiny_space()

    def test_presets_build_and_unknown_name_lists_choices(self):
        for name in SPACE_PRESET_NAMES:
            space = space_preset(name)
            assert space.size > 0
            assert space.candidate(space.size - 1).config is not None
        with pytest.raises(KeyError) as excinfo:
            space_preset("nope")
        for name in SPACE_PRESET_NAMES:
            assert name in str(excinfo.value)

    def test_mini_preset_includes_synthetic_extremes(self):
        space = space_preset("malec-mini")
        assert "ptrchase" in space.benchmarks
        assert "streamwrite" in space.benchmarks

    def test_describe_is_json_able(self):
        import json

        manifest = space_preset("malec-sensitivity").describe()
        assert json.loads(json.dumps(manifest))["size"] == manifest["size"]


# ----------------------------------------------------------------------
# Pareto dominance on hand-built points
# ----------------------------------------------------------------------
def P(label, *values):
    return ParetoPoint(label=label, values=tuple(values))


class TestPareto:
    def test_dominates_basics(self):
        assert dominates((1.0, 1.0), (2.0, 2.0))
        assert dominates((1.0, 2.0), (2.0, 2.0))
        assert not dominates((2.0, 2.0), (1.0, 2.0))
        # Incomparable points (trade-off) dominate neither way.
        assert not dominates((1.0, 3.0), (3.0, 1.0))
        assert not dominates((3.0, 1.0), (1.0, 3.0))
        # Equal vectors never dominate each other.
        assert not dominates((1.0, 1.0), (1.0, 1.0))

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            dominates((1.0,), (1.0, 2.0))

    def test_frontier_of_hand_built_points(self):
        fast_hungry = P("fast-hungry", 0.8, 1.3)
        slow_frugal = P("slow-frugal", 1.1, 0.7)
        balanced = P("balanced", 0.9, 0.9)
        dominated = P("dominated", 1.2, 1.4)  # beaten by everything
        frontier = pareto_frontier([dominated, fast_hungry, slow_frugal, balanced])
        assert [point.label for point in frontier] == [
            "fast-hungry",
            "balanced",
            "slow-frugal",
        ]

    def test_frontier_order_is_input_order_independent(self):
        points = [P("a", 1.0, 3.0), P("b", 2.0, 2.0), P("c", 3.0, 1.0)]
        assert pareto_frontier(points) == pareto_frontier(points[::-1])

    def test_duplicate_trade_off_points_all_survive(self):
        twin_a, twin_b = P("twin-a", 1.0, 1.0), P("twin-b", 1.0, 1.0)
        frontier = pareto_frontier([twin_a, twin_b, P("worse", 2.0, 2.0)])
        assert [point.label for point in frontier] == ["twin-a", "twin-b"]

    def test_single_objective_frontier_is_the_minimum(self):
        frontier = pareto_frontier([P("a", 3.0), P("b", 1.0), P("c", 2.0)])
        assert [point.label for point in frontier] == ["b"]

    def test_dominance_ranks_peel_fronts(self):
        points = [
            P("front0-a", 1.0, 4.0),
            P("front0-b", 4.0, 1.0),
            P("front1", 2.0, 4.5),  # only dominated by front0-a
            P("front2", 3.0, 5.0),  # dominated by front1 too
        ]
        assert dominance_ranks(points) == [0, 0, 1, 2]
        assert rank_by_label(points) == {
            "front0-a": 0,
            "front0-b": 0,
            "front1": 1,
            "front2": 2,
        }

    def test_empty_values_rejected(self):
        with pytest.raises(ValueError):
            ParetoPoint(label="void", values=())


# ----------------------------------------------------------------------
# Objectives
# ----------------------------------------------------------------------
def fake_result(name: str, cycles: int, energy_pj: float) -> SimulationResult:
    report = EnergyReport(
        cycles=cycles,
        structures={"l1.data": StructureEnergy(dynamic_pj=energy_pj, leakage_pj=0.0)},
    )
    return SimulationResult(
        config_name=name,
        cycles=cycles,
        instructions=cycles,
        loads=0,
        stores=0,
        energy=report,
        stats={},
    )


class TestObjectives:
    def test_resolve_preserves_order_and_rejects_unknown(self):
        keys = [obj.key for obj in resolve_objectives(("energy", "runtime"))]
        assert keys == ["energy", "runtime"]
        with pytest.raises(ValueError) as excinfo:
            resolve_objectives(("runtime", "bogus"))
        assert "bogus" in str(excinfo.value)
        with pytest.raises(ValueError):
            resolve_objectives(())
        with pytest.raises(ValueError):
            resolve_objectives(("runtime", "runtime"))

    def test_objective_values_against_hand_math(self):
        baseline = {
            "a": fake_result("base", cycles=1000, energy_pj=200.0),
            "b": fake_result("base", cycles=2000, energy_pj=100.0),
        }
        candidate = {
            "a": fake_result("cand", cycles=500, energy_pj=100.0),  # 0.5x / 0.5x
            "b": fake_result("cand", cycles=4000, energy_pj=200.0),  # 2.0x / 2.0x
        }
        # geomean(0.5, 2.0) == 1.0 for both axes; EDP = geomean(0.25, 4.0) == 1.0
        assert OBJECTIVES["runtime"].evaluate(candidate, baseline) == pytest.approx(1.0)
        assert OBJECTIVES["energy"].evaluate(candidate, baseline) == pytest.approx(1.0)
        assert OBJECTIVES["edp"].evaluate(candidate, baseline) == pytest.approx(1.0)

    def test_benchmark_mismatch_rejected(self):
        baseline = {"a": fake_result("base", 100, 10.0)}
        candidate = {"b": fake_result("cand", 100, 10.0)}
        with pytest.raises(ValueError):
            OBJECTIVES["runtime"].evaluate(candidate, baseline)


# ----------------------------------------------------------------------
# Strategies: schedules and promotion logic
# ----------------------------------------------------------------------
def fake_eval(index: int, score_values=(1.0, 1.0), instructions=400):
    return EvaluatedCandidate(
        index=index,
        name=f"cand{index}",
        assignment=(("dim", index),),
        instructions=instructions,
        objective_keys=("runtime", "energy"),
        values=tuple(score_values),
    )


class TestSuccessiveHalving:
    def test_rung_schedule_doubles_to_full_length(self):
        halving = SuccessiveHalving(eta=2, min_instructions=250)
        assert halving.rung_instructions(2000, 16) == [250, 500, 1000, 2000]
        assert halving.rung_instructions(600, 6) == [250, 300, 600]
        # A space shorter than the floor degenerates to one full-length rung.
        assert halving.rung_instructions(200, 8) == [200]
        assert halving.rung_instructions(4000, 1) == [4000]

    def test_eta_three_schedule(self):
        halving = SuccessiveHalving(eta=3, min_instructions=100)
        assert halving.rung_instructions(2700, 9) == [300, 900, 2700]

    def test_promote_keeps_best_scores_with_index_tie_break(self):
        rung = [
            fake_eval(0, (1.2, 1.0)),  # rank 1 (dominated by 1)
            fake_eval(1, (0.9, 1.0)),  # rank 0, score 0.9
            fake_eval(2, (1.0, 0.9)),  # rank 0, score 0.9 (index breaks tie)
            fake_eval(3, (2.0, 2.0)),  # rank 2 (dominated by everything)
        ]
        assert SuccessiveHalving.promote(rung, 2) == [1, 2]
        assert SuccessiveHalving.promote(rung, 3) == [0, 1, 2]
        with pytest.raises(ValueError):
            SuccessiveHalving.promote(rung, 0)

    def test_promote_prefers_non_dominated_extremes_over_scalar_score(self):
        # An extreme trade-off point (great runtime, poor energy) has a bad
        # scalar product but is non-dominated: it must outrank a dominated
        # candidate with a better product.
        rung = [
            fake_eval(0, (0.5, 3.0)),  # rank 0, score 1.5 (frontier extreme)
            fake_eval(1, (1.0, 1.0)),  # rank 0, score 1.0
            fake_eval(2, (1.1, 1.1)),  # rank 1, score 1.21 < 1.5 but dominated
        ]
        assert SuccessiveHalving.promote(rung, 2) == [0, 1]

    def test_run_never_culls_a_rung_frontier(self, tmp_path):
        # With eta=2 and four incomparable candidates the plain halving
        # quota would keep two; the front-preserving rule keeps all four
        # through every rung (verified on hand-built evaluations via
        # promote + the integration run's monotone counts).
        space = tiny_space()
        result = run_dse(
            space, strategy="halving", budget=4, jobs=1,
            store=ResultStore(tmp_path / "dse"),
        )
        full = [e for e in result.evaluations if e.instructions == space.instructions]
        # Every full-length survivor that is non-dominated appears in the
        # frontier; the frontier is never empty and never a strict subset
        # forced by the scalar score alone.
        assert result.frontier
        assert {c.name for c in result.frontier} <= {c.name for c in full}

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            SuccessiveHalving(eta=1)
        with pytest.raises(ValueError):
            SuccessiveHalving(min_instructions=0)

    def test_halving_promotes_through_rungs_to_full_length(self, tmp_path):
        space = tiny_space()
        result = run_dse(
            space,
            strategy="halving",
            budget=4,
            jobs=1,
            store=ResultStore(tmp_path / "dse"),
        )
        lengths = sorted({e.instructions for e in result.evaluations})
        assert lengths[-1] == space.instructions
        assert len(lengths) > 1  # at least one short rung ran
        # Survivor counts shrink rung over rung.
        by_length = {
            length: [e for e in result.evaluations if e.instructions == length]
            for length in lengths
        }
        counts = [len(by_length[length]) for length in lengths]
        assert counts == sorted(counts, reverse=True)
        assert all(e.instructions == space.instructions for e in result.pool)
        assert result.frontier  # non-empty frontier from the survivors


class TestStrategySelection:
    def test_strategy_by_name_rejects_unknown(self):
        with pytest.raises(ValueError) as excinfo:
            strategy_by_name("annealing")
        assert "grid" in str(excinfo.value)

    def test_random_sampling_is_seeded_and_distinct(self):
        space = tiny_space(
            dimensions=(choice("buses", "malec_options.result_buses", (1, 2, 3, 4, 5, 6)),)
        )
        first = RandomSearch(seed=7)._sample(space, 3)
        second = RandomSearch(seed=7)._sample(space, 3)
        assert first == second
        assert len(set(first)) == 3
        assert first == sorted(first)
        # The seed must actually steer the sample: among a handful of other
        # seeds at least one picks a different subset.
        assert any(
            RandomSearch(seed=seed)._sample(space, 3) != first for seed in range(8, 20)
        )
        # Budget >= size degenerates to the full grid.
        assert RandomSearch(seed=7)._sample(space, 99) == list(range(space.size))

    def test_grid_budget_subsamples_with_uniform_stride(self):
        # A capped grid must not evaluate the row-major prefix (that would
        # pin the leading dimension to its first value): the subsample
        # strides across the whole index range.
        result = run_dse(tiny_space(), strategy="grid", budget=2, jobs=1)
        assert [e.index for e in result.pool] == [0, 2]
        buses = {dict(e.assignment)["buses"] for e in result.pool}
        assert buses == {2, 4}  # both values of the leading dimension

    def test_grid_full_budget_is_the_whole_space(self):
        result = run_dse(tiny_space(), strategy="grid", jobs=1)
        assert [e.index for e in result.pool] == [0, 1, 2, 3]

    def test_budget_must_be_positive(self):
        with pytest.raises(ValueError):
            run_dse(tiny_space(), strategy="grid", budget=0, jobs=1)


# ----------------------------------------------------------------------
# Engine determinism: the acceptance contract
# ----------------------------------------------------------------------
class TestEngineDeterminism:
    def test_identical_frontier_for_any_job_count(self, tmp_path):
        space = tiny_space()
        serial = run_dse(space, strategy="halving", budget=4, jobs=1,
                         store=ResultStore(tmp_path / "serial"))
        parallel = run_dse(space, strategy="halving", budget=4, jobs=4,
                           store=ResultStore(tmp_path / "parallel"))
        in_memory = run_dse(space, strategy="halving", budget=4, jobs=1)
        assert frontier_fingerprint(serial) == frontier_fingerprint(parallel)
        assert frontier_fingerprint(serial) == frontier_fingerprint(in_memory)
        assert serial.ranks == parallel.ranks

    def test_identical_frontier_after_kill_and_resume(self, tmp_path):
        space = tiny_space()
        store = ResultStore(tmp_path / "dse")
        first = run_dse(space, strategy="halving", budget=4, jobs=1, store=store)
        all_keys = sorted(store.keys())

        # Simulate a mid-sweep kill: drop every other persisted cell, then
        # re-run the identical exploration against the mutilated store.
        for key in all_keys[::2]:
            (store.cell_dir / f"{key}.json").unlink()
        resumed = run_dse(space, strategy="halving", budget=4, jobs=2, store=store)

        assert frontier_fingerprint(resumed) == frontier_fingerprint(first)
        assert resumed.ranks == first.ranks
        assert resumed.cells_resumed > 0 and resumed.cells_simulated > 0
        # Every evaluated cell is present exactly once, under its old key.
        assert sorted(store.keys()) == all_keys

    def test_store_dedupes_across_strategies(self, tmp_path):
        space = tiny_space()
        store = ResultStore(tmp_path / "dse")
        run_dse(space, strategy="grid", jobs=1, store=store)
        grid_cells = len(store)
        # The whole 4-point space was already swept at full length: a random
        # search with the same full-length evaluations resumes every cell.
        rerun = run_dse(space, strategy="random", budget=4, jobs=1, store=store)
        assert rerun.cells_simulated == 0
        assert rerun.cells_resumed > 0
        assert len(store) == grid_cells

    def test_frontier_points_are_never_dominated(self, tmp_path):
        result = run_dse(tiny_space(), strategy="grid", jobs=1)
        frontier_names = {candidate.name for candidate in result.frontier}
        for candidate in result.pool:
            assert (result.ranks[candidate.name] == 0) == (
                candidate.name in frontier_names
            )
        for fc in result.frontier:
            assert not any(
                dominates(other.values, fc.values) for other in result.pool
            )

    def test_extract_frontier_ignores_delivery_order(self):
        pool = [fake_eval(0, (1.0, 2.0)), fake_eval(1, (2.0, 1.0)), fake_eval(2, (3.0, 3.0))]
        forward = extract_frontier(pool)
        backward = extract_frontier(pool[::-1])
        assert [c.name for c in forward[0]] == [c.name for c in backward[0]]
        assert forward[1] == backward[1]

    def test_dse_manifest_written_alongside_store(self, tmp_path):
        import json

        store = ResultStore(tmp_path / "dse")
        result = run_dse(tiny_space(), strategy="grid", budget=2, jobs=1, store=store)
        manifest = json.loads((store.root / "dse.json").read_text())
        assert manifest["strategy"] == "grid"
        assert manifest["space"]["name"] == "tiny"
        assert len(manifest["frontier"]) == len(result.frontier)

    def test_manifest_survives_enum_valued_dimensions(self, tmp_path):
        # Enum values in an assignment (interface-kind dimensions built
        # from InterfaceKind members rather than strings) must not break
        # the dse.json serialization after all simulations completed.
        import json

        space = tiny_space(
            dimensions=(
                choice("iface", "interface", (InterfaceKind.BASE_1LDST, InterfaceKind.MALEC)),
            )
        )
        store = ResultStore(tmp_path / "dse")
        result = run_dse(space, strategy="grid", jobs=1, store=store)
        manifest = json.loads((store.root / "dse.json").read_text())
        assignments = [entry["assignment"]["iface"] for entry in manifest["frontier"]]
        assert set(assignments) <= {"Base1ldst", "MALEC"}
        assert result.frontier


# ----------------------------------------------------------------------
# Frontier reports
# ----------------------------------------------------------------------
class TestFrontierReports:
    def test_text_and_csv_share_rows(self):
        from repro.analysis.reporting import format_frontier, frontier_csv

        frontier = [fake_eval(1, (0.8, 0.9)), fake_eval(2, (1.1, 0.7))]
        ranks = {"cand1": 0, "cand2": 0}
        text = format_frontier(frontier, ranks)
        assert "runtime" in text and "energy" in text and "rank" in text
        csv_text = frontier_csv(frontier, ranks)
        lines = csv_text.splitlines()
        assert lines[0] == "dim,runtime,energy,instructions,rank"
        assert len(lines) == 3
        assert "0.8" in lines[1]

    def test_empty_frontier_renders_gracefully(self):
        from repro.analysis.reporting import format_frontier, frontier_csv

        assert format_frontier([]) == "frontier is empty"
        assert frontier_csv([]).splitlines() == ["empty"]

    def test_csv_floats_round_trip_exactly(self):
        from repro.analysis.reporting import frontier_csv

        value = 0.8029955969695887
        line = frontier_csv([fake_eval(0, (value, 1.0))]).splitlines()[1]
        assert float(line.split(",")[1]) == value


# ----------------------------------------------------------------------
# Evaluator plumbing
# ----------------------------------------------------------------------
class TestEvaluator:
    def test_baseline_rides_along_and_objectives_are_normalized(self, tmp_path):
        space = tiny_space()
        evaluator = Evaluator(
            space, resolve_objectives(("runtime", "energy")), jobs=1
        )
        evaluated = evaluator.evaluate([0, 3], 300)
        assert [e.index for e in evaluated] == [0, 3]
        for e in evaluated:
            assert e.instructions == 300
            assert set(e.objectives) == {"runtime", "energy"}
            assert all(value > 0 for value in e.values)
        # One batch: 2 candidates + the baseline, over 2 benchmarks.
        assert evaluator.simulated == 6
        assert evaluator.batches == 1
