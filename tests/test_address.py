"""Unit and property tests for the address-layout geometry."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.address import AddressLayout, DEFAULT_LAYOUT, align_down, align_up

addresses = st.integers(min_value=0, max_value=DEFAULT_LAYOUT.max_address)


class TestDerivedWidths:
    def test_default_matches_table2(self):
        layout = DEFAULT_LAYOUT
        assert layout.page_id_bits == 20
        assert layout.page_offset_bits == 12
        assert layout.line_offset_bits == 6
        assert layout.lines_per_page == 64
        assert layout.subblocks_per_line == 4
        assert layout.l1_total_sets == 128
        assert layout.l1_sets_per_bank == 32
        assert layout.bank_bits == 2
        assert layout.set_bits == 5

    def test_tag_bits_cover_address(self):
        layout = DEFAULT_LAYOUT
        assert (
            layout.tag_bits
            + layout.set_bits
            + layout.bank_bits
            + layout.line_offset_bits
            == layout.address_bits
        )

    def test_arbitration_comparator_width(self):
        # Sec. IV: comparator_bits = address - pageID - line offset = 6 bits.
        assert DEFAULT_LAYOUT.arbitration_comparator_bits == 6

    def test_l1_total_lines(self):
        assert DEFAULT_LAYOUT.l1_total_lines == 512


class TestValidation:
    def test_rejects_non_power_of_two_page(self):
        with pytest.raises(ValueError):
            AddressLayout(page_bytes=3000)

    def test_rejects_line_larger_than_page(self):
        with pytest.raises(ValueError):
            AddressLayout(page_bytes=64, line_bytes=128)

    def test_rejects_subblock_larger_than_line(self):
        with pytest.raises(ValueError):
            AddressLayout(subblock_bytes=128, line_bytes=64)

    def test_rejects_address_out_of_range(self):
        with pytest.raises(ValueError):
            DEFAULT_LAYOUT.page_id(1 << 32)
        with pytest.raises(ValueError):
            DEFAULT_LAYOUT.page_id(-1)

    def test_rejects_uneven_bank_split(self):
        with pytest.raises(ValueError):
            AddressLayout(l1_capacity_bytes=24 * 1024 + 13)


class TestFieldExtraction:
    def test_page_and_offset_roundtrip(self):
        layout = DEFAULT_LAYOUT
        address = layout.compose(0x12345, 0xABC)
        assert layout.page_id(address) == 0x12345
        assert layout.page_offset(address) == 0xABC

    def test_line_fields(self):
        layout = DEFAULT_LAYOUT
        address = layout.compose_line(10, 17, 12)
        assert layout.line_in_page(address) == 17
        assert layout.line_offset(address) == 12
        assert layout.page_id(address) == 10

    def test_bank_interleaving_consecutive_lines(self):
        layout = DEFAULT_LAYOUT
        banks = [layout.bank_index(layout.compose_line(5, line)) for line in range(8)]
        assert banks == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_same_line_and_page_predicates(self):
        layout = DEFAULT_LAYOUT
        a = layout.compose_line(3, 7, 0)
        b = layout.compose_line(3, 7, 63)
        c = layout.compose_line(3, 8, 0)
        d = layout.compose_line(4, 7, 0)
        assert layout.same_line(a, b)
        assert layout.same_page(a, c)
        assert not layout.same_line(a, c)
        assert not layout.same_page(a, d)

    def test_subblock_pairing(self):
        layout = DEFAULT_LAYOUT
        base = layout.compose_line(2, 5, 0)
        assert layout.same_subblock_pair(base, base + 31)
        assert not layout.same_subblock_pair(base, base + 32)
        assert layout.same_subblock_pair(base + 32, base + 63)

    def test_compose_line_rejects_bad_fields(self):
        layout = DEFAULT_LAYOUT
        with pytest.raises(ValueError):
            layout.compose_line(0, 64)
        with pytest.raises(ValueError):
            layout.compose_line(0, 0, 64)
        with pytest.raises(ValueError):
            layout.compose(1 << 20, 0)


class TestAlignment:
    def test_align_down_up(self):
        assert align_down(0x1234, 0x100) == 0x1200
        assert align_up(0x1234, 0x100) == 0x1300
        assert align_up(0x1200, 0x100) == 0x1200

    def test_align_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            align_down(10, 3)
        with pytest.raises(ValueError):
            align_up(10, 6)


class TestProperties:
    @given(addresses)
    @settings(max_examples=200)
    def test_field_recomposition(self, address):
        """Splitting an address into fields and recomposing is lossless."""
        layout = DEFAULT_LAYOUT
        rebuilt = layout.compose(layout.page_id(address), layout.page_offset(address))
        assert rebuilt == address

    @given(addresses)
    @settings(max_examples=200)
    def test_line_address_is_aligned_prefix(self, address):
        layout = DEFAULT_LAYOUT
        line = layout.line_address(address)
        assert line % layout.line_bytes == 0
        assert line <= address < line + layout.line_bytes

    @given(addresses)
    @settings(max_examples=200)
    def test_bank_set_tag_identify_line(self, address):
        """(bank, set, tag) uniquely identifies the line number."""
        layout = DEFAULT_LAYOUT
        line_number = (
            (layout.tag(address) << (layout.bank_bits + layout.set_bits))
            | (layout.set_index(address) << layout.bank_bits)
            | layout.bank_index(address)
        )
        assert line_number == layout.line_number(address)

    @given(addresses, addresses)
    @settings(max_examples=200)
    def test_same_line_implies_same_page(self, a, b):
        layout = DEFAULT_LAYOUT
        if layout.same_line(a, b):
            assert layout.same_page(a, b)

    @given(addresses)
    @settings(max_examples=100)
    def test_line_in_page_bounds(self, address):
        layout = DEFAULT_LAYOUT
        assert 0 <= layout.line_in_page(address) < layout.lines_per_page
