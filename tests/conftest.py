"""Shared fixtures for the MALEC reproduction test suite."""

from __future__ import annotations

import pytest

from repro.memory.address import AddressLayout, DEFAULT_LAYOUT
from repro.memory.hierarchy import MemoryHierarchy
from repro.stats import StatCounters
from repro.tlb.tlb import TLBHierarchy
from repro.workloads.suites import benchmark_profile
from repro.workloads.synthetic import generate_trace


@pytest.fixture
def layout() -> AddressLayout:
    """The paper's default address/cache geometry (Table II)."""
    return DEFAULT_LAYOUT


@pytest.fixture
def stats() -> StatCounters:
    """A fresh, empty statistics collection."""
    return StatCounters()


@pytest.fixture
def hierarchy(stats) -> MemoryHierarchy:
    """A default L1/L2/DRAM hierarchy sharing the ``stats`` fixture."""
    return MemoryHierarchy(stats=stats)


@pytest.fixture
def translation(stats) -> TLBHierarchy:
    """A default uTLB/TLB hierarchy sharing the ``stats`` fixture."""
    return TLBHierarchy(stats=stats)


@pytest.fixture(scope="session")
def small_trace():
    """A short, deterministic synthetic trace used by integration tests."""
    return generate_trace(benchmark_profile("gzip"), instructions=1500)


@pytest.fixture(scope="session")
def media_trace():
    """A short media-like trace (high page/line locality)."""
    return generate_trace(benchmark_profile("djpeg"), instructions=1500)


def make_address(layout: AddressLayout, page: int, line: int, offset: int = 0) -> int:
    """Helper used across tests to build addresses field-by-field."""
    return layout.compose_line(page, line, offset)
