"""Tests for the pluggable store backends: URL parsing, the backend
contract, manifest-conflict detection and multi-process SQLite writes."""

from __future__ import annotations

import multiprocessing
import sqlite3

import pytest

from repro.campaign.backends import (
    JsonDirectoryBackend,
    SqliteBackend,
    StoreConflictError,
    StoreURLError,
    backend_for_url,
    parse_store_url,
)
from repro.campaign.executor import ParallelExecutor
from repro.campaign.spec import CampaignSpec, campaign_preset
from repro.campaign.store import ResultStore, open_store
from repro.sim.config import SimulationConfig

INSTRUCTIONS = 600
CONFIGS = (SimulationConfig.base_1ldst(), SimulationConfig.malec())


def small_spec(**overrides) -> CampaignSpec:
    defaults = dict(
        name="test",
        configurations=CONFIGS,
        benchmarks=("gzip", "swim"),
        instructions=INSTRUCTIONS,
        warmup_fraction=0.25,
    )
    defaults.update(overrides)
    return CampaignSpec(**defaults)


class TestParseStoreUrl:
    def test_bare_path_selects_json(self):
        assert parse_store_url("results/fig4") == ("json", "results/fig4")

    def test_explicit_json_scheme(self):
        assert parse_store_url("json:results/fig4") == ("json", "results/fig4")

    def test_sqlite_scheme(self):
        assert parse_store_url("sqlite:results.db") == ("sqlite", "results.db")

    def test_windows_style_and_dotted_paths_are_json(self):
        # A single leading letter before ":" is still a scheme candidate,
        # but anything with path separators before the colon is a path.
        assert parse_store_url("./results:odd")[0] == "json"

    def test_unknown_scheme_is_loud(self):
        with pytest.raises(StoreURLError) as err:
            parse_store_url("postgres:cluster/db")
        message = str(err.value)
        assert "postgres" in message
        assert "json:" in message and "sqlite:" in message

    def test_empty_rest_is_rejected(self):
        with pytest.raises(StoreURLError):
            parse_store_url("sqlite:")
        with pytest.raises(StoreURLError):
            parse_store_url("")

    def test_backend_for_url(self, tmp_path):
        json_backend = backend_for_url(f"json:{tmp_path / 'a'}")
        sqlite_backend = backend_for_url(f"sqlite:{tmp_path / 'b.db'}")
        try:
            assert isinstance(json_backend, JsonDirectoryBackend)
            assert isinstance(sqlite_backend, SqliteBackend)
            assert json_backend.url.startswith("json:")
            assert sqlite_backend.url.startswith("sqlite:")
        finally:
            json_backend.close()
            sqlite_backend.close()


class TestOpenStore:
    def test_open_store_coerces_urls_paths_and_stores(self, tmp_path):
        assert open_store(None) is None
        store = open_store(f"sqlite:{tmp_path / 's.db'}")
        assert isinstance(store, ResultStore)
        assert open_store(store) is store
        store.close()
        json_store = open_store(tmp_path / "plain")
        assert isinstance(json_store.backend, JsonDirectoryBackend)
        json_store.close()


def record_fixture(key="k" * 20, cycles=123):
    return {
        "key": key,
        "benchmark": "gzip",
        "config_name": "Base1ldst",
        "result": {"cycles": cycles},
    }


class TestBackendContract:
    @pytest.fixture(params=["json", "sqlite"])
    def backend(self, request, tmp_path):
        if request.param == "json":
            backend = JsonDirectoryBackend(tmp_path / "store")
        else:
            backend = SqliteBackend(tmp_path / "store.db")
        yield backend
        backend.close()

    def test_put_get_has_roundtrip(self, backend):
        record = record_fixture()
        assert not backend.has(record["key"])
        backend.put(record["key"], record)
        assert backend.has(record["key"])
        assert backend.get(record["key"]) == record
        assert len(backend) == 1
        assert list(backend.keys()) == [record["key"]]
        assert list(backend.iterate()) == [record]

    def test_put_is_idempotent_and_last_write_wins(self, backend):
        key = "a" * 20
        backend.put(key, record_fixture(key, cycles=1))
        backend.put(key, record_fixture(key, cycles=2))
        assert len(backend) == 1
        assert backend.get(key)["result"]["cycles"] == 2

    def test_manifest_roundtrip(self, backend):
        manifest = {"name": "fig4", "benchmarks": ["gzip"], "instructions": 600}
        backend.write_manifest(manifest)
        assert backend.manifest() == manifest
        # Internal bookkeeping keys never leak into the returned manifest.
        assert "manifest_version" not in backend.manifest()
        backend.check_manifest()


class TestBitIdenticalAcrossBackends:
    def test_cells_serialize_identically(self, tmp_path):
        spec = small_spec(benchmarks=("gzip",))
        json_store = ResultStore(f"json:{tmp_path / 'json_store'}")
        sqlite_store = ResultStore(f"sqlite:{tmp_path / 'store.db'}")
        ParallelExecutor(jobs=1, store=json_store).run(spec)
        ParallelExecutor(jobs=1, store=sqlite_store).run(spec)
        json_records = {r["key"]: r for r in json_store.records()}
        sqlite_records = {r["key"]: r for r in sqlite_store.records()}
        assert json_records == sqlite_records
        # Byte-for-byte: the on-disk JSON cell equals the SQLite row text.
        db = sqlite3.connect(sqlite_store.backend.path)
        try:
            for key, text in db.execute("SELECT key, record FROM cells"):
                on_disk = (json_store.cell_dir / f"{key}.json").read_text()
                assert on_disk == text
        finally:
            db.close()
        json_store.close()
        sqlite_store.close()


class TestManifestConflicts:
    def test_json_detects_foreign_clobber(self, tmp_path):
        first = ResultStore(f"json:{tmp_path / 'store'}")
        first.write_manifest(small_spec())
        # A second, concurrent sweep writes a *different* manifest.
        second = ResultStore(f"json:{tmp_path / 'store'}")
        second.write_manifest(small_spec(instructions=900))
        with pytest.raises(StoreConflictError) as err:
            first.check_manifest()
        assert "sqlite" in str(err.value)
        first.close()
        second.close()

    def test_json_same_content_race_is_harmless(self, tmp_path):
        first = ResultStore(f"json:{tmp_path / 'store'}")
        second = ResultStore(f"json:{tmp_path / 'store'}")
        first.write_manifest(small_spec())
        second.write_manifest(small_spec())
        first.check_manifest()
        second.check_manifest()
        first.close()
        second.close()

    def test_json_rewrite_by_same_writer_is_fine(self, tmp_path):
        store = ResultStore(f"json:{tmp_path / 'store'}")
        store.write_manifest(small_spec())
        store.write_manifest(small_spec(instructions=900))
        store.check_manifest()
        store.close()

    def test_sqlite_keeps_every_manifest(self, tmp_path):
        first = ResultStore(f"sqlite:{tmp_path / 'store.db'}")
        second = ResultStore(f"sqlite:{tmp_path / 'store.db'}")
        first.write_manifest(small_spec())
        second.write_manifest(small_spec(instructions=900))
        # Nothing was lost: both manifests are retrievable and check passes.
        assert len(first.backend.manifests()) == 2
        first.check_manifest()
        second.check_manifest()
        assert second.manifest()["instructions"] == 900
        first.close()
        second.close()


def _sweep_worker(store_url: str, benchmarks, ready):
    """Run a fig4-mini slice against a shared SQLite store (child process)."""
    from repro.campaign.executor import ParallelExecutor
    from repro.campaign.spec import campaign_preset

    spec = campaign_preset("fig4-mini").with_overrides(benchmarks=tuple(benchmarks))
    ParallelExecutor(jobs=1, store=store_url).run(spec)
    ready.send("done")
    ready.close()


class TestConcurrentSqliteWriters:
    def test_two_processes_overlapping_grids_match_serial(self, tmp_path):
        """Two concurrent sweeps with overlapping benchmark sets produce a
        store bit-identical to one serial sweep of the union."""
        spec = campaign_preset("fig4-mini")
        benchmarks = spec.benchmarks
        assert len(benchmarks) >= 3
        # Overlap: both halves share the middle benchmark.
        half = len(benchmarks) // 2
        left = benchmarks[: half + 1]
        right = benchmarks[half:]

        serial_store = ResultStore(f"sqlite:{tmp_path / 'serial.db'}")
        ParallelExecutor(jobs=1, store=serial_store).run(spec)

        shared_url = f"sqlite:{tmp_path / 'shared.db'}"
        ctx = multiprocessing.get_context("spawn")
        pipes, workers = [], []
        for chunk in (left, right):
            recv, send = ctx.Pipe(duplex=False)
            proc = ctx.Process(
                target=_sweep_worker, args=(shared_url, list(chunk), send)
            )
            proc.start()
            pipes.append(recv)
            workers.append(proc)
        for proc, recv in zip(workers, pipes):
            proc.join(timeout=300)
            assert proc.exitcode == 0
            assert recv.poll(1) and recv.recv() == "done"

        shared = ResultStore(shared_url)
        serial_records = {r["key"]: r for r in serial_store.records()}
        shared_records = {r["key"]: r for r in shared.records()}
        assert shared_records == serial_records
        shared.check_manifest()
        serial_store.close()
        shared.close()
