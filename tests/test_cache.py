"""Tests for the L1 cache bank, the full L1, the L2 and the DRAM model."""

import pytest

from repro.cache.cache_bank import CacheBank
from repro.cache.l1_cache import L1DataCache
from repro.cache.l2_cache import L2Cache
from repro.memory.address import DEFAULT_LAYOUT
from repro.memory.dram import DRAMModel
from repro.memory.hierarchy import MemoryHierarchy

layout = DEFAULT_LAYOUT


def addr(page: int, line: int, offset: int = 0) -> int:
    return layout.compose_line(page, line, offset)


class TestCacheBank:
    def test_rejects_foreign_bank_address(self):
        bank = CacheBank(bank_index=0)
        with pytest.raises(ValueError):
            bank.read(addr(1, 1))  # line 1 belongs to bank 1

    def test_conventional_read_counts_all_ways(self, stats):
        bank = CacheBank(bank_index=0, stats=stats)
        bank.read(addr(1, 0))
        assert stats["l1.tag_read"] == layout.l1_associativity
        assert stats["l1.data_read"] == layout.l1_associativity
        assert stats["l1.conventional_access"] == 1
        assert stats["l1.ctrl"] == 1

    def test_reduced_read_counts_single_data_array(self, stats):
        bank = CacheBank(bank_index=0, stats=stats)
        fill = bank.fill(addr(1, 0))
        stats.clear()
        result = bank.read(addr(1, 0), way_hint=fill.way)
        assert result.hit and result.reduced
        assert stats["l1.tag_read"] == 0
        assert stats["l1.data_read"] == 1
        assert stats["l1.reduced_access"] == 1

    def test_wrong_way_hint_falls_back_to_conventional(self, stats):
        bank = CacheBank(bank_index=0, stats=stats)
        fill = bank.fill(addr(1, 0))
        wrong = (fill.way + 1) % layout.l1_associativity
        result = bank.read(addr(1, 0), way_hint=wrong)
        assert result.hit and result.way_hint_wrong
        assert stats["l1.way_hint_wrong"] == 1
        assert stats["l1.conventional_access"] == 1

    def test_fill_and_eviction_callbacks(self):
        fills, evicts = [], []
        bank = CacheBank(
            bank_index=0,
            on_fill=lambda a, w: fills.append((a, w)),
            on_evict=lambda a, w: evicts.append((a, w)),
        )
        # Fill more lines than the set holds (same set, different tags).
        set_span = layout.l1_banks * layout.l1_sets_per_bank  # lines between same-set addresses
        for i in range(layout.l1_associativity + 1):
            bank.fill(layout.address_of_line(i * set_span))
        assert len(fills) == layout.l1_associativity + 1
        assert len(evicts) == 1

    def test_excluded_way_rotation(self):
        bank = CacheBank(bank_index=0, restrict_way_allocation=True)
        assert bank.excluded_way_for(addr(0, 0)) == 0
        assert bank.excluded_way_for(addr(0, 4)) == 1
        assert bank.excluded_way_for(addr(0, 8)) == 2
        assert bank.excluded_way_for(addr(0, 12)) == 3
        assert bank.excluded_way_for(addr(0, 16)) == 0

    def test_restricted_fill_avoids_excluded_way(self):
        bank = CacheBank(bank_index=0, restrict_way_allocation=True)
        set_span = layout.l1_banks * layout.l1_sets_per_bank
        for i in range(16):
            result = bank.fill(layout.address_of_line(i * set_span))
            assert result.way != 0  # line-in-page 0 excludes way 0

    def test_store_write_marks_dirty_and_hits(self, stats):
        bank = CacheBank(bank_index=0, stats=stats)
        bank.fill(addr(1, 0))
        result = bank.write(addr(1, 0))
        assert result.hit
        assert stats["l1.data_write"] >= 1

    def test_way_of_and_contains(self):
        bank = CacheBank(bank_index=0)
        assert not bank.contains(addr(2, 0))
        fill = bank.fill(addr(2, 0))
        assert bank.contains(addr(2, 0))
        assert bank.way_of(addr(2, 0)) == fill.way


class TestL1DataCache:
    def test_load_miss_then_hit(self, stats):
        l1 = L1DataCache(stats=stats)
        first = l1.load(addr(3, 5))
        assert not first.hit and first.latency > l1.hit_latency
        second = l1.load(addr(3, 5))
        assert second.hit and second.latency == l1.hit_latency
        assert stats["l1.load_miss"] == 1 and stats["l1.load_hit"] == 1

    def test_store_allocates_line(self):
        l1 = L1DataCache()
        outcome = l1.store(addr(4, 2))
        assert not outcome.hit
        assert l1.contains(addr(4, 2))
        assert l1.store(addr(4, 2)).hit

    def test_bank_routing(self):
        l1 = L1DataCache()
        outcome = l1.load(addr(1, 6))
        assert outcome.bank == 6 % 4

    def test_fill_listeners_reach_way_consumers(self):
        l1 = L1DataCache()
        seen = []
        l1.add_fill_listener(lambda a, w: seen.append(("fill", a, w)))
        l1.add_evict_listener(lambda a, w: seen.append(("evict", a, w)))
        l1.load(addr(5, 0))
        assert seen and seen[0][0] == "fill"

    def test_miss_rates(self):
        l1 = L1DataCache()
        l1.load(addr(6, 0))
        l1.load(addr(6, 0))
        assert l1.load_miss_rate == 0.5
        assert 0 < l1.miss_rate <= 0.5

    def test_occupancy_grows_with_distinct_lines(self):
        l1 = L1DataCache()
        for line in range(10):
            l1.load(addr(7, line))
        assert l1.occupancy() == 10

    def test_reduced_access_via_hint(self, stats):
        l1 = L1DataCache(stats=stats)
        outcome = l1.load(addr(8, 1))
        stats.clear()
        hit = l1.load(addr(8, 1), way_hint=outcome.way)
        assert hit.hit and hit.reduced
        assert stats["l1.tag_read"] == 0


class TestL2AndDRAM:
    def test_l2_miss_goes_to_dram(self, stats):
        l2 = L2Cache(stats=stats)
        latency = l2.access(addr(9, 0))
        assert latency == l2.latency_cycles + l2.dram.latency_cycles
        assert stats["dram.read"] == 1
        assert l2.contains(addr(9, 0))

    def test_l2_hit_latency(self):
        l2 = L2Cache()
        l2.access(addr(9, 0))
        assert l2.access(addr(9, 0)) == l2.latency_cycles

    def test_l2_miss_rate(self):
        l2 = L2Cache()
        l2.access(addr(9, 0))
        l2.access(addr(9, 0))
        assert l2.miss_rate == 0.5

    def test_l2_geometry_validation(self):
        with pytest.raises(ValueError):
            L2Cache(capacity_bytes=1000)

    def test_dram_counts_and_capacity(self):
        dram = DRAMModel(capacity_bytes=1 << 20)
        assert dram.read(0) == dram.latency_cycles
        assert dram.write(0) == dram.latency_cycles
        assert dram.accesses == 2
        with pytest.raises(ValueError):
            dram.read(1 << 20)

    def test_dram_validation(self):
        with pytest.raises(ValueError):
            DRAMModel(capacity_bytes=0)
        with pytest.raises(ValueError):
            DRAMModel(latency_cycles=-1)


class TestMemoryHierarchy:
    def test_l1_miss_fills_both_levels(self):
        hierarchy = MemoryHierarchy()
        outcome = hierarchy.l1.load(addr(10, 0))
        assert not outcome.hit
        # The miss latency includes L2 and DRAM.
        assert outcome.latency == 2 + 12 + 54
        assert hierarchy.l1.contains(addr(10, 0))
        assert hierarchy.l2.contains(addr(10, 0))

    def test_shared_stats_object(self):
        hierarchy = MemoryHierarchy()
        hierarchy.l1.load(addr(10, 0))
        assert hierarchy.stats["l1.load"] == 1
        assert hierarchy.stats["l2.access"] == 1
        assert hierarchy.stats["dram.read"] == 1

    def test_latency_overrides(self):
        hierarchy = MemoryHierarchy(l1_hit_latency=1, l2_latency=5, dram_latency=10)
        outcome = hierarchy.l1.load(addr(11, 0))
        assert outcome.latency == 1 + 5 + 10
