"""Tests for the compact binary trace format (``.rtrc``)."""

import gzip
import time

import pytest

from repro.cpu.instruction import compute, load, store
from repro.workloads.binfmt import (
    RTRC_MAGIC,
    RTRC_VERSION,
    TraceFormatError,
    decode_trace,
    dump_rtrc,
    encode_trace,
    load_rtrc,
    read_header,
    trace_fingerprint,
)
from repro.workloads.suites import benchmark_profile
from repro.workloads.synthetic import generate_trace
from repro.workloads.trace import MemoryTrace


def _sample_trace(name: str = "sample") -> MemoryTrace:
    return MemoryTrace(
        name=name,
        instructions=[
            load(0x1000),
            compute(deps=(1,)),
            store(0x1004, size=8, deps=(2,)),
            load(0x2000, size=1),
            compute(),
            store(0x2008, deps=(1, 4)),
        ],
        suite="unit",
    )


class TestRoundTrip:
    def test_decode_restores_every_instruction(self):
        trace = _sample_trace()
        decoded = decode_trace(encode_trace(trace))
        assert decoded.name == trace.name
        assert decoded.suite == trace.suite
        assert decoded.layout == trace.layout
        assert decoded.instructions == trace.instructions

    def test_reencode_is_bit_identical(self):
        trace = generate_trace(benchmark_profile("gzip"), 800)
        payload = encode_trace(trace)
        assert encode_trace(decode_trace(payload)) == payload

    def test_roundtrip_through_jsonl_is_bit_identical(self, tmp_path):
        """JSONL and .rtrc preserve exactly the same information."""
        trace = generate_trace(benchmark_profile("mcf"), 600)
        direct = encode_trace(trace)
        jsonl = tmp_path / "trace.jsonl"
        trace.to_jsonl(jsonl)
        assert encode_trace(MemoryTrace.from_jsonl(jsonl)) == direct
        # And the reverse direction: .rtrc -> JSONL matches JSONL directly.
        rtrc_jsonl = tmp_path / "roundtrip.jsonl"
        decode_trace(direct).to_jsonl(rtrc_jsonl)
        assert rtrc_jsonl.read_text() == jsonl.read_text()

    def test_empty_trace_roundtrips(self):
        trace = MemoryTrace(name="empty", instructions=[], suite="unit")
        decoded = decode_trace(encode_trace(trace))
        assert decoded.name == "empty"
        assert len(decoded) == 0

    def test_to_bytes_is_rtrc(self):
        trace = _sample_trace()
        payload = trace.to_bytes()
        assert payload.startswith(RTRC_MAGIC)
        assert MemoryTrace.from_bytes(payload).instructions == trace.instructions


class TestFileIO:
    def test_dump_and_load(self, tmp_path):
        trace = _sample_trace()
        path = tmp_path / "t.rtrc"
        dump_rtrc(trace, path)
        assert load_rtrc(path).instructions == trace.instructions

    def test_gzip_path_is_compressed(self, tmp_path):
        trace = generate_trace(benchmark_profile("gzip"), 400)
        plain = tmp_path / "t.rtrc"
        packed = tmp_path / "t.rtrc.gz"
        dump_rtrc(trace, plain)
        dump_rtrc(trace, packed)
        assert gzip.decompress(packed.read_bytes()) == plain.read_bytes()
        assert load_rtrc(packed).instructions == trace.instructions

    def test_load_error_names_the_file(self, tmp_path):
        path = tmp_path / "bad.rtrc"
        path.write_bytes(b"RTRC")
        with pytest.raises(TraceFormatError, match="bad.rtrc"):
            load_rtrc(path)


class TestMalformedPayloads:
    def test_truncated_header(self):
        with pytest.raises(TraceFormatError, match="truncated .rtrc header"):
            decode_trace(b"RTRC\x01\x00")

    def test_bad_magic(self):
        payload = bytearray(encode_trace(_sample_trace()))
        payload[:4] = b"NOPE"
        with pytest.raises(TraceFormatError, match="bad magic"):
            decode_trace(bytes(payload))

    def test_unsupported_version(self):
        payload = bytearray(encode_trace(_sample_trace()))
        payload[4] = RTRC_VERSION + 1
        with pytest.raises(TraceFormatError, match="unsupported .rtrc version"):
            decode_trace(bytes(payload))

    def test_truncated_records(self):
        payload = encode_trace(_sample_trace())
        with pytest.raises(TraceFormatError, match="truncated or oversized"):
            decode_trace(payload[:-5])

    def test_trailing_garbage(self):
        payload = encode_trace(_sample_trace())
        with pytest.raises(TraceFormatError, match="truncated or oversized"):
            decode_trace(payload + b"\x00\x00")

    def test_name_cut_short(self):
        payload = encode_trace(_sample_trace(name="a-rather-long-trace-name"))
        with pytest.raises(TraceFormatError, match="name/suite cut short"):
            decode_trace(payload[:58])


class TestFingerprint:
    def test_stable_across_encode_decode(self):
        trace = _sample_trace()
        decoded = decode_trace(encode_trace(trace))
        assert trace_fingerprint(trace) == trace_fingerprint(decoded)

    def test_independent_of_name_and_suite(self):
        one = _sample_trace(name="one")
        two = _sample_trace(name="two")
        two.suite = "other"
        assert trace_fingerprint(one) == trace_fingerprint(two)

    def test_sensitive_to_content(self):
        base = _sample_trace()
        changed = _sample_trace()
        changed.instructions[0].address = 0x1004
        assert trace_fingerprint(base) != trace_fingerprint(changed)

    def test_method_alias(self):
        trace = _sample_trace()
        assert trace.fingerprint() == trace_fingerprint(trace)


class TestHeader:
    def test_read_header_without_body(self):
        trace = _sample_trace()
        header = read_header(encode_trace(trace))
        assert header["version"] == RTRC_VERSION
        assert header["name"] == "sample"
        assert header["suite"] == "unit"
        assert header["instructions"] == len(trace)
        assert header["layout"]["page_bytes"] == trace.layout.page_bytes


class TestDecodeSpeed:
    def test_rtrc_decodes_faster_than_jsonl(self, tmp_path):
        """The worker-payload claim: binary decode beats the JSONL parse.

        Best-of-five on a 20k-instruction trace; the observed gap is ~2.5x,
        so the bare ``<`` comparison has a wide noise margin.
        """
        trace = generate_trace(benchmark_profile("gzip"), 20_000)
        rtrc = tmp_path / "t.rtrc"
        jsonl = tmp_path / "t.jsonl"
        dump_rtrc(trace, rtrc)
        trace.to_jsonl(jsonl)

        def best_of(action, repeats=5):
            times = []
            for _ in range(repeats):
                start = time.perf_counter()
                action()
                times.append(time.perf_counter() - start)
            return min(times)

        rtrc_seconds = best_of(lambda: load_rtrc(rtrc))
        jsonl_seconds = best_of(lambda: MemoryTrace.from_jsonl(jsonl))
        assert rtrc_seconds < jsonl_seconds, (
            f"rtrc decode ({rtrc_seconds * 1000:.1f} ms) should beat the "
            f"JSONL parse ({jsonl_seconds * 1000:.1f} ms)"
        )
