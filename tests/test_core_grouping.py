"""Tests for Page-Based Memory Access Grouping: requests, Input Buffer and
Arbitration Unit."""

import pytest

from repro.core.arbitration import ArbitrationUnit
from repro.core.input_buffer import InputBuffer
from repro.core.request import AccessKind, MemoryAccessRequest
from repro.core.way_table import WayTableEntry
from repro.memory.address import DEFAULT_LAYOUT
from repro.stats import StatCounters

layout = DEFAULT_LAYOUT


def load_request(page: int, line: int, offset: int = 0, cycle: int = 0, tag=None):
    return MemoryAccessRequest(
        kind=AccessKind.LOAD,
        virtual_address=layout.compose_line(page, line, offset),
        arrival_cycle=cycle,
        tag=tag,
    )


def mbe_request(page: int, line: int):
    return MemoryAccessRequest(
        kind=AccessKind.MBE,
        virtual_address=layout.compose_line(page, line),
        size=layout.line_bytes,
    )


class TestMemoryAccessRequest:
    def test_field_accessors(self):
        request = load_request(5, 9, 16)
        assert request.is_load and not request.is_store and not request.is_mbe
        assert request.virtual_page == 5
        assert request.line_in_page == 9
        assert request.bank_index == 9 % 4
        assert not request.translated

    def test_attach_translation(self):
        request = load_request(5, 9, 16)
        request.attach_translation(0x777)
        assert request.translated
        assert layout.page_id(request.physical_address) == 0x777
        assert layout.page_offset(request.physical_address) == layout.page_offset(
            request.virtual_address
        )

    def test_same_page_line_subblock_relations(self):
        a = load_request(5, 9, 0)
        b = load_request(5, 9, 8)
        c = load_request(5, 9, 40)
        d = load_request(5, 10, 0)
        assert a.same_page_as(b) and a.same_line_as(b) and a.same_subblock_pair_as(b)
        assert a.same_line_as(c) and not a.same_subblock_pair_as(c)
        assert a.same_page_as(d) and not a.same_line_as(d)

    def test_unique_request_ids(self):
        ids = {load_request(0, 0).request_id for _ in range(10)}
        assert len(ids) == 10


class TestInputBuffer:
    def test_groups_by_leader_page(self):
        buffer = InputBuffer()
        buffer.add_load(load_request(1, 0))
        buffer.add_load(load_request(2, 0))
        buffer.add_load(load_request(1, 5))
        group = buffer.select_group()
        assert group.virtual_page == 1
        assert len(group.loads) == 2

    def test_held_loads_have_priority_over_new(self):
        buffer = InputBuffer()
        buffer.add_load(load_request(1, 0))
        buffer.select_group()
        buffer.retire([])           # nothing serviced
        buffer.end_cycle()          # load from page 1 becomes "held"
        buffer.add_load(load_request(2, 0))
        group = buffer.select_group()
        assert group.virtual_page == 1

    def test_mbe_lowest_priority_but_joins_matching_group(self):
        buffer = InputBuffer()
        buffer.add_mbe(mbe_request(3, 0))
        buffer.add_load(load_request(3, 4))
        group = buffer.select_group()
        assert group.virtual_page == 3
        assert group.mbe is not None
        assert group.members[0].is_load  # the load is the leader

    def test_mbe_alone_forms_group(self):
        buffer = InputBuffer()
        buffer.add_mbe(mbe_request(9, 0))
        group = buffer.select_group()
        assert group.virtual_page == 9 and group.mbe is not None

    def test_retire_and_end_cycle(self):
        buffer = InputBuffer(held_capacity=2)
        first = load_request(1, 0)
        second = load_request(2, 0)
        buffer.add_load(first)
        buffer.add_load(second)
        group = buffer.select_group()
        buffer.retire(group.members)
        held = buffer.end_cycle()
        assert held == 1                       # the page-2 load is carried over
        assert buffer.held_loads[0] is second

    def test_back_pressure_when_held_storage_full(self):
        buffer = InputBuffer(held_capacity=1, new_loads_per_cycle=4)
        for page in range(4):
            buffer.add_load(load_request(page, 0))
        buffer.select_group()
        buffer.retire([])
        buffer.end_cycle()
        assert not buffer.can_accept_load()

    def test_single_mbe_slot(self):
        buffer = InputBuffer()
        buffer.add_mbe(mbe_request(1, 0))
        assert not buffer.can_accept_mbe()
        with pytest.raises(RuntimeError):
            buffer.add_mbe(mbe_request(2, 0))

    def test_add_load_type_checked(self):
        buffer = InputBuffer()
        with pytest.raises(ValueError):
            buffer.add_load(mbe_request(0, 0))
        with pytest.raises(ValueError):
            buffer.add_mbe(load_request(0, 0))

    def test_empty_buffer_selects_nothing(self):
        buffer = InputBuffer()
        assert buffer.select_group() is None
        assert buffer.empty

    def test_page_comparison_events_counted(self):
        stats = StatCounters()
        buffer = InputBuffer(stats=stats)
        buffer.add_load(load_request(1, 0))
        buffer.add_load(load_request(1, 1))
        buffer.add_load(load_request(2, 0))
        buffer.select_group()
        assert stats["input_buffer.page_compare"] == 2


class TestArbitrationUnit:
    def _group(self, *requests):
        buffer = InputBuffer(new_loads_per_cycle=8)
        for request in requests:
            if request.is_mbe:
                buffer.add_mbe(request)
            else:
                buffer.add_load(request)
        return buffer.select_group()

    def test_distributes_over_banks(self):
        arb = ArbitrationUnit()
        group = self._group(load_request(1, 0), load_request(1, 1), load_request(1, 2))
        result = arb.arbitrate(group)
        assert len(result.bank_requests) == 3
        assert {br.bank for br in result.bank_requests} == {0, 1, 2}
        assert len(result.serviced) == 3

    def test_bank_conflict_rejects_lower_priority(self):
        arb = ArbitrationUnit(merge_granularity="none")
        group = self._group(load_request(1, 0), load_request(1, 4))  # both bank 0
        result = arb.arbitrate(group)
        assert len(result.bank_requests) == 1
        assert len(result.rejected) == 1

    def test_same_line_loads_merge(self):
        arb = ArbitrationUnit()
        group = self._group(load_request(1, 0, 0), load_request(1, 0, 8))
        result = arb.arbitrate(group)
        assert len(result.bank_requests) == 1
        assert result.merged_pairs == 1
        assert len(result.serviced_loads) == 2

    def test_subblock_pair_granularity(self):
        arb = ArbitrationUnit(merge_granularity="subblock_pair")
        group = self._group(load_request(1, 0, 0), load_request(1, 0, 48))
        result = arb.arbitrate(group)
        # Same line but different sub-block pair: cannot merge, bank conflict.
        assert result.merged_pairs == 0
        assert len(result.rejected) == 1

    def test_line_granularity_merges_across_subblocks(self):
        arb = ArbitrationUnit(merge_granularity="line")
        group = self._group(load_request(1, 0, 0), load_request(1, 0, 48))
        result = arb.arbitrate(group)
        assert result.merged_pairs == 1

    def test_result_bus_limit(self):
        arb = ArbitrationUnit(result_buses=2, merge_granularity="none")
        group = self._group(*(load_request(1, line) for line in range(4)))
        result = arb.arbitrate(group)
        assert len(result.serviced_loads) == 2
        assert len(result.rejected) == 2

    def test_merge_window_limits_comparisons(self):
        arb = ArbitrationUnit(merge_window=1)
        group = self._group(
            load_request(1, 0, 0),
            load_request(1, 1, 0),
            load_request(1, 0, 8),  # same line as leader but outside window
        )
        result = arb.arbitrate(group)
        assert result.merged_pairs == 0

    def test_mbe_takes_bank_without_result_bus(self):
        arb = ArbitrationUnit(result_buses=4)
        group = self._group(
            load_request(1, 1), load_request(1, 2), load_request(1, 3),
            load_request(1, 5), mbe_request(1, 0),
        )
        result = arb.arbitrate(group)
        writes = [br for br in result.bank_requests if br.is_write]
        assert len(writes) == 1 and writes[0].bank == 0

    def test_mbe_bank_conflict_rejected(self):
        arb = ArbitrationUnit()
        group = self._group(load_request(1, 0), mbe_request(1, 4))  # both bank 0
        result = arb.arbitrate(group)
        assert group.mbe in result.rejected

    def test_way_hints_assigned_from_entry(self):
        arb = ArbitrationUnit()
        entry = WayTableEntry()
        entry.update(1, way=2)
        group = self._group(load_request(1, 1), load_request(1, 2))
        result = arb.arbitrate(group, way_entry=entry)
        hints = {br.primary.line_in_page: br.way_hint for br in result.bank_requests}
        assert hints[1] == 2
        assert hints[2] is None

    def test_merged_loads_share_way_hint(self):
        arb = ArbitrationUnit()
        entry = WayTableEntry()
        entry.update(1, way=3)
        group = self._group(load_request(1, 1, 0), load_request(1, 1, 8))
        result = arb.arbitrate(group, way_entry=entry)
        assert result.bank_requests[0].way_hint == 3
        assert all(req.way_hint == 3 for req in result.serviced_loads)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ArbitrationUnit(result_buses=0)
        with pytest.raises(ValueError):
            ArbitrationUnit(merge_window=-1)
        with pytest.raises(ValueError):
            ArbitrationUnit(merge_granularity="bogus")
