"""Tests for the command-line front end."""

from pathlib import Path

import pytest

from repro.cli import main
from repro.workloads.binfmt import load_rtrc
from repro.workloads.registry import clear_registry

DATA = Path(__file__).parent / "data"


@pytest.fixture(autouse=True)
def _clean_registry():
    clear_registry()
    yield
    clear_registry()


class TestCli:
    def test_list_prints_all_benchmarks(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "gzip" in output and "mcf" in output and "h263dec" in output

    def test_compare_runs_three_configurations(self, capsys):
        assert main(["compare", "gzip", "--instructions", "800", "--warmup", "0.2"]) == 0
        output = capsys.readouterr().out
        assert "Base1ldst" in output and "Base2ld1st" in output and "MALEC" in output
        assert "norm. time" in output

    def test_figure4_sweep(self, capsys):
        assert main(["figure4", "djpeg", "--instructions", "800", "--warmup", "0.2"]) == 0
        output = capsys.readouterr().out
        assert "MALEC_3cycleL1" in output and "geo. mean" in output

    def test_figure4_parallel_jobs(self, capsys):
        assert main(
            ["figure4", "djpeg", "gzip", "--instructions", "600", "--warmup", "0.2", "--jobs", "2"]
        ) == 0
        output = capsys.readouterr().out
        assert "geo. mean" in output

    def test_sweep_in_memory(self, capsys):
        assert main(
            ["sweep", "fig4-mini", "--instructions", "500", "--quiet"]
        ) == 0
        output = capsys.readouterr().out
        assert "15 cell(s) simulated" in output
        assert "geo. mean all (time)" in output

    def test_sweep_with_store_resumes(self, capsys, tmp_path):
        out = str(tmp_path / "camp")
        argv = [
            "sweep", "fig4-mini",
            "--benchmarks", "gzip", "djpeg",
            "--instructions", "500",
            "--out", out,
            "--quiet",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "10 cell(s) simulated, 0 resumed" in first
        assert "10 records" in first
        # Second invocation against the same directory skips every cell.
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "0 cell(s) simulated, 10 resumed" in second
        assert "geo. mean all (time)" in second

    def test_sweep_mixed_instruction_store_summarizes(self, capsys, tmp_path):
        # A directory holding records at another trace length must not break
        # the summary: the sweep filters to its own grid parameters.
        out = str(tmp_path / "camp")
        base = ["sweep", "fig4-mini", "--benchmarks", "gzip", "--out", out, "--quiet"]
        assert main(base + ["--instructions", "400"]) == 0
        capsys.readouterr()
        assert main(base + ["--instructions", "500"]) == 0
        output = capsys.readouterr().out
        assert "geo. mean all (time)" in output
        assert "10 records" in output  # both sweeps' cells persisted

    def test_sweep_unknown_preset_exits_2_with_valid_names(self, capsys):
        # No KeyError traceback: the CLI reports the valid presets and
        # returns the argparse usage-error code.
        assert main(["sweep", "not-a-preset"]) == 2
        err = capsys.readouterr().err
        assert "not-a-preset" in err
        for name in ("fig4", "fig4-mini", "sec6d"):
            assert name in err

    def test_sweep_invalid_flag_values_rejected(self):
        for argv in (
            ["sweep", "fig4-mini", "--jobs", "0"],
            ["sweep", "fig4-mini", "--instructions", "0"],
            ["sweep", "fig4-mini", "--warmup", "1.5"],
            ["figure4", "gzip", "--jobs", "-3"],
        ):
            with pytest.raises(SystemExit):
                main(argv)

    def test_dse_unknown_space_exits_2_with_valid_names(self, capsys):
        assert main(["dse", "not-a-space"]) == 2
        err = capsys.readouterr().err
        assert "not-a-space" in err
        assert "malec-mini" in err and "malec-sensitivity" in err

    def test_dse_unknown_objective_exits_2(self, capsys):
        assert main(
            ["dse", "malec-mini", "--objectives", "runtime,bogus", "--budget", "1"]
        ) == 2
        err = capsys.readouterr().err
        assert "bogus" in err and "edp" in err

    def test_dse_smoke_writes_frontier_csv(self, capsys, tmp_path):
        out = str(tmp_path / "dse")
        argv = [
            "dse", "malec-mini",
            "--strategy", "random",
            "--budget", "2",
            "--instructions", "300",
            "--benchmarks", "gzip", "streamwrite",
            "--jobs", "1",
            "--out", out,
            "--quiet",
        ]
        assert main(argv) == 0
        output = capsys.readouterr().out
        assert "Pareto frontier" in output
        csv_path = tmp_path / "dse" / "frontier.csv"
        lines = csv_path.read_text().splitlines()
        assert len(lines) >= 2  # header plus at least one frontier point
        assert "runtime" in lines[0] and "energy" in lines[0]
        # Re-running resumes every cell from the store and reproduces the
        # exact same artifact.
        before = csv_path.read_text()
        assert main(argv) == 0
        resumed = capsys.readouterr().out
        assert "cells: 0 simulated" in resumed
        assert csv_path.read_text() == before

    def test_dse_halving_in_memory(self, capsys):
        argv = [
            "dse", "malec-mini",
            "--strategy", "halving",
            "--budget", "4",
            "--instructions", "400",
            "--benchmarks", "gzip",
            "--jobs", "1",
            "--quiet",
        ]
        assert main(argv) == 0
        output = capsys.readouterr().out
        assert "strategy halving" in output
        assert "Pareto frontier" in output

    def test_list_includes_synthetic_profiles(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "ptrchase" in output and "streamwrite" in output
        assert "SYN" in output

    def test_locality_command(self, capsys):
        assert main(["locality", "gzip", "djpeg", "--instructions", "800"]) == 0
        output = capsys.readouterr().out
        assert "same line" in output and "djpeg" in output

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            main(["compare", "not-a-benchmark"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            main([])


class TestIngestCli:
    def test_convert_lackey_to_rtrc(self, capsys, tmp_path):
        out = tmp_path / "sample.rtrc"
        assert main(["ingest", "convert", str(DATA / "sample.lackey"), "-o", str(out)]) == 0
        stdout = capsys.readouterr().out
        assert "wrote" in stdout and "fingerprint" in stdout
        assert len(load_rtrc(out)) == 37

    def test_convert_din_to_rtrc(self, capsys, tmp_path):
        out = tmp_path / "sample.rtrc"
        assert main(["ingest", "convert", str(DATA / "sample.din"), "-o", str(out)]) == 0
        assert len(load_rtrc(out)) == 24

    def test_convert_applies_transforms_in_order(self, tmp_path, capsys):
        out = tmp_path / "out.rtrc"
        argv = [
            "ingest", "convert", str(DATA / "sample.din"),
            "-o", str(out),
            "--window", "0:20", "--skip", "4", "--stride", "2",
        ]
        assert main(argv) == 0
        assert len(load_rtrc(out)) == 8  # (20 - 4) every 2nd

    def test_convert_to_jsonl_output(self, tmp_path, capsys):
        out = tmp_path / "out.jsonl.gz"
        assert main(["ingest", "convert", str(DATA / "sample.csv"), "-o", str(out)]) == 0
        from repro.workloads.trace import MemoryTrace

        assert len(MemoryTrace.from_jsonl(out)) == 10

    def test_convert_malformed_input_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.lackey"
        bad.write_text(" L 10,4\nnot a record\n")
        assert main(["ingest", "convert", str(bad)]) == 2
        err = capsys.readouterr().err
        assert "line 2" in err and "bad.lackey" in err

    def test_convert_malformed_window_exits_2(self, tmp_path, capsys):
        argv = [
            "ingest", "convert", str(DATA / "sample.din"),
            "-o", str(tmp_path / "out.rtrc"), "--window", "abc:def",
        ]
        assert main(argv) == 2
        assert "START:STOP" in capsys.readouterr().err

    def test_convert_missing_input_exits_2(self, tmp_path, capsys):
        assert main(["ingest", "convert", str(tmp_path / "nope.din")]) == 2
        assert "repro:" in capsys.readouterr().err

    def test_inspect(self, capsys):
        assert main(["ingest", "inspect", str(DATA / "sample.lackey"), str(DATA / "sample.din")]) == 0
        stdout = capsys.readouterr().out
        assert stdout.count("fingerprint") == 2 and "37 instr" in stdout

    def test_interleave(self, capsys, tmp_path):
        out = tmp_path / "mix.rtrc"
        argv = [
            "ingest", "interleave",
            str(DATA / "sample.lackey"), str(DATA / "sample.din"),
            "-o", str(out), "--granularity", "8", "--name", "mixed",
        ]
        assert main(argv) == 0
        merged = load_rtrc(out)
        assert merged.name == "mixed"
        assert len(merged) == 37 + 24


class TestTraceFileSweeps:
    def test_sweep_runs_a_trace_file_end_to_end(self, capsys, tmp_path):
        rtrc = tmp_path / "app.rtrc"
        assert main(["ingest", "convert", str(DATA / "sample.lackey"), "-o", str(rtrc)]) == 0
        capsys.readouterr()
        out = tmp_path / "camp"
        argv = [
            "sweep", "fig4-mini",
            "--trace-file", str(rtrc),
            "--out", str(out), "--quiet",
        ]
        assert main(argv) == 0
        stdout = capsys.readouterr().out
        assert "5 cell(s) simulated" in stdout  # the trace replaces the grid
        # Re-running resumes every cell from the store via the content hash.
        clear_registry()
        assert main(argv) == 0
        assert "0 cell(s) simulated, 5 resumed" in capsys.readouterr().out

    def test_sweep_trace_file_alongside_benchmarks(self, capsys, tmp_path):
        argv = [
            "sweep", "fig4-mini",
            "--benchmarks", "gzip",
            "--trace-file", str(DATA / "sample.din"),
            "--instructions", "400", "--quiet",
        ]
        assert main(argv) == 0
        assert "10 cell(s) simulated" in capsys.readouterr().out

    def test_figure4_with_trace_file(self, capsys):
        argv = [
            "figure4", "--trace-file", str(DATA / "sample.lackey"),
            "--instructions", "400", "--warmup", "0.1",
        ]
        assert main(argv) == 0
        stdout = capsys.readouterr().out
        assert "sample@" in stdout and "geo. mean" in stdout

    def test_figure4_without_workloads_exits_2(self, capsys):
        assert main(["figure4"]) == 2
        assert "benchmark names and/or --trace-file" in capsys.readouterr().err

    def test_dse_with_trace_file(self, capsys, tmp_path):
        argv = [
            "dse", "malec-mini",
            "--strategy", "random", "--budget", "2",
            "--instructions", "200",
            "--trace-file", str(DATA / "sample.din"),
            "--quiet",
        ]
        assert main(argv) == 0
        assert "Pareto frontier" in capsys.readouterr().out

    def test_missing_trace_file_exits_2(self, capsys, tmp_path):
        argv = ["sweep", "fig4-mini", "--trace-file", str(tmp_path / "nope.rtrc")]
        assert main(argv) == 2
        assert "repro:" in capsys.readouterr().err
