"""Tests for the command-line front end."""

import pytest

from repro.cli import main


class TestCli:
    def test_list_prints_all_benchmarks(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "gzip" in output and "mcf" in output and "h263dec" in output

    def test_compare_runs_three_configurations(self, capsys):
        assert main(["compare", "gzip", "--instructions", "800", "--warmup", "0.2"]) == 0
        output = capsys.readouterr().out
        assert "Base1ldst" in output and "Base2ld1st" in output and "MALEC" in output
        assert "norm. time" in output

    def test_figure4_sweep(self, capsys):
        assert main(["figure4", "djpeg", "--instructions", "800", "--warmup", "0.2"]) == 0
        output = capsys.readouterr().out
        assert "MALEC_3cycleL1" in output and "geo. mean" in output

    def test_locality_command(self, capsys):
        assert main(["locality", "gzip", "djpeg", "--instructions", "800"]) == 0
        output = capsys.readouterr().out
        assert "same line" in output and "djpeg" in output

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            main(["compare", "not-a-benchmark"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            main([])
