"""Tests for the command-line front end."""

import pytest

from repro.cli import main


class TestCli:
    def test_list_prints_all_benchmarks(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "gzip" in output and "mcf" in output and "h263dec" in output

    def test_compare_runs_three_configurations(self, capsys):
        assert main(["compare", "gzip", "--instructions", "800", "--warmup", "0.2"]) == 0
        output = capsys.readouterr().out
        assert "Base1ldst" in output and "Base2ld1st" in output and "MALEC" in output
        assert "norm. time" in output

    def test_figure4_sweep(self, capsys):
        assert main(["figure4", "djpeg", "--instructions", "800", "--warmup", "0.2"]) == 0
        output = capsys.readouterr().out
        assert "MALEC_3cycleL1" in output and "geo. mean" in output

    def test_figure4_parallel_jobs(self, capsys):
        assert main(
            ["figure4", "djpeg", "gzip", "--instructions", "600", "--warmup", "0.2", "--jobs", "2"]
        ) == 0
        output = capsys.readouterr().out
        assert "geo. mean" in output

    def test_sweep_in_memory(self, capsys):
        assert main(
            ["sweep", "fig4-mini", "--instructions", "500", "--quiet"]
        ) == 0
        output = capsys.readouterr().out
        assert "15 cell(s) simulated" in output
        assert "geo. mean all (time)" in output

    def test_sweep_with_store_resumes(self, capsys, tmp_path):
        out = str(tmp_path / "camp")
        argv = [
            "sweep", "fig4-mini",
            "--benchmarks", "gzip", "djpeg",
            "--instructions", "500",
            "--out", out,
            "--quiet",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "10 cell(s) simulated, 0 resumed" in first
        assert "10 records" in first
        # Second invocation against the same directory skips every cell.
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "0 cell(s) simulated, 10 resumed" in second
        assert "geo. mean all (time)" in second

    def test_sweep_mixed_instruction_store_summarizes(self, capsys, tmp_path):
        # A directory holding records at another trace length must not break
        # the summary: the sweep filters to its own grid parameters.
        out = str(tmp_path / "camp")
        base = ["sweep", "fig4-mini", "--benchmarks", "gzip", "--out", out, "--quiet"]
        assert main(base + ["--instructions", "400"]) == 0
        capsys.readouterr()
        assert main(base + ["--instructions", "500"]) == 0
        output = capsys.readouterr().out
        assert "geo. mean all (time)" in output
        assert "10 records" in output  # both sweeps' cells persisted

    def test_sweep_unknown_preset_exits_2_with_valid_names(self, capsys):
        # No KeyError traceback: the CLI reports the valid presets and
        # returns the argparse usage-error code.
        assert main(["sweep", "not-a-preset"]) == 2
        err = capsys.readouterr().err
        assert "not-a-preset" in err
        for name in ("fig4", "fig4-mini", "sec6d"):
            assert name in err

    def test_sweep_invalid_flag_values_rejected(self):
        for argv in (
            ["sweep", "fig4-mini", "--jobs", "0"],
            ["sweep", "fig4-mini", "--instructions", "0"],
            ["sweep", "fig4-mini", "--warmup", "1.5"],
            ["figure4", "gzip", "--jobs", "-3"],
        ):
            with pytest.raises(SystemExit):
                main(argv)

    def test_dse_unknown_space_exits_2_with_valid_names(self, capsys):
        assert main(["dse", "not-a-space"]) == 2
        err = capsys.readouterr().err
        assert "not-a-space" in err
        assert "malec-mini" in err and "malec-sensitivity" in err

    def test_dse_unknown_objective_exits_2(self, capsys):
        assert main(
            ["dse", "malec-mini", "--objectives", "runtime,bogus", "--budget", "1"]
        ) == 2
        err = capsys.readouterr().err
        assert "bogus" in err and "edp" in err

    def test_dse_smoke_writes_frontier_csv(self, capsys, tmp_path):
        out = str(tmp_path / "dse")
        argv = [
            "dse", "malec-mini",
            "--strategy", "random",
            "--budget", "2",
            "--instructions", "300",
            "--benchmarks", "gzip", "streamwrite",
            "--jobs", "1",
            "--out", out,
            "--quiet",
        ]
        assert main(argv) == 0
        output = capsys.readouterr().out
        assert "Pareto frontier" in output
        csv_path = tmp_path / "dse" / "frontier.csv"
        lines = csv_path.read_text().splitlines()
        assert len(lines) >= 2  # header plus at least one frontier point
        assert "runtime" in lines[0] and "energy" in lines[0]
        # Re-running resumes every cell from the store and reproduces the
        # exact same artifact.
        before = csv_path.read_text()
        assert main(argv) == 0
        resumed = capsys.readouterr().out
        assert "cells: 0 simulated" in resumed
        assert csv_path.read_text() == before

    def test_dse_halving_in_memory(self, capsys):
        argv = [
            "dse", "malec-mini",
            "--strategy", "halving",
            "--budget", "4",
            "--instructions", "400",
            "--benchmarks", "gzip",
            "--jobs", "1",
            "--quiet",
        ]
        assert main(argv) == 0
        output = capsys.readouterr().out
        assert "strategy halving" in output
        assert "Pareto frontier" in output

    def test_list_includes_synthetic_profiles(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "ptrchase" in output and "streamwrite" in output
        assert "SYN" in output

    def test_locality_command(self, capsys):
        assert main(["locality", "gzip", "djpeg", "--instructions", "800"]) == 0
        output = capsys.readouterr().out
        assert "same line" in output and "djpeg" in output

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            main(["compare", "not-a-benchmark"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            main([])
