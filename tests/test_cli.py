"""Tests for the command-line front end."""

import pytest

from repro.cli import main


class TestCli:
    def test_list_prints_all_benchmarks(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "gzip" in output and "mcf" in output and "h263dec" in output

    def test_compare_runs_three_configurations(self, capsys):
        assert main(["compare", "gzip", "--instructions", "800", "--warmup", "0.2"]) == 0
        output = capsys.readouterr().out
        assert "Base1ldst" in output and "Base2ld1st" in output and "MALEC" in output
        assert "norm. time" in output

    def test_figure4_sweep(self, capsys):
        assert main(["figure4", "djpeg", "--instructions", "800", "--warmup", "0.2"]) == 0
        output = capsys.readouterr().out
        assert "MALEC_3cycleL1" in output and "geo. mean" in output

    def test_figure4_parallel_jobs(self, capsys):
        assert main(
            ["figure4", "djpeg", "gzip", "--instructions", "600", "--warmup", "0.2", "--jobs", "2"]
        ) == 0
        output = capsys.readouterr().out
        assert "geo. mean" in output

    def test_sweep_in_memory(self, capsys):
        assert main(
            ["sweep", "fig4-mini", "--instructions", "500", "--quiet"]
        ) == 0
        output = capsys.readouterr().out
        assert "15 cell(s) simulated" in output
        assert "geo. mean all (time)" in output

    def test_sweep_with_store_resumes(self, capsys, tmp_path):
        out = str(tmp_path / "camp")
        argv = [
            "sweep", "fig4-mini",
            "--benchmarks", "gzip", "djpeg",
            "--instructions", "500",
            "--out", out,
            "--quiet",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "10 cell(s) simulated, 0 resumed" in first
        assert "10 records" in first
        # Second invocation against the same directory skips every cell.
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "0 cell(s) simulated, 10 resumed" in second
        assert "geo. mean all (time)" in second

    def test_sweep_mixed_instruction_store_summarizes(self, capsys, tmp_path):
        # A directory holding records at another trace length must not break
        # the summary: the sweep filters to its own grid parameters.
        out = str(tmp_path / "camp")
        base = ["sweep", "fig4-mini", "--benchmarks", "gzip", "--out", out, "--quiet"]
        assert main(base + ["--instructions", "400"]) == 0
        capsys.readouterr()
        assert main(base + ["--instructions", "500"]) == 0
        output = capsys.readouterr().out
        assert "geo. mean all (time)" in output
        assert "10 records" in output  # both sweeps' cells persisted

    def test_sweep_unknown_preset_rejected(self):
        with pytest.raises(SystemExit):
            main(["sweep", "not-a-preset"])

    def test_sweep_invalid_flag_values_rejected(self):
        for argv in (
            ["sweep", "fig4-mini", "--jobs", "0"],
            ["sweep", "fig4-mini", "--instructions", "0"],
            ["sweep", "fig4-mini", "--warmup", "1.5"],
            ["figure4", "gzip", "--jobs", "-3"],
        ):
            with pytest.raises(SystemExit):
                main(argv)

    def test_locality_command(self, capsys):
        assert main(["locality", "gzip", "djpeg", "--instructions", "800"]) == 0
        output = capsys.readouterr().out
        assert "same line" in output and "djpeg" in output

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            main(["compare", "not-a-benchmark"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            main([])
