"""Tests for the campaign subsystem: spec hashing, store, executor, aggregate."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.campaign.aggregate import results_from_store, summarize_store
from repro.campaign.executor import ParallelExecutor
from repro.campaign.spec import (
    CampaignCell,
    CampaignSpec,
    campaign_preset,
    cell_key,
    config_from_dict,
    config_to_dict,
)
from repro.campaign.store import ResultStore, result_from_dict, result_to_dict
from repro.sim.config import MalecParameters, SimulationConfig
from repro.sim.simulator import run_configuration
from repro.workloads.suites import benchmark_profile
from repro.workloads.synthetic import generate_trace

INSTRUCTIONS = 600
WARMUP = 0.25
BENCHMARKS = ("gzip", "swim", "djpeg")
CONFIGS = (SimulationConfig.base_1ldst(), SimulationConfig.malec())


def small_spec(**overrides) -> CampaignSpec:
    defaults = dict(
        name="test",
        configurations=CONFIGS,
        benchmarks=BENCHMARKS,
        instructions=INSTRUCTIONS,
        warmup_fraction=WARMUP,
    )
    defaults.update(overrides)
    return CampaignSpec(**defaults)


def a_cell(**overrides) -> CampaignCell:
    defaults = dict(
        benchmark="gzip",
        config=CONFIGS[0],
        instructions=INSTRUCTIONS,
        warmup_fraction=WARMUP,
    )
    defaults.update(overrides)
    return CampaignCell(**defaults)


def assert_results_equal(left, right) -> None:
    assert left.config_name == right.config_name
    assert left.cycles == right.cycles
    assert left.instructions == right.instructions
    assert left.loads == right.loads
    assert left.stores == right.stores
    assert left.stats == right.stats
    assert left.energy.cycles == right.energy.cycles
    assert set(left.energy.structures) == set(right.energy.structures)
    for name, item in left.energy.structures.items():
        other = right.energy.structures[name]
        assert item.dynamic_pj == pytest.approx(other.dynamic_pj)
        assert item.leakage_pj == pytest.approx(other.leakage_pj)


class TestSpec:
    def test_cells_cover_the_full_grid(self):
        cells = small_spec().cells()
        assert len(cells) == len(BENCHMARKS) * len(CONFIGS)
        assert len({cell.key() for cell in cells}) == len(cells)

    def test_config_dict_round_trip(self):
        config = SimulationConfig.malec(
            l1_hit_latency=3,
            malec_options=MalecParameters(result_buses=2, way_determination="wdu"),
        )
        assert config_from_dict(config_to_dict(config)) == config

    def test_cell_key_is_stable_across_instances(self):
        assert cell_key(a_cell()) == cell_key(a_cell())

    def test_cell_key_tracks_every_identity_field(self):
        base = a_cell()
        assert cell_key(a_cell(benchmark="swim")) != cell_key(base)
        assert cell_key(a_cell(instructions=INSTRUCTIONS + 1)) != cell_key(base)
        assert cell_key(a_cell(warmup_fraction=0.3)) != cell_key(base)
        assert cell_key(a_cell(seed=1)) != cell_key(base)
        renamed = replace(CONFIGS[0], name="other")
        assert cell_key(a_cell(config=renamed)) != cell_key(base)
        retuned = replace(CONFIGS[1], malec_options=MalecParameters(result_buses=1))
        assert cell_key(a_cell(config=retuned)) != cell_key(a_cell(config=CONFIGS[1]))

    def test_duplicate_configuration_names_rejected(self):
        with pytest.raises(ValueError):
            small_spec(configurations=(CONFIGS[0], CONFIGS[0]))

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(KeyError):
            small_spec(benchmarks=("gzip", "not-a-benchmark"))

    def test_presets_build(self):
        for name in ("fig4", "fig4-mini", "sec6d"):
            spec = campaign_preset(name)
            assert spec.cells()
        assert len(campaign_preset("fig4").benchmarks) == 38
        with pytest.raises(KeyError):
            campaign_preset("nope")


class TestStore:
    def test_round_trip_preserves_the_result(self, tmp_path):
        cell = a_cell()
        trace = generate_trace(
            benchmark_profile(cell.benchmark), INSTRUCTIONS, seed=cell.trace_seed()
        )
        result = run_configuration(cell.config, trace, warmup_fraction=WARMUP)
        restored = result_from_dict(result_to_dict(result))
        assert_results_equal(result, restored)

        store = ResultStore(tmp_path / "camp")
        assert not store.contains(cell)
        store.put(cell, result)
        assert store.contains(cell)
        assert_results_equal(store.get(cell), result)
        assert len(store) == 1

    def test_get_missing_cell_returns_none(self, tmp_path):
        assert ResultStore(tmp_path).get(a_cell()) is None

    def test_records_carry_full_provenance(self, tmp_path):
        cell = a_cell(benchmark="djpeg", config=CONFIGS[1])
        trace = generate_trace(
            benchmark_profile("djpeg"), INSTRUCTIONS, seed=cell.trace_seed()
        )
        store = ResultStore(tmp_path)
        store.put(cell, run_configuration(cell.config, trace, warmup_fraction=WARMUP))
        (record,) = list(store.records())
        assert record["benchmark"] == "djpeg"
        assert record["suite"] == "MB2"
        assert record["config_name"] == "MALEC"
        assert config_from_dict(record["config"]) == CONFIGS[1]
        assert record["key"] == cell.key()


class TestExecutor:
    def test_serial_sweep_writes_one_record_per_cell(self, tmp_path):
        store = ResultStore(tmp_path / "camp")
        executor = ParallelExecutor(jobs=1, store=store)
        results = executor.run(small_spec())
        assert len(executor.completed_cells) == len(BENCHMARKS) * len(CONFIGS)
        assert not executor.skipped_cells
        assert len(store) == len(BENCHMARKS) * len(CONFIGS)
        assert store.manifest()["name"] == "test"
        assert results.configurations == [config.name for config in CONFIGS]

    def test_resume_skips_completed_cells(self, tmp_path):
        store = ResultStore(tmp_path / "camp")
        spec = small_spec()
        first = ParallelExecutor(jobs=1, store=store)
        baseline = first.run(spec)

        events = []
        second = ParallelExecutor(
            jobs=1, store=store, progress=lambda e, c, d, t: events.append(e)
        )
        resumed = second.run(spec)
        assert not second.completed_cells
        assert len(second.skipped_cells) == len(spec.cells())
        assert events == ["skipped"] * len(spec.cells())
        for benchmark in BENCHMARKS:
            for config in CONFIGS:
                assert_results_equal(
                    resumed.run_for(benchmark).results[config.name],
                    baseline.run_for(benchmark).results[config.name],
                )

    def test_partial_store_runs_only_missing_cells(self, tmp_path):
        store = ResultStore(tmp_path / "camp")
        spec = small_spec()
        cells = spec.cells()
        seeded = ParallelExecutor(jobs=1, store=store)
        # Pre-compute only the first benchmark's cells.
        mini = small_spec(benchmarks=BENCHMARKS[:1])
        seeded.run(mini)

        executor = ParallelExecutor(jobs=1, store=store)
        executor.run(spec)
        assert len(executor.skipped_cells) == len(CONFIGS)
        assert len(executor.completed_cells) == len(cells) - len(CONFIGS)

    def test_parallel_results_equal_serial(self, tmp_path):
        spec = small_spec()
        serial = ParallelExecutor(jobs=1).run(spec)
        executor = ParallelExecutor(jobs=2, store=ResultStore(tmp_path / "par"))
        parallel = executor.run(spec)
        if not executor.used_pool:
            pytest.skip("process pool unavailable on this platform")
        for benchmark in BENCHMARKS:
            for config in CONFIGS:
                assert_results_equal(
                    parallel.run_for(benchmark).results[config.name],
                    serial.run_for(benchmark).results[config.name],
                )

    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError):
            ParallelExecutor(jobs=0)


class TestAggregate:
    def test_results_rebuilt_from_store_match_the_sweep(self, tmp_path):
        store = ResultStore(tmp_path / "camp")
        spec = small_spec()
        live = ParallelExecutor(jobs=1, store=store).run(spec)
        rebuilt = results_from_store(store)
        assert rebuilt.configurations == live.configurations
        assert [run.benchmark for run in rebuilt.runs] == [
            run.benchmark for run in live.runs
        ]
        base = CONFIGS[0].name
        assert rebuilt.geomean_normalized_cycles(base) == pytest.approx(
            live.geomean_normalized_cycles(base)
        )
        assert rebuilt.geomean_normalized_energy(base) == pytest.approx(
            live.geomean_normalized_energy(base)
        )

    def test_summarize_store_reports_geomeans(self, tmp_path):
        store = ResultStore(tmp_path / "camp")
        ParallelExecutor(jobs=1, store=store).run(small_spec())
        text = summarize_store(store)
        assert "geo. mean all (time)" in text
        assert "Base1ldst" in text and "MALEC" in text

    def test_ambiguous_store_raises(self, tmp_path):
        store = ResultStore(tmp_path / "camp")
        ParallelExecutor(jobs=1, store=store).run(small_spec(benchmarks=("gzip",)))
        ParallelExecutor(jobs=1, store=store).run(
            small_spec(benchmarks=("gzip",), instructions=INSTRUCTIONS + 100)
        )
        with pytest.raises(ValueError):
            results_from_store(store)
        # Filtering by trace length disambiguates.
        assert results_from_store(store, instructions=INSTRUCTIONS).runs


class TestRunnerIntegration:
    def test_experiment_runner_delegates_to_the_executor(self, tmp_path):
        from repro.analysis.experiments import ExperimentRunner

        store = ResultStore(tmp_path / "camp")
        runner = ExperimentRunner(
            instructions=INSTRUCTIONS, benchmarks=list(BENCHMARKS), warmup_fraction=WARMUP
        )
        results = runner.run(list(CONFIGS), store=store)
        assert len(store) == len(BENCHMARKS) * len(CONFIGS)
        rebuilt = results_from_store(store)
        base = CONFIGS[0].name
        assert rebuilt.geomean_normalized_cycles(base) == pytest.approx(
            results.geomean_normalized_cycles(base)
        )

    def test_run_for_uses_index_and_raises_for_unknown(self):
        from repro.analysis.experiments import ExperimentRunner

        runner = ExperimentRunner(
            instructions=INSTRUCTIONS, benchmarks=list(BENCHMARKS), warmup_fraction=WARMUP
        )
        results = runner.run([CONFIGS[0]])
        assert results.run_for("swim").benchmark == "swim"
        # Repeated lookups hit the cached index.
        assert results.run_for("swim") is results.run_for("swim")
        with pytest.raises(KeyError):
            results.run_for("not-a-benchmark")
