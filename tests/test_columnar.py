"""Property tests for the zero-copy columnar ``.rtrc`` view.

The structural guarantees the columnar frontend (PR 7) rests on:

* **round-trip** — lifting ``.rtrc`` bytes into columns and materializing
  them back yields exactly the instruction stream the object decoder sees,
  and ``to_bytes`` reproduces the input buffer bit-for-bit;
* **fingerprint invariance** — the columnar ``fingerprint()`` equals the
  object path's ``trace_fingerprint`` (campaign cell keys must not care
  which view registered a trace), and renaming a trace never changes it;
* **validation** — truncated/oversized bodies, unknown kind codes, a
  dependency pool inconsistent with the per-record ``ndeps`` counts, zero
  dependency distances and zero-size memory records are all rejected with
  a :class:`~repro.workloads.binfmt.TraceFormatError` naming the offender;
* **bounds** — dependency distances reaching before the start of the trace
  are dropped from producer tuples exactly like the object path drops them.

Each property is a plain checker driven by ``hypothesis`` when installed
and by a seeded ``random`` sweep otherwise (the pattern of
``tests/test_property_invariants.py``), so minimal environments keep the
coverage.
"""

from __future__ import annotations

import random

import pytest

from repro.cpu.instruction import Instruction, InstructionKind, build_pipeline_arrays
from repro.workloads.binfmt import (
    TraceFormatError,
    decode_trace,
    dump_rtrc,
    encode_trace,
    read_header,
    trace_fingerprint,
)
from repro.workloads.columnar import (
    FRONTEND_ENV,
    FRONTENDS,
    ColumnarTrace,
    resolve_frontend,
)
from repro.workloads.trace import MemoryTrace

try:  # pragma: no cover - which branch runs depends on the environment
    from hypothesis import HealthCheck, given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover
    HAVE_HYPOTHESIS = False

#: cases per property in the stdlib-random fallback sweep
FALLBACK_CASES = 25

#: byte offset of the record section for an empty name/suite (prelude only)
_PRELUDE_SIZE = 56


def fallback_seeds():
    """Deterministic seeds for the no-hypothesis sweep."""
    return pytest.mark.parametrize("seed", range(FALLBACK_CASES))


def random_trace(seed: int, max_len: int = 60) -> MemoryTrace:
    """A random but well-formed trace: mixed kinds, deps, odd sizes."""
    rng = random.Random(seed)
    instructions = []
    for seq in range(rng.randint(1, max_len)):
        roll = rng.random()
        deps = ()
        if seq and rng.random() < 0.4:
            deps = tuple(
                rng.randint(1, seq) for _ in range(rng.randint(1, min(3, seq)))
            )
        if roll < 0.4:
            instructions.append(Instruction(kind=InstructionKind.COMPUTE, deps=deps))
        else:
            kind = InstructionKind.LOAD if roll < 0.75 else InstructionKind.STORE
            instructions.append(
                Instruction(
                    kind=kind,
                    address=rng.randrange(0, 1 << 32, 2),
                    size=rng.choice((1, 2, 4, 8, 16)),
                    deps=deps,
                )
            )
    return MemoryTrace(
        name=f"prop{seed}", instructions=instructions, suite="PROP"
    )


def record_offset(payload: bytes, index: int) -> int:
    """Byte offset of record ``index`` inside ``payload``."""
    return read_header(payload)["body_offset"] + 12 * index


# ----------------------------------------------------------------------
# Property checkers (shared by both drivers)
# ----------------------------------------------------------------------
def check_round_trip(seed: int) -> None:
    """Columns -> instructions must equal the object decoder, bytes and all."""
    trace = random_trace(seed)
    payload = encode_trace(trace)
    view = ColumnarTrace.from_rtrc_bytes(payload)
    oracle = decode_trace(payload)
    assert len(view) == len(oracle)
    assert view.name == oracle.name and view.suite == oracle.suite
    assert view.layout == oracle.layout
    for mine, theirs in zip(view.instructions(), oracle.instructions):
        assert mine.kind is theirs.kind
        assert mine.address == theirs.address
        assert mine.size == theirs.size
        assert mine.deps == theirs.deps
        assert mine.seq == theirs.seq
    assert view.to_bytes() == payload
    assert encode_trace(view.materialize()) == payload
    assert view.load_count == len(oracle.loads)
    assert view.store_count == len(oracle.stores)


def check_fingerprint_invariance(seed: int) -> None:
    """Columnar and object hashes agree; names don't participate."""
    trace = random_trace(seed)
    view = trace.columnar()
    assert view.fingerprint() == trace_fingerprint(trace)
    renamed = MemoryTrace(
        name="other", instructions=trace.instructions, suite="ELSEWHERE"
    )
    assert renamed.columnar().fingerprint() == view.fingerprint()
    assert ColumnarTrace.from_rtrc_bytes(encode_trace(trace)).fingerprint() == (
        view.fingerprint()
    )


def check_truncation_rejected(seed: int) -> None:
    """Any strict prefix or suffix-extended buffer must be rejected."""
    rng = random.Random(seed)
    payload = encode_trace(random_trace(seed))
    for cut in sorted({rng.randrange(len(payload)) for _ in range(6)} | {0}):
        with pytest.raises(TraceFormatError):
            ColumnarTrace.from_rtrc_bytes(payload[:cut])
    with pytest.raises(TraceFormatError, match="truncated or oversized"):
        ColumnarTrace.from_rtrc_bytes(payload + b"\x00" * rng.randint(1, 8))


def check_corrupt_kind_rejected(seed: int) -> None:
    """A kind byte outside 0/1/2 is named by record index."""
    rng = random.Random(seed)
    trace = random_trace(seed)
    payload = bytearray(encode_trace(trace))
    index = rng.randrange(len(trace))
    payload[record_offset(bytes(payload), index)] = rng.randint(3, 255)
    with pytest.raises(TraceFormatError, match=f"kind code .* \\(record {index}\\)"):
        ColumnarTrace.from_rtrc_bytes(bytes(payload))


def check_inconsistent_deps_pool_rejected(seed: int) -> None:
    """ndeps bytes must sum to the pool length exactly."""
    trace = random_trace(seed)
    payload = bytearray(encode_trace(trace))
    index = random.Random(seed).randrange(len(trace))
    offset = record_offset(bytes(payload), index) + 1
    payload[offset] += 1  # claim one more pool entry than the pool holds
    with pytest.raises(TraceFormatError, match="inconsistent .rtrc dependency pool"):
        ColumnarTrace.from_rtrc_bytes(bytes(payload))


def check_zero_dep_distance_rejected(seed: int) -> None:
    """A zero distance in the pool is corrupt and is named by entry index."""
    trace = random_trace(seed)
    view = trace.columnar()
    pool_len = len(view.deps_pool)
    if not pool_len:
        return  # nothing to corrupt; another seed covers this
    payload = bytearray(encode_trace(trace))
    entry = random.Random(seed).randrange(pool_len)
    start = len(payload) - 4 * (pool_len - entry)
    payload[start : start + 4] = b"\x00\x00\x00\x00"
    with pytest.raises(TraceFormatError, match=f"entry {entry} is zero"):
        ColumnarTrace.from_rtrc_bytes(bytes(payload))


def check_zero_size_memory_rejected(seed: int) -> None:
    """A load/store with size 0 is corrupt; computes may carry any size."""
    trace = random_trace(seed)
    memory_indices = [i for i, ins in enumerate(trace) if ins.is_memory]
    if not memory_indices:
        return
    payload = bytearray(encode_trace(trace))
    index = random.Random(seed).choice(memory_indices)
    offset = record_offset(bytes(payload), index) + 2
    payload[offset : offset + 2] = b"\x00\x00"
    with pytest.raises(TraceFormatError, match=f"record {index}.*zero size"):
        ColumnarTrace.from_rtrc_bytes(bytes(payload))


def check_pipeline_arrays_match_object_path(seed: int) -> None:
    """Batched interpretation equals build_pipeline_arrays, bit for bit."""
    trace = random_trace(seed)
    view = trace.columnar()
    kinds, addresses, sizes, producers = view.pipeline_arrays()
    o_kinds, o_addresses, o_sizes, o_producers = build_pipeline_arrays(
        trace.instructions, len(trace)
    )
    assert bytes(o_kinds) == bytes(kinds)
    assert list(o_addresses) == list(addresses)
    assert list(o_sizes) == list(sizes)
    assert list(o_producers) == list(producers)


def check_out_of_range_deps_dropped(seed: int) -> None:
    """Distances reaching before seq 0 never become producers."""
    rng = random.Random(seed)
    instructions = [
        Instruction(kind=InstructionKind.LOAD, address=64 * i, size=4)
        for i in range(6)
    ]
    # Every load depends on something far before the window start.
    for seq, instruction in enumerate(instructions):
        instructions[seq] = Instruction(
            kind=instruction.kind,
            address=instruction.address,
            size=instruction.size,
            deps=(seq + rng.randint(1, 1000),),
        )
    view = MemoryTrace(name="oob", instructions=instructions).columnar()
    _, _, _, producers = view.pipeline_arrays()
    assert all(p == () for p in producers)
    # The distances themselves still round-trip (they are data, not indices).
    assert [ins.deps for ins in view.instructions()] == [
        ins.deps for ins in instructions
    ]


def check_head_and_slice_consistency(seed: int) -> None:
    """head()/run_slice() agree with the object trace's own slicing."""
    rng = random.Random(seed)
    trace = random_trace(seed)
    view = trace.columnar()
    count = rng.randint(0, len(trace))
    head = view.head(count)
    assert len(head) == count
    assert head.to_bytes() == encode_trace(trace.head(count))
    start = rng.randint(0, len(trace))
    stop = rng.randint(start, len(trace))
    window = view.run_slice(start, stop)
    assert len(window) == stop - start
    materialized = window.materialize_instructions()
    assert [i.seq for i in materialized] == list(range(start, stop))
    seqs, total, capacity, arrays = window.columnar_pipeline_plan()
    assert list(seqs) == list(range(start, stop))
    assert total == stop - start and capacity == stop
    assert arrays is view.pipeline_arrays()


# ----------------------------------------------------------------------
# Drivers
# ----------------------------------------------------------------------
CHECKERS = (
    check_round_trip,
    check_fingerprint_invariance,
    check_truncation_rejected,
    check_corrupt_kind_rejected,
    check_inconsistent_deps_pool_rejected,
    check_zero_dep_distance_rejected,
    check_zero_size_memory_rejected,
    check_pipeline_arrays_match_object_path,
    check_out_of_range_deps_dropped,
    check_head_and_slice_consistency,
)


if HAVE_HYPOTHESIS:

    class TestColumnarPropertiesHypothesis:
        @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
        @settings(
            max_examples=30,
            deadline=None,
            suppress_health_check=[HealthCheck.too_slow],
        )
        @pytest.mark.parametrize("checker", CHECKERS, ids=lambda c: c.__name__)
        def test_property(self, checker, seed):
            checker(seed)

else:  # pragma: no cover - minimal environments only

    class TestColumnarPropertiesFallback:
        @fallback_seeds()
        @pytest.mark.parametrize("checker", CHECKERS, ids=lambda c: c.__name__)
        def test_property(self, checker, seed):
            checker(seed)


# ----------------------------------------------------------------------
# Directed cases (exact messages, files, frontend selection)
# ----------------------------------------------------------------------
class TestColumnarDirected:
    def test_empty_trace_round_trips(self):
        view = MemoryTrace(name="empty", instructions=[]).columnar()
        assert len(view) == 0
        assert view.instructions() == []
        assert view.pipeline_arrays()[0] == b""
        assert view.head(3).to_bytes() == view.to_bytes()

    def test_wide_addresses_survive_the_byte_lane_gather(self):
        # Exercise all eight address byte lanes (a 48-bit address space).
        from repro.memory.address import AddressLayout

        trace = MemoryTrace(
            name="wide",
            instructions=[
                Instruction(
                    kind=InstructionKind.LOAD, address=(0xBEEF << 32) | 0x1234, size=8
                ),
                Instruction(kind=InstructionKind.STORE, address=(1 << 47) - 64, size=4),
            ],
            layout=AddressLayout(address_bits=48),
        )
        view = ColumnarTrace.from_rtrc_bytes(encode_trace(trace))
        assert list(view.addresses) == [(0xBEEF << 32) | 0x1234, (1 << 47) - 64]
        assert view.to_bytes() == encode_trace(trace)

    def test_from_rtrc_bytes_accepts_buffer_views(self):
        trace = random_trace(5)
        payload = encode_trace(trace)
        for data in (bytearray(payload), memoryview(payload)):
            view = ColumnarTrace.from_rtrc_bytes(data)
            assert view.to_bytes() == payload

    def test_whole_view_drives_the_pipeline(self):
        # A full ColumnarTrace (not a run_slice window) is itself a valid
        # pipeline input under both schedulers.
        from repro.cpu.pipeline import OutOfOrderPipeline
        from repro.sim.simulator import Simulator
        from repro.sim.config import SimulationConfig

        trace = random_trace(23)
        results = {}
        for frontend in ("columnar", "object"):
            cycles = {}
            for scheduler in ("event", "cycle"):
                simulator = Simulator(SimulationConfig.malec())
                pipeline = OutOfOrderPipeline(
                    simulator.interface,
                    params=simulator._pipeline_parameters(),
                    stats=simulator.stats,
                    scheduler=scheduler,
                )
                source = trace.columnar() if frontend == "columnar" else list(trace)
                cycles[scheduler] = pipeline.run(source).cycles
            results[frontend] = cycles
        assert results["columnar"] == results["object"]
        assert results["columnar"]["event"] == results["columnar"]["cycle"]

    def test_load_reads_rtrc_files(self, tmp_path):
        trace = random_trace(7)
        for suffix in (".rtrc", ".rtrc.gz"):
            path = tmp_path / f"t{suffix}"
            dump_rtrc(trace, path)
            view = ColumnarTrace.load(path)
            assert view.fingerprint() == trace_fingerprint(trace)

    def test_load_error_names_the_file(self, tmp_path):
        path = tmp_path / "bad.rtrc"
        path.write_bytes(b"RTRC but not really")
        with pytest.raises(TraceFormatError, match="bad.rtrc"):
            ColumnarTrace.load(path)

    def test_deps_pool_is_zero_copy_on_le_hosts(self):
        import sys

        trace = random_trace(11)
        payload = encode_trace(trace)
        view = ColumnarTrace.from_rtrc_bytes(payload)
        if sys.byteorder == "little":
            assert isinstance(view.deps_pool, memoryview)
            assert view.deps_pool.format == "I"

    def test_dep_offsets_are_prefix_sums(self):
        view = random_trace(13).columnar()
        offsets = view.dep_offsets()
        assert offsets[0] == 0
        for seq in range(len(view)):
            assert offsets[seq + 1] - offsets[seq] == view.ndeps[seq]
        assert offsets[len(view)] == len(view.deps_pool)

    def test_resolve_frontend_precedence(self, monkeypatch):
        monkeypatch.delenv(FRONTEND_ENV, raising=False)
        assert resolve_frontend() == "columnar"
        monkeypatch.setenv(FRONTEND_ENV, "object")
        assert resolve_frontend() == "object"
        assert resolve_frontend("columnar") == "columnar"  # explicit beats env
        monkeypatch.setenv(FRONTEND_ENV, "  Columnar  ")
        assert resolve_frontend() == "columnar"  # trimmed, case-insensitive
        monkeypatch.setenv(FRONTEND_ENV, "")
        assert resolve_frontend() == "columnar"  # empty means default

    def test_resolve_frontend_rejects_unknown_names(self, monkeypatch):
        with pytest.raises(ValueError, match="unknown trace frontend"):
            resolve_frontend("rowwise")
        monkeypatch.setenv(FRONTEND_ENV, "vectorized")
        with pytest.raises(ValueError, match="vectorized"):
            resolve_frontend()
        assert FRONTENDS == ("columnar", "object")

    def test_memorytrace_columnar_is_cached_until_growth(self):
        trace = random_trace(17)
        first = trace.columnar()
        assert trace.columnar() is first
        trace.append(Instruction(kind=InstructionKind.COMPUTE))
        regrown = trace.columnar()
        assert regrown is not first
        assert len(regrown) == len(first) + 1
