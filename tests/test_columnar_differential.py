"""Differential net: the columnar frontend against the object-path oracle.

The columnar frontend (PR 7) is the simulator's default way of consuming a
trace; the per-``Instruction`` object path stays behind ``frontend="object"``
/ ``REPRO_TRACE_FRONTEND=object`` precisely so these tests can hold the two
to *bit-identical* results — every ``StatCounters`` counter and every
per-structure energy value, not just cycles.  Coverage spans the fig4-mini
grid (all five Fig. 4 configurations), both pipeline schedulers (the
event-driven default and the cycle-driven reference loop), randomized seeded
synthetic profiles, and the adversarial ``STRESS`` profiles
(``tlbthrash``/``depchase``), whose absolute results are additionally pinned
to ``tests/golden/stress_profiles.json``.

Regenerating the stress golden file is a deliberate act::

    PYTHONPATH=src python tests/golden/regenerate.py
"""

from __future__ import annotations

import json
import random
from pathlib import Path

import pytest

from repro.cpu.pipeline import OutOfOrderPipeline
from repro.sim.config import SimulationConfig
from repro.sim.simulator import Simulator, run_configuration
from repro.workloads.profiles import BenchmarkProfile, StreamKind, StreamSpec
from repro.workloads.suites import (
    STRESS_BENCHMARKS,
    SYNTHETIC_BENCHMARKS,
    benchmark_profile,
)
from repro.workloads.synthetic import generate_trace

STRESS_GOLDEN_PATH = Path(__file__).parent / "golden" / "stress_profiles.json"

#: the fig4-mini benchmark picks (one per suite; mirrors the campaign preset)
FIG4_MINI_BENCHMARKS = ("gzip", "swim", "djpeg")

FIG4_CONFIGS = SimulationConfig.figure4_suite()


def trace_for(name: str, instructions: int = 1200):
    return generate_trace(benchmark_profile(name), instructions=instructions)


def assert_results_identical(columnar, oracle, label: str) -> None:
    """Full-payload equality with a field-first report of what drifted."""
    for field in ("cycles", "instructions", "loads", "stores"):
        assert getattr(columnar, field) == getattr(oracle, field), (label, field)
    assert columnar.stats == oracle.stats, label
    assert columnar.energy == oracle.energy, label


def run_scheduler_frontend(config, trace, scheduler, frontend, warmup=0.0):
    """One fresh simulation with both the scheduler and the frontend pinned.

    Mirrors ``tests/test_event_scheduler.py``'s ``run_with_scheduler`` but
    feeds the pipeline either materialized instruction lists (object oracle)
    or ``ColumnarTrace.run_slice`` views (columnar frontend).
    """
    simulator = Simulator(config)
    params = simulator._pipeline_parameters()
    if frontend == "columnar":
        view = trace.columnar()
        view.precompute_decompositions(config.cache.layout)
        total = len(view)
        warmup_count = int(total * warmup)
        warmup_input = view.run_slice(0, warmup_count)
        measured_input = view.run_slice(warmup_count, total)
    else:
        instructions = list(trace)
        warmup_count = int(len(instructions) * warmup)
        warmup_input = instructions[:warmup_count]
        measured_input = instructions[warmup_count:]
    if warmup_count:
        OutOfOrderPipeline(
            simulator.interface,
            params=params,
            stats=simulator.stats,
            scheduler=scheduler,
        ).run(warmup_input)
        simulator.stats.clear()
    pipeline = OutOfOrderPipeline(
        simulator.interface, params=params, stats=simulator.stats, scheduler=scheduler
    )
    result = pipeline.run(measured_input)
    return result, simulator.stats.as_dict()


class TestFig4GridIdentity:
    @pytest.mark.parametrize("config", FIG4_CONFIGS, ids=lambda c: c.name)
    @pytest.mark.parametrize("bench", FIG4_MINI_BENCHMARKS)
    def test_fig4_mini_grid_bit_identical(self, config, bench):
        trace = trace_for(bench)
        columnar = run_configuration(
            config, trace, warmup_fraction=0.3, frontend="columnar"
        )
        oracle = run_configuration(config, trace, warmup_fraction=0.3, frontend="object")
        assert_results_identical(columnar, oracle, f"{bench}/{config.name}")

    @pytest.mark.parametrize("bench", SYNTHETIC_BENCHMARKS)
    def test_synthetic_extremes_bit_identical(self, bench):
        trace = trace_for(bench)
        config = SimulationConfig.malec()
        columnar = run_configuration(config, trace, frontend="columnar")
        oracle = run_configuration(config, trace, frontend="object")
        assert_results_identical(columnar, oracle, bench)


class TestSchedulerIdentity:
    @pytest.mark.parametrize("scheduler", ("event", "cycle"))
    @pytest.mark.parametrize("bench", STRESS_BENCHMARKS)
    def test_stress_profiles_identical_under_both_schedulers(self, bench, scheduler):
        trace = trace_for(bench)
        config = SimulationConfig.malec()
        col_result, col_stats = run_scheduler_frontend(
            config, trace, scheduler, "columnar", warmup=0.3
        )
        obj_result, obj_stats = run_scheduler_frontend(
            config, trace, scheduler, "object", warmup=0.3
        )
        assert col_result.cycles == obj_result.cycles, (bench, scheduler)
        assert col_stats == obj_stats, (bench, scheduler)

    @pytest.mark.parametrize("scheduler", ("event", "cycle"))
    def test_fig4_pick_identical_under_both_schedulers(self, scheduler):
        trace = trace_for("gzip")
        config = SimulationConfig.base_2ld1st()
        col_result, col_stats = run_scheduler_frontend(config, trace, scheduler, "columnar")
        obj_result, obj_stats = run_scheduler_frontend(config, trace, scheduler, "object")
        assert col_result.cycles == obj_result.cycles
        assert col_stats == obj_stats


def random_profile(seed: int) -> BenchmarkProfile:
    """A randomized-but-seeded profile drawing from every stream kind."""
    rng = random.Random(seed)
    kinds = list(StreamKind)
    streams = tuple(
        StreamSpec(
            kind=rng.choice(kinds),
            weight=rng.uniform(0.3, 1.5),
            footprint_pages=rng.choice((2, 6, 40, 400, 2000)),
            stride_bytes=rng.choice((4, 8, 16, 64, 136)),
            page_stay_probability=rng.uniform(0.1, 0.95),
            store_fraction=rng.uniform(0.0, 0.8),
        )
        for _ in range(rng.randint(1, 4))
    )
    return BenchmarkProfile(
        name=f"fuzz{seed}",
        suite="SYN",
        memory_fraction=rng.uniform(0.25, 0.55),
        streams=streams,
        stream_switch_probability=rng.uniform(0.1, 0.7),
        pointer_chase_dependency=rng.uniform(0.0, 0.9),
        load_use_dependency=rng.uniform(0.1, 0.7),
        seed=seed * 977 + 13,
    )


class TestRandomizedProfiles:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_profiles_bit_identical(self, seed):
        rng = random.Random(seed ^ 0xC0FFEE)
        trace = generate_trace(random_profile(seed), instructions=700)
        config = FIG4_CONFIGS[rng.randrange(len(FIG4_CONFIGS))]
        warmup = rng.choice((0.0, 0.25))
        columnar = run_configuration(
            config, trace, warmup_fraction=warmup, frontend="columnar"
        )
        oracle = run_configuration(
            config, trace, warmup_fraction=warmup, frontend="object"
        )
        assert_results_identical(columnar, oracle, f"fuzz{seed}/{config.name}")


def stress_records(frontend: str) -> dict:
    """The golden payload's records, computed live with ``frontend``."""
    records = {}
    for bench in STRESS_BENCHMARKS:
        trace = trace_for(bench)
        for config in FIG4_CONFIGS:
            result = run_configuration(
                config, trace, warmup_fraction=0.3, frontend=frontend
            )
            records[f"{bench}/{config.name}"] = {
                "cycles": result.cycles,
                "instructions": result.instructions,
                "loads": result.loads,
                "stores": result.stores,
                "stats": result.stats,
                "energy": {
                    name: {
                        "dynamic_pj": item.dynamic_pj,
                        "leakage_pj": item.leakage_pj,
                    }
                    for name, item in sorted(result.energy.structures.items())
                },
            }
    return records


class TestStressGolden:
    @pytest.fixture(scope="class")
    def golden(self) -> dict:
        return json.loads(STRESS_GOLDEN_PATH.read_text())

    @pytest.mark.parametrize("frontend", ("columnar", "object"))
    def test_stress_results_match_golden(self, golden, frontend):
        # Both frontends must land on the recorded results — this pins the
        # STRESS profiles' absolute behaviour *and* re-checks the
        # differential property through an independently stored oracle.
        fresh = stress_records(frontend)
        assert set(fresh) == set(golden["records"])
        for key, golden_record in golden["records"].items():
            record = fresh[key]
            for field in ("cycles", "instructions", "loads", "stores"):
                assert record[field] == golden_record[field], (key, field, frontend)
            assert record["stats"] == golden_record["stats"], (key, frontend)
            assert record["energy"] == golden_record["energy"], (key, frontend)

    def test_golden_covers_full_grid(self, golden):
        assert len(golden["records"]) == len(STRESS_BENCHMARKS) * len(FIG4_CONFIGS)
        assert golden["instructions"] == 1200
        assert golden["warmup_fraction"] == 0.3
