"""Tests for the durable telemetry layer (``repro.obs.telemetry``).

The guarantees under test:

* **deterministic merge** — registry dumps merge order-independently
  (counters sum, gauges max, histograms bucket-wise), so a ``jobs=4``
  metrics snapshot is reproducible despite nondeterministic pool arrival;
* **job-count invariance** — ``jobs=1`` and ``jobs=4`` sweeps agree exactly
  on the counters that only depend on the work done (cells computed, store
  skips, kernel cache misses);
* **bit-identity** — enabling telemetry (metrics + journal) never changes
  simulation results;
* **durability** — journal records round-trip through the reader, survive a
  truncated final line, and validate against the checked-in schema.

Plus the query surface: ``repro obs history/compare/cells/export``, the
OpenMetrics exposition round-trip, and ``repro bench --history``.
"""

from __future__ import annotations

import json

import pytest

from repro.bench import bench_history, format_history as format_bench_history
from repro.campaign.executor import ParallelExecutor
from repro.campaign.spec import campaign_preset
from repro.campaign.store import ResultStore
from repro.cli import main
from repro.obs import metrics as obs_metrics
from repro.obs import logs as obs_logs
from repro.obs import telemetry
from repro.obs.collector import RunCollector
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import TelemetryJournal
from repro.sim.config import SimulationConfig
from repro.sim.simulator import run_configuration
from repro.workloads.suites import benchmark_profile
from repro.workloads.synthetic import generate_trace

INSTRUCTIONS = 400


@pytest.fixture(autouse=True)
def _isolate_obs_state():
    """Metrics/logging are process-global: leave them as we found them."""
    obs_metrics.disable()
    obs_metrics.registry.clear()
    yield
    obs_metrics.disable()
    obs_metrics.registry.clear()
    obs_logs.reset()


def _mini_spec():
    return campaign_preset("fig4-mini").with_overrides(instructions=INSTRUCTIONS)


# ----------------------------------------------------------------------
# Registry dump / merge
# ----------------------------------------------------------------------
class TestDumpMerge:
    def _sample_registry(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("cells").inc(3)
        registry.gauge("rate").set(2.5)
        histogram = registry.histogram("seconds", (0.1, 1.0))
        histogram.observe(0.05)
        histogram.observe(5.0)
        return registry

    def test_dump_keeps_instrument_kinds(self):
        dump = self._sample_registry().dump()
        assert dump["cells"]["kind"] == "counter"
        assert dump["rate"]["kind"] == "gauge"
        assert dump["seconds"]["kind"] == "histogram"
        # Dump must be JSON-able as-is (it crosses the pool boundary and
        # lands in journal footers).
        json.dumps(dump)

    def test_merge_semantics(self):
        dump = self._sample_registry().dump()
        target = MetricsRegistry()
        target.counter("cells").inc(1)
        target.gauge("rate").set(4.0)
        target.merge(dump)
        snapshot = target.snapshot()
        assert snapshot["cells"] == 4.0  # counters sum
        assert snapshot["rate"] == 4.0  # gauges keep the max
        histogram = snapshot["seconds"]
        assert histogram["count"] == 2
        assert histogram["min"] == 0.05 and histogram["max"] == 5.0
        assert histogram["buckets"] == {"0.1": 1, "1.0": 0, "+Inf": 1}

    def test_merge_is_order_independent(self):
        a = self._sample_registry().dump()
        b = MetricsRegistry()
        b.counter("cells").inc(7)
        b.gauge("rate").set(1.0)
        hist = b.histogram("seconds", (0.1, 1.0))
        hist.observe(0.5)
        b = b.dump()

        ab, ba = MetricsRegistry(), MetricsRegistry()
        ab.merge(a)
        ab.merge(b)
        ba.merge(b)
        ba.merge(a)
        assert ab.snapshot() == ba.snapshot()
        assert ab.dump() == ba.dump()

    def test_merge_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            MetricsRegistry().merge({"x": {"kind": "mystery", "value": 1}})

    def test_merge_rejects_bucket_mismatch(self):
        target = MetricsRegistry()
        target.histogram("seconds", (0.1, 1.0))
        source = MetricsRegistry()
        source.histogram("seconds", (0.5, 2.0)).observe(0.3)
        with pytest.raises(ValueError):
            target.merge(source.dump())

    def test_merge_kind_conflict_raises(self):
        target = MetricsRegistry()
        target.gauge("x").set(1.0)
        with pytest.raises(TypeError):
            target.merge({"x": {"kind": "counter", "value": 1.0}})


# ----------------------------------------------------------------------
# OpenMetrics exposition
# ----------------------------------------------------------------------
class TestOpenMetrics:
    def test_render_parse_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("kernel.cache.hit").inc(12)
        registry.gauge("campaign.cells_per_sec").set(33.5)
        histogram = registry.histogram("campaign.cell_seconds", (0.1, 1.0))
        histogram.observe(0.05)
        histogram.observe(0.5)
        histogram.observe(9.0)
        text = registry.snapshot_openmetrics()
        assert text.endswith("# EOF\n")
        samples = telemetry.parse_openmetrics(text)
        assert samples["kernel_cache_hit_total"] == 12
        assert samples["campaign_cells_per_sec"] == 33.5
        # Buckets are cumulative in the exposition (per-bin internally).
        assert samples['campaign_cell_seconds_bucket{le="0.1"}'] == 1
        assert samples['campaign_cell_seconds_bucket{le="1.0"}'] == 2
        assert samples['campaign_cell_seconds_bucket{le="+Inf"}'] == 3
        assert samples["campaign_cell_seconds_count"] == 3

    def test_render_is_deterministic(self):
        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.counter("a").inc()
        assert registry.snapshot_openmetrics() == registry.snapshot_openmetrics()
        assert registry.snapshot_openmetrics().index("# TYPE a counter") < (
            registry.snapshot_openmetrics().index("# TYPE b counter")
        )

    def test_parse_rejects_missing_eof(self):
        with pytest.raises(ValueError):
            telemetry.parse_openmetrics("# TYPE a counter\na_total 1\n")

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            telemetry.parse_openmetrics("a_total not-a-number\n# EOF\n")


# ----------------------------------------------------------------------
# Journal writer / reader
# ----------------------------------------------------------------------
class TestJournal:
    def test_round_trip_and_schema(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        journal = TelemetryJournal(path)
        journal.run_start("fig4-mini", cells_total=2, jobs=1)
        journal.cell(
            key="abc",
            benchmark="gzip",
            config="MALEC",
            config_hash="deadbeef",
            trace_hash="",
            instructions=400,
            wall_seconds=0.25,
            worker_pid=123,
            source="computed",
            kernel="specialized",
            kernel_used=True,
            kernel_fallback_reason="",
            scheduler="event",
            frontend="columnar",
        )
        journal.cell(
            key="def",
            benchmark="swim",
            config="MALEC",
            wall_seconds=0.0,
            worker_pid=123,
            source="store",
        )
        journal.run_end(
            cells_computed=1,
            cells_skipped=1,
            elapsed_seconds=0.5,
            kernel_fallbacks={"collector attached": 1},
            metrics=MetricsRegistry().dump(),
        )
        records = telemetry.read_journal(path)
        assert [r["record"] for r in records] == [
            "run_start",
            "cell",
            "cell",
            "run_end",
        ]
        assert telemetry._journal_schema_errors(path) == []
        runs = telemetry.load_runs(path)
        assert len(runs) == 1
        run = runs[0]
        assert run.header["host"]["cpu_count"] >= 1
        assert run.footer["cells_per_sec"] == 4.0
        assert len(run.cells) == 2
        assert [c["key"] for c in run.computed_cells] == ["abc"]
        assert run.kernel_fallback_count() == 1

    def test_truncated_final_line_is_tolerated(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        journal = TelemetryJournal(path)
        journal.run_start("fig4-mini", cells_total=1, jobs=1)
        with path.open("a") as handle:
            handle.write('{"record": "cell", "run_id"')  # crash mid-append
        records = telemetry.read_journal(path)
        assert len(records) == 1
        # ... but corruption elsewhere is a real error.
        bad = tmp_path / "bad.jsonl"
        bad.write_text('not json\n{"record": "run_end", "run_id": "x"}\n')
        with pytest.raises(json.JSONDecodeError):
            telemetry.read_journal(bad)

    def test_schema_rejects_bad_records(self):
        schema = telemetry.load_schema()
        with pytest.raises(telemetry.SchemaError):
            telemetry.validate_record({"record": "nonsense", "run_id": "x"}, schema)
        with pytest.raises(telemetry.SchemaError):
            telemetry.validate_record({"record": "cell"}, schema)
        with pytest.raises(telemetry.SchemaError):
            telemetry.validate_record(
                {"record": "cell", "run_id": "x", "wall_seconds": -1.0}, schema
            )

    def test_resolve_run_tokens(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        for run_id in ("20260101T000000-aa", "20260102T000000-bb"):
            journal = TelemetryJournal(path, run_id=run_id)
            journal.run_start("fig4-mini", cells_total=0, jobs=1)
            journal.run_end(0, 0, 0.0)
        runs = telemetry.load_runs(path)
        assert telemetry.resolve_run(runs, "last").run_id.endswith("bb")
        assert telemetry.resolve_run(runs, "prev").run_id.endswith("aa")
        assert telemetry.resolve_run(runs, "20260102").run_id.endswith("bb")
        with pytest.raises(ValueError):
            telemetry.resolve_run(runs, "2026")  # ambiguous
        with pytest.raises(ValueError):
            telemetry.resolve_run(runs, "nope")
        with pytest.raises(ValueError):
            telemetry.resolve_run([], "last")


# ----------------------------------------------------------------------
# Executor integration
# ----------------------------------------------------------------------
#: counters that must agree exactly between jobs=1 and jobs=4 sweeps of the
#: same spec (they count work done, not how it was scheduled)
_INVARIANT_COUNTERS = (
    "campaign.cells_completed",
    "campaign.cells_skipped",
    "kernel.cache.miss",
    "kernel.cache.hit",
)


def _sweep_counters(jobs, store=None):
    obs_metrics.registry.clear()
    obs_metrics.enable()
    executor = ParallelExecutor(jobs=jobs, store=store)
    executor.run(_mini_spec())
    snapshot = obs_metrics.registry.snapshot()
    obs_metrics.disable()
    return {name: snapshot.get(name, 0.0) for name in _INVARIANT_COUNTERS}


class TestExecutorTelemetry:
    def test_job_count_invariant_counters(self):
        serial = _sweep_counters(jobs=1)
        parallel = _sweep_counters(jobs=4)
        assert serial == parallel
        assert serial["campaign.cells_completed"] == 15
        assert serial["kernel.cache.miss"] == 0.0  # prewarm absorbs compiles
        assert serial["kernel.cache.hit"] == 15

    def test_store_skips_invariant_across_job_counts(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        _sweep_counters(jobs=1, store=store)  # populate
        serial = _sweep_counters(jobs=1, store=store)
        parallel = _sweep_counters(jobs=4, store=store)
        assert serial == parallel
        assert serial["campaign.cells_skipped"] == 15
        assert serial["campaign.cells_completed"] == 0

    def test_results_bit_identical_with_telemetry_on(self, tmp_path):
        spec = _mini_spec()
        baseline = ParallelExecutor(jobs=1).run(spec)

        obs_metrics.enable()
        store = ResultStore(tmp_path / "store")
        observed = ParallelExecutor(jobs=1, store=store).run(spec)
        assert (tmp_path / "store" / "telemetry.jsonl").exists()

        for base_run, obs_run in zip(baseline.runs, observed.runs):
            assert base_run.benchmark == obs_run.benchmark
            for name, base_result in base_run.results.items():
                obs_result = obs_run.results[name]
                assert base_result.cycles == obs_result.cycles
                assert base_result.stats == obs_result.stats
                assert base_result.energy.total_pj == obs_result.energy.total_pj

    def test_journal_written_and_schema_valid(self, tmp_path):
        obs_metrics.enable()
        store = ResultStore(tmp_path / "store")
        executor = ParallelExecutor(jobs=2, store=store)
        executor.run(_mini_spec())
        journal_path = store.telemetry_path
        assert journal_path.exists()
        assert telemetry._journal_schema_errors(journal_path) == []

        runs = telemetry.load_runs(journal_path)
        assert len(runs) == 1
        run = runs[0]
        assert run.header["campaign"] == "fig4-mini"
        assert run.footer["cells_computed"] == 15
        assert isinstance(run.footer["metrics"], dict)
        assert len(run.computed_cells) == 15
        cell = run.computed_cells[0]
        for field in (
            "key",
            "config_hash",
            "wall_seconds",
            "worker_pid",
            "kernel",
            "kernel_used",
            "scheduler",
            "frontend",
        ):
            assert field in cell

        # Resume: the second run journals every cell as a store hit.
        executor2 = ParallelExecutor(jobs=2, store=store)
        executor2.run(_mini_spec())
        runs = telemetry.load_runs(journal_path)
        assert len(runs) == 2
        assert runs[1].footer["cells_skipped"] == 15
        assert all(cell["source"] == "store" for cell in runs[1].cells)

    def test_pool_merges_worker_side_counters(self, tmp_path):
        obs_metrics.enable()
        executor = ParallelExecutor(jobs=4)
        executor.run(_mini_spec())
        snapshot = obs_metrics.registry.snapshot()
        if executor.used_pool:
            # Kernel compiles and trace decodes happen in the workers; their
            # counters only exist in the parent snapshot via the merge.
            assert snapshot.get("kernel.cache.hit") == 15
            assert snapshot.get("kernel.prewarm", 0) > 0
        assert snapshot["campaign.cells_completed"] == 15

    def test_no_journal_without_metrics_or_path(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        executor = ParallelExecutor(jobs=1, store=store)
        executor.run(_mini_spec())
        assert executor.active_journal is None
        assert not store.telemetry_path.exists()

    def test_explicit_journal_path_without_metrics(self, tmp_path):
        path = tmp_path / "explicit.jsonl"
        executor = ParallelExecutor(jobs=1, journal=path)
        executor.run(_mini_spec())
        assert path.exists()
        runs = telemetry.load_runs(path)
        assert runs[0].footer["cells_computed"] == 15
        # No metrics switch -> no registry dump in the footer.
        assert "metrics" not in runs[0].footer


# ----------------------------------------------------------------------
# Kernel-layer counters
# ----------------------------------------------------------------------
class TestKernelCounters:
    def test_cache_hit_miss_and_prewarm(self):
        import repro.sim.kernels as kernels

        config = SimulationConfig.malec()
        saved = dict(kernels._CACHE)
        kernels._CACHE.clear()
        try:
            obs_metrics.enable()
            kernels.compile_kernel(config)
            kernels.compile_kernel(config)
            kernels.prewarm([config])
            snapshot = obs_metrics.registry.snapshot()
            assert snapshot["kernel.cache.miss"] == 1
            assert snapshot["kernel.cache.hit"] == 1
            assert snapshot["kernel.prewarm"] == 1
        finally:
            kernels._CACHE.clear()
            kernels._CACHE.update(saved)

    def test_collector_fallback_counter(self):
        trace = generate_trace(benchmark_profile("gzip"), instructions=INSTRUCTIONS)
        obs_metrics.enable()
        run_configuration(
            SimulationConfig.malec(),
            trace,
            warmup_fraction=0.25,
            collector=RunCollector(),
            kernel="specialized",
        )
        snapshot = obs_metrics.registry.snapshot()
        assert snapshot["kernel.fallback.collector_attached"] == 1


# ----------------------------------------------------------------------
# repro obs CLI
# ----------------------------------------------------------------------
def _write_comparable_journal(path):
    """Two runs with overlapping computed cells (B regresses on one cell)."""
    cells_a = {"k1": 0.10, "k2": 0.20}
    cells_b = {"k1": 0.10, "k2": 0.30}
    for run_id, cells in (
        ("20260101T000000-aaaaaa", cells_a),
        ("20260102T000000-bbbbbb", cells_b),
    ):
        journal = TelemetryJournal(path, run_id=run_id)
        journal.run_start("fig4-mini", cells_total=len(cells), jobs=1)
        for key, seconds in cells.items():
            journal.cell(
                key=key,
                benchmark="gzip",
                config=f"CFG_{key}",
                wall_seconds=seconds,
                worker_pid=1,
                source="computed",
                kernel="specialized",
                kernel_used=True,
                kernel_fallback_reason="",
            )
        registry = MetricsRegistry()
        registry.counter("campaign.cells_completed").inc(len(cells))
        journal.run_end(
            cells_computed=len(cells),
            cells_skipped=0,
            elapsed_seconds=sum(cells.values()),
            metrics=registry.dump(),
        )


class TestObsCli:
    def test_history_lists_both_runs(self, tmp_path, capsys):
        _write_comparable_journal(tmp_path / "telemetry.jsonl")
        assert main(["obs", "history", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "20260101T000000-aaaaaa" in out
        assert "20260102T000000-bbbbbb" in out

    def test_compare_reports_deltas_and_checks(self, tmp_path, capsys):
        _write_comparable_journal(tmp_path / "telemetry.jsonl")
        assert main(["obs", "compare", str(tmp_path), "prev", "last"]) == 0
        out = capsys.readouterr().out
        assert "+50.0%" in out
        assert "CFG_k2" in out
        # --check turns the threshold into an exit code.
        assert (
            main(
                [
                    "obs",
                    "compare",
                    str(tmp_path),
                    "prev",
                    "last",
                    "--threshold",
                    "25",
                    "--check",
                ]
            )
            == 1
        )
        assert (
            main(
                [
                    "obs",
                    "compare",
                    str(tmp_path),
                    "prev",
                    "last",
                    "--threshold",
                    "80",
                    "--check",
                ]
            )
            == 0
        )

    def test_cells_slowest(self, tmp_path, capsys):
        _write_comparable_journal(tmp_path / "telemetry.jsonl")
        assert main(["obs", "cells", str(tmp_path), "--slowest", "1"]) == 0
        out = capsys.readouterr().out
        assert "CFG_k2" in out  # the slowest cell of the last run
        assert "CFG_k1" not in out

    def test_export_parses_as_openmetrics(self, tmp_path, capsys):
        _write_comparable_journal(tmp_path / "telemetry.jsonl")
        assert main(["obs", "export", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        samples = telemetry.parse_openmetrics(out)
        assert samples["campaign_cells_completed_total"] == 2

    def test_missing_journal_is_usage_error(self, tmp_path, capsys):
        assert main(["obs", "history", str(tmp_path)]) == 2
        assert "no telemetry journal" in capsys.readouterr().err

    def test_unknown_run_token_is_usage_error(self, tmp_path, capsys):
        _write_comparable_journal(tmp_path / "telemetry.jsonl")
        assert main(["obs", "cells", str(tmp_path), "--run", "nope"]) == 2
        assert "no run matching" in capsys.readouterr().err


# ----------------------------------------------------------------------
# repro bench --history
# ----------------------------------------------------------------------
def _fake_bench_report(label, timestamp, seconds, cpu_count=4):
    return {
        "schema": 1,
        "label": label,
        "revision": label,
        "timestamp": timestamp,
        "python": "3.11.0",
        "platform": "linux",
        "host": {
            "cpu_count": cpu_count,
            "machine": "x86_64",
            "platform": "linux",
            "python": "3.11.0",
            "revision": label,
        },
        "params": {"repeats": 1},
        "scenarios": {"single_config_run": {"seconds": seconds, "runs": [seconds]}},
        "total_seconds": seconds,
    }


class TestBenchHistory:
    def test_trajectory_table_flags_host_mismatch(self, tmp_path):
        for label, when, seconds, cpus in (
            ("old", "2026-01-01T00:00:00", 0.2, 2),
            ("new", "2026-02-01T00:00:00", 0.1, 4),
        ):
            (tmp_path / f"BENCH_{label}.json").write_text(
                json.dumps(_fake_bench_report(label, when, seconds, cpus))
            )
        reports = bench_history(tmp_path)
        assert [r["label"] for r in reports] == ["old", "new"]
        table = format_bench_history(reports)
        assert "old*" in table  # different cpu_count than the latest record
        assert "new" in table and "new*" not in table
        assert "200.0" in table and "100.0" in table
        assert "host differs" in table

    def test_skips_unreadable_records(self, tmp_path):
        (tmp_path / "BENCH_bad.json").write_text("not json")
        (tmp_path / "BENCH_ok.json").write_text(
            json.dumps(_fake_bench_report("ok", "2026-01-01T00:00:00", 0.1))
        )
        assert [r["label"] for r in bench_history(tmp_path)] == ["ok"]

    def test_cli_history(self, tmp_path, capsys):
        (tmp_path / "BENCH_ok.json").write_text(
            json.dumps(_fake_bench_report("ok", "2026-01-01T00:00:00", 0.1))
        )
        assert main(["bench", "--history", "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "single_config_run" in out and "ok" in out

    def test_cli_history_empty_dir_is_usage_error(self, tmp_path, capsys):
        assert main(["bench", "--history", "--out", str(tmp_path)]) == 2
        assert "no BENCH_" in capsys.readouterr().err
