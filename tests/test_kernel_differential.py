"""Differential net: specialized simulation kernels against the generic loop.

The specialized kernels (PR 8) are the simulator's default way of running a
configuration on the event scheduler; the generic interpreted loop stays
behind ``kernel="generic"`` / ``REPRO_SIM_KERNEL=generic`` precisely so these
tests can hold the two to *bit-identical* results — every ``StatCounters``
counter and every per-structure energy value, not just cycles.  Coverage
spans the fig4-mini grid (all five Fig. 4 configurations), both pipeline
schedulers (the fused kernel replaces the event-driven loop; the
cycle-driven reference loop provides an independent second oracle),
randomized seeded synthetic profiles, and the adversarial ``STRESS``
profiles (``tlbthrash``/``depchase``/``mlpladder``), whose absolute results
are additionally pinned to ``tests/golden/stress_profiles.json``.

The net also locks down the fallback contract: collector runs take the
generic path and say why, a kernel compiled for a different configuration is
rejected by its runtime guards (falling back, never corrupting results), and
the selection plumbing (env var, explicit argument, validation) behaves.

Regenerating the stress golden file is a deliberate act::

    PYTHONPATH=src python tests/golden/regenerate.py
"""

from __future__ import annotations

import json
import random
from pathlib import Path

import pytest

from repro.cpu.pipeline import OutOfOrderPipeline
from repro.obs import RunCollector
from repro.sim.config import SimulationConfig
from repro.sim.kernels import (
    KERNEL_ENV,
    compile_kernel,
    content_hash,
    kernel_source,
    prewarm,
    resolve_kernel,
)
from repro.sim.simulator import Simulator, run_configuration
from repro.workloads.profiles import BenchmarkProfile, StreamKind, StreamSpec
from repro.workloads.suites import STRESS_BENCHMARKS, benchmark_profile
from repro.workloads.synthetic import generate_trace

STRESS_GOLDEN_PATH = Path(__file__).parent / "golden" / "stress_profiles.json"

#: the fig4-mini benchmark picks (one per suite; mirrors the campaign preset)
FIG4_MINI_BENCHMARKS = ("gzip", "swim", "djpeg")

FIG4_CONFIGS = SimulationConfig.figure4_suite()


def trace_for(name: str, instructions: int = 1200):
    return generate_trace(benchmark_profile(name), instructions=instructions)


def assert_results_identical(specialized, oracle, label: str) -> None:
    """Full-payload equality with a field-first report of what drifted."""
    for field in ("cycles", "instructions", "loads", "stores"):
        assert getattr(specialized, field) == getattr(oracle, field), (label, field)
    assert specialized.stats == oracle.stats, label
    assert specialized.energy == oracle.energy, label


def run_with_kernel(config, trace, kernel, warmup=0.0):
    """One fresh simulation with the kernel pinned; returns (result, simulator).

    Uses :class:`Simulator` directly (not ``run_configuration``) so callers
    can also assert on ``kernel_used`` / ``kernel_fallback_reason`` — a
    specialized run that silently fell back would make the differential
    vacuous.
    """
    simulator = Simulator(config)
    result = simulator.run(trace, warmup_fraction=warmup, kernel=kernel)
    return result, simulator


def run_scheduler_kernel(config, trace, scheduler, kernel, warmup=0.0):
    """One fresh simulation with both the scheduler and the kernel pinned.

    Mirrors ``tests/test_columnar_differential.py``'s
    ``run_scheduler_frontend``: the pipeline is constructed directly so the
    cycle-driven reference loop can serve as a second, scheduler-independent
    oracle for the fused kernels (which replace only the event-driven loop).
    """
    simulator = Simulator(config)
    params = simulator._pipeline_parameters()
    entry = compile_kernel(config).entry if kernel == "specialized" else None
    view = trace.columnar()
    view.precompute_decompositions(config.cache.layout)
    total = len(view)
    warmup_count = int(total * warmup)
    if warmup_count:
        OutOfOrderPipeline(
            simulator.interface,
            params=params,
            stats=simulator.stats,
            scheduler=scheduler,
            kernel=entry,
        ).run(view.run_slice(0, warmup_count))
        simulator.stats.clear()
    pipeline = OutOfOrderPipeline(
        simulator.interface,
        params=params,
        stats=simulator.stats,
        scheduler=scheduler,
        kernel=entry,
    )
    result = pipeline.run(view.run_slice(warmup_count, total))
    return result, simulator.stats.as_dict(), pipeline


class TestFig4GridIdentity:
    @pytest.mark.parametrize("config", FIG4_CONFIGS, ids=lambda c: c.name)
    @pytest.mark.parametrize("bench", FIG4_MINI_BENCHMARKS)
    def test_fig4_mini_grid_bit_identical(self, config, bench):
        trace = trace_for(bench)
        specialized, simulator = run_with_kernel(
            config, trace, "specialized", warmup=0.3
        )
        assert simulator.kernel_used, f"{bench}/{config.name} fell back: " + str(
            simulator.kernel_fallback_reason
        )
        oracle = run_configuration(config, trace, warmup_fraction=0.3, kernel="generic")
        assert_results_identical(specialized, oracle, f"{bench}/{config.name}")


class TestSchedulerIdentity:
    @pytest.mark.parametrize("scheduler", ("event", "cycle"))
    @pytest.mark.parametrize("bench", STRESS_BENCHMARKS)
    def test_stress_profiles_identical_under_both_schedulers(self, bench, scheduler):
        # The fused kernel replaces the event-driven loop, so the specialized
        # run is always event-scheduled; holding it to the generic loop under
        # *both* schedulers checks it against two independent interpreters.
        trace = trace_for(bench)
        config = SimulationConfig.malec()
        spec_result, spec_stats, spec_pipeline = run_scheduler_kernel(
            config, trace, "event", "specialized", warmup=0.3
        )
        assert spec_pipeline.kernel_used, bench
        gen_result, gen_stats, _ = run_scheduler_kernel(
            config, trace, scheduler, "generic", warmup=0.3
        )
        assert spec_result.cycles == gen_result.cycles, (bench, scheduler)
        assert spec_stats == gen_stats, (bench, scheduler)

    @pytest.mark.parametrize("scheduler", ("event", "cycle"))
    def test_fig4_pick_identical_under_both_schedulers(self, scheduler):
        trace = trace_for("gzip")
        config = SimulationConfig.base_2ld1st()
        spec_result, spec_stats, spec_pipeline = run_scheduler_kernel(
            config, trace, "event", "specialized"
        )
        assert spec_pipeline.kernel_used
        gen_result, gen_stats, _ = run_scheduler_kernel(
            config, trace, scheduler, "generic"
        )
        assert spec_result.cycles == gen_result.cycles
        assert spec_stats == gen_stats


def random_profile(seed: int) -> BenchmarkProfile:
    """A randomized-but-seeded profile drawing from every stream kind."""
    rng = random.Random(seed)
    kinds = list(StreamKind)
    streams = tuple(
        StreamSpec(
            kind=rng.choice(kinds),
            weight=rng.uniform(0.3, 1.5),
            footprint_pages=rng.choice((2, 6, 40, 400, 2000)),
            stride_bytes=rng.choice((4, 8, 16, 64, 136)),
            page_stay_probability=rng.uniform(0.1, 0.95),
            store_fraction=rng.uniform(0.0, 0.8),
        )
        for _ in range(rng.randint(1, 4))
    )
    return BenchmarkProfile(
        name=f"kfuzz{seed}",
        suite="SYN",
        memory_fraction=rng.uniform(0.25, 0.55),
        streams=streams,
        stream_switch_probability=rng.uniform(0.1, 0.7),
        pointer_chase_dependency=rng.uniform(0.0, 0.9),
        load_use_dependency=rng.uniform(0.1, 0.7),
        seed=seed * 977 + 13,
    )


class TestRandomizedProfiles:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_profiles_bit_identical(self, seed):
        rng = random.Random(seed ^ 0x5EED)
        trace = generate_trace(random_profile(seed), instructions=700)
        config = FIG4_CONFIGS[rng.randrange(len(FIG4_CONFIGS))]
        warmup = rng.choice((0.0, 0.25))
        specialized, simulator = run_with_kernel(
            config, trace, "specialized", warmup=warmup
        )
        assert simulator.kernel_used, f"kfuzz{seed}/{config.name}"
        oracle = run_configuration(
            config, trace, warmup_fraction=warmup, kernel="generic"
        )
        assert_results_identical(specialized, oracle, f"kfuzz{seed}/{config.name}")


def stress_records(kernel: str) -> dict:
    """The golden payload's records, computed live with ``kernel``."""
    records = {}
    for bench in STRESS_BENCHMARKS:
        trace = trace_for(bench)
        for config in FIG4_CONFIGS:
            result, simulator = run_with_kernel(config, trace, kernel, warmup=0.3)
            if kernel == "specialized":
                assert simulator.kernel_used, f"{bench}/{config.name}"
            records[f"{bench}/{config.name}"] = {
                "cycles": result.cycles,
                "instructions": result.instructions,
                "loads": result.loads,
                "stores": result.stores,
                "stats": result.stats,
                "energy": {
                    name: {
                        "dynamic_pj": item.dynamic_pj,
                        "leakage_pj": item.leakage_pj,
                    }
                    for name, item in sorted(result.energy.structures.items())
                },
            }
    return records


class TestStressGolden:
    @pytest.fixture(scope="class")
    def golden(self) -> dict:
        return json.loads(STRESS_GOLDEN_PATH.read_text())

    @pytest.mark.parametrize("kernel", ("specialized", "generic"))
    def test_stress_results_match_golden(self, golden, kernel):
        # Both kernels must land on the recorded results — this pins the
        # STRESS profiles' absolute behaviour *and* re-checks the
        # differential property through an independently stored oracle
        # (the golden records were produced on the object frontend).
        fresh = stress_records(kernel)
        assert set(fresh) == set(golden["records"])
        for key, golden_record in golden["records"].items():
            record = fresh[key]
            for field in ("cycles", "instructions", "loads", "stores"):
                assert record[field] == golden_record[field], (key, field, kernel)
            assert record["stats"] == golden_record["stats"], (key, kernel)
            assert record["energy"] == golden_record["energy"], (key, kernel)

    def test_golden_covers_mlpladder(self, golden):
        assert "mlpladder" in STRESS_BENCHMARKS
        assert any(key.startswith("mlpladder/") for key in golden["records"])


class TestFallbackContract:
    def test_collector_run_falls_back_and_says_why(self):
        trace = trace_for("gzip")
        config = SimulationConfig.malec()
        simulator = Simulator(config)
        with_collector = simulator.run(
            trace, collector=RunCollector(), kernel="specialized"
        )
        assert not simulator.kernel_used
        assert simulator.kernel_fallback_reason == "collector attached"
        oracle = run_configuration(config, trace, kernel="generic")
        assert_results_identical(with_collector, oracle, "collector fallback")

    def test_foreign_kernel_rejected_by_runtime_guards(self):
        # A kernel compiled for MALEC attached to a baseline pipeline must
        # refuse to run (guards return None) and leave the generic loop to
        # produce the exact same result as a plain generic run.
        trace = trace_for("gzip")
        config = SimulationConfig.base_1ldst()
        foreign = compile_kernel(SimulationConfig.malec()).entry
        simulator = Simulator(config)
        params = simulator._pipeline_parameters()
        view = trace.columnar()
        view.precompute_decompositions(config.cache.layout)
        pipeline = OutOfOrderPipeline(
            simulator.interface,
            params=params,
            stats=simulator.stats,
            kernel=foreign,
        )
        result = pipeline.run(view.run_slice(0, len(view)))
        assert not pipeline.kernel_used
        assert pipeline.kernel_fallback
        _, gen_stats, _ = run_scheduler_kernel(config, trace, "event", "generic")
        assert simulator.stats.as_dict() == gen_stats
        assert result.instructions > 0

    def test_env_var_selects_generic(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV, "generic")
        assert resolve_kernel() == "generic"
        simulator = Simulator(SimulationConfig.malec())
        simulator.run(trace_for("gzip", instructions=300))
        assert simulator.kernel_requested == "generic"
        assert not simulator.kernel_used

    def test_explicit_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV, "generic")
        assert resolve_kernel("specialized") == "specialized"

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError):
            resolve_kernel("bogus")


class TestKernelCache:
    def test_content_hash_ignores_name_and_seed(self):
        malec = SimulationConfig.malec()
        assert content_hash(malec) == content_hash(malec.with_name("renamed"))

    def test_compile_is_cached_per_content_hash(self):
        malec = SimulationConfig.malec()
        assert compile_kernel(malec) is compile_kernel(malec.with_name("other"))

    def test_distinct_configs_get_distinct_kernels(self):
        hashes = {content_hash(config) for config in FIG4_CONFIGS}
        assert len(hashes) == len(FIG4_CONFIGS)

    def test_prewarm_deduplicates(self):
        malec = SimulationConfig.malec()
        assert prewarm([malec, malec.with_name("again")]) == 1

    def test_source_is_dumpable_and_compiles(self):
        source = kernel_source(SimulationConfig.malec())
        assert "def kernel_run(" in source
        compile(source, "<dump>", "exec")
