"""Determinism regression tests.

The parallel campaign executor relies on one correctness contract: a
simulation is a pure function of (configuration, seed, trace).  Two fresh
:class:`~repro.sim.simulator.Simulator` instances fed the same inputs must
produce bit-identical cycles, statistics and energy, otherwise serial and
parallel sweeps (and store-resumed sweeps) would disagree.
"""

from __future__ import annotations

import pytest

from repro.sim.config import SimulationConfig
from repro.sim.simulator import Simulator
from repro.workloads.suites import benchmark_profile
from repro.workloads.synthetic import generate_trace

CONFIGURATIONS = [
    SimulationConfig.base_1ldst(),
    SimulationConfig.base_2ld1st(),
    SimulationConfig.malec(),
]


@pytest.mark.parametrize("config", CONFIGURATIONS, ids=lambda c: c.name)
def test_fresh_simulators_reproduce_identical_results(config, small_trace):
    first = Simulator(config).run(small_trace, warmup_fraction=0.25)
    second = Simulator(config).run(small_trace, warmup_fraction=0.25)

    assert first.cycles == second.cycles
    assert first.instructions == second.instructions
    assert first.loads == second.loads
    assert first.stores == second.stores
    assert first.stats == second.stats
    assert first.energy.cycles == second.energy.cycles
    assert set(first.energy.structures) == set(second.energy.structures)
    for name, item in first.energy.structures.items():
        other = second.energy.structures[name]
        assert item.dynamic_pj == other.dynamic_pj
        assert item.leakage_pj == other.leakage_pj


def test_regenerated_traces_are_identical():
    profile = benchmark_profile("mcf")
    first = generate_trace(profile, instructions=1200)
    second = generate_trace(profile, instructions=1200)
    assert len(first) == len(second)
    for a, b in zip(first, second):
        assert (a.kind, a.address, a.size, a.deps) == (b.kind, b.address, b.size, b.deps)


def test_explicit_seed_matches_profile_default():
    # The campaign executor passes the trace seed explicitly; this must be
    # indistinguishable from the default-seed path every other harness uses.
    profile = benchmark_profile("gzip")
    implicit = generate_trace(profile, instructions=800)
    explicit = generate_trace(profile, instructions=800, seed=profile.seed)
    for a, b in zip(implicit, explicit):
        assert (a.kind, a.address, a.size, a.deps) == (b.kind, b.address, b.size, b.deps)
