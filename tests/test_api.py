"""Tests for :mod:`repro.api`: RunOptions resolution, env-var deprecation
and the options=/legacy-kwarg exclusivity rules."""

from __future__ import annotations

import warnings

import pytest

from repro.api import RunOptions, env_fallback
from repro.campaign.executor import ParallelExecutor
from repro.campaign.store import ResultStore
from repro.sim.config import SimulationConfig
from repro.sim.simulator import Simulator, run_configuration
from repro.workloads.suites import benchmark_profile
from repro.workloads.synthetic import generate_trace


@pytest.fixture
def clean_env(monkeypatch):
    monkeypatch.delenv("REPRO_SIM_KERNEL", raising=False)
    monkeypatch.delenv("REPRO_TRACE_FRONTEND", raising=False)


class TestRunOptions:
    def test_defaults_resolve(self, clean_env):
        options = RunOptions.from_env()
        assert options.resolved_frontend() == "columnar"
        assert options.resolved_kernel() == "specialized"
        assert options.resolved_scheduler() == "event"

    def test_explicit_fields_win(self, clean_env, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_KERNEL", "specialized")
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # env must NOT be consulted
            options = RunOptions.from_env(kernel="generic", frontend="object")
        assert options.resolved_kernel() == "generic"
        assert options.resolved_frontend() == "object"

    def test_bad_scheduler_is_loud(self, clean_env):
        with pytest.raises(ValueError, match="scheduler"):
            RunOptions(scheduler="quantum").resolved_scheduler()

    def test_with_overrides(self, clean_env):
        options = RunOptions(kernel="generic")
        bumped = options.with_overrides(jobs=4)
        assert bumped.kernel == "generic" and bumped.jobs == 4
        assert options.jobs is None  # frozen original untouched

    def test_open_store_from_url(self, clean_env, tmp_path):
        options = RunOptions(store=f"sqlite:{tmp_path / 's.db'}")
        store = options.open_store()
        assert isinstance(store, ResultStore)
        store.close()
        assert RunOptions().open_store() is None


class TestEnvDeprecation:
    def test_env_fallback_warns(self, clean_env, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_KERNEL", "generic")
        with pytest.warns(DeprecationWarning, match="REPRO_SIM_KERNEL"):
            assert env_fallback("REPRO_SIM_KERNEL") == "generic"

    def test_unset_env_is_silent_none(self, clean_env):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert env_fallback("REPRO_SIM_KERNEL") is None

    def test_from_env_picks_up_deprecated_vars(self, clean_env, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_KERNEL", "GENERIC")
        monkeypatch.setenv("REPRO_TRACE_FRONTEND", "object")
        with pytest.warns(DeprecationWarning):
            options = RunOptions.from_env()
        assert options.resolved_kernel() == "generic"
        assert options.resolved_frontend() == "object"


class TestSimulatorOptions:
    def test_options_and_legacy_kwargs_are_exclusive(self, clean_env):
        trace = generate_trace(benchmark_profile("gzip"), 200)
        simulator = Simulator(SimulationConfig.base_1ldst())
        with pytest.raises(ValueError, match="not both"):
            simulator.run(trace, kernel="generic", options=RunOptions())

    def test_options_reproduce_legacy_kwargs(self, clean_env):
        config = SimulationConfig.malec()
        trace = generate_trace(benchmark_profile("gzip"), 1500)
        via_kwargs = run_configuration(config, trace, kernel="generic")
        via_options = run_configuration(
            config, trace, options=RunOptions(kernel="generic")
        )
        assert via_kwargs.cycles == via_options.cycles
        assert via_kwargs.stats == via_options.stats

    def test_cycle_scheduler_via_options_matches_event(self, clean_env):
        config = SimulationConfig.base_1ldst()
        trace = generate_trace(benchmark_profile("gzip"), 1500)
        event = run_configuration(config, trace, options=RunOptions())
        cycle = run_configuration(
            config, trace, options=RunOptions(scheduler="cycle")
        )
        assert event.cycles == cycle.cycles


class TestExecutorOptions:
    def test_executor_rejects_mixed_configuration(self, clean_env, tmp_path):
        with pytest.raises(ValueError, match="not both"):
            ParallelExecutor(jobs=1, options=RunOptions(jobs=2))

    def test_executor_options_store_url(self, clean_env, tmp_path):
        executor = ParallelExecutor(
            options=RunOptions(jobs=1, store=f"json:{tmp_path / 'store'}")
        )
        assert executor.jobs == 1
        assert executor.store is not None
        assert executor.store.url.startswith("json:")
