"""Tests for Page-Based Way Determination (way tables) and the WDU baseline."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.l1_cache import L1DataCache
from repro.core.way_table import WayTableEntry, WayTableHierarchy
from repro.core.wdu import WayDeterminationUnit
from repro.memory.address import DEFAULT_LAYOUT
from repro.stats import StatCounters
from repro.tlb.tlb import TLBHierarchy

layout = DEFAULT_LAYOUT


def addr(page: int, line: int, offset: int = 0) -> int:
    return layout.compose_line(page, line, offset)


class TestWayTableEntry:
    def test_initially_unknown(self):
        entry = WayTableEntry()
        for line in range(layout.lines_per_page):
            assert not entry.lookup(line).known

    def test_update_and_lookup(self):
        entry = WayTableEntry()
        assert entry.update(5, way=3)
        prediction = entry.lookup(5)
        assert prediction.known and prediction.way == 3

    def test_excluded_way_rotates_per_line_group(self):
        entry = WayTableEntry()
        assert entry.excluded_way(0) == 0
        assert entry.excluded_way(3) == 0
        assert entry.excluded_way(4) == 1
        assert entry.excluded_way(8) == 2
        assert entry.excluded_way(12) == 3
        assert entry.excluded_way(16) == 0

    def test_excluded_way_cannot_be_encoded(self):
        entry = WayTableEntry()
        # Line 4 excludes way 1 (Sec. V).
        assert not entry.update(4, way=1)
        assert not entry.lookup(4).known

    def test_invalidate_line(self):
        entry = WayTableEntry()
        entry.update(7, way=2)
        entry.invalidate_line(7)
        assert not entry.lookup(7).known

    def test_clear(self):
        entry = WayTableEntry()
        entry.update(7, way=2)
        entry.update(9, way=3)
        entry.clear()
        assert entry.known_lines() == 0

    def test_copy_from(self):
        a, b = WayTableEntry(), WayTableEntry()
        a.update(1, way=2)
        b.copy_from(a)
        assert b.lookup(1).way == 2

    def test_storage_bits_match_paper(self):
        entry = WayTableEntry()
        assert entry.storage_bits == 128     # packed 2-bit format (Fig. 3)
        assert entry.naive_storage_bits == 192  # separate valid + way bits
        assert entry.storage_bits == entry.naive_storage_bits * 2 // 3

    def test_bad_line_index_rejected(self):
        entry = WayTableEntry()
        with pytest.raises(ValueError):
            entry.lookup(64)
        with pytest.raises(ValueError):
            entry.update(-1, 0)
        with pytest.raises(ValueError):
            entry.update(0, 4)

    @given(
        st.integers(min_value=0, max_value=63),
        st.integers(min_value=0, max_value=3),
    )
    @settings(max_examples=200)
    def test_roundtrip_or_unknown(self, line, way):
        """Any (line, way) either round-trips exactly or reports unknown."""
        entry = WayTableEntry()
        encoded = entry.update(line, way)
        prediction = entry.lookup(line)
        if encoded:
            assert prediction.known and prediction.way == way
        else:
            assert way == entry.excluded_way(line)
            assert not prediction.known


class TestWayTableHierarchy:
    def _system(self, feedback=True):
        stats = StatCounters()
        translation = TLBHierarchy(stats=stats)
        l1 = L1DataCache(stats=stats, restrict_way_allocation=True)
        tables = WayTableHierarchy(translation, stats=stats, enable_feedback_update=feedback)
        tables.attach_to_cache(l1)
        return stats, translation, l1, tables

    def test_fill_updates_way_information(self):
        stats, translation, l1, tables = self._system()
        result = translation.translate(addr(5, 0))
        paddr = result.physical_address
        outcome = l1.load(paddr)  # miss + fill -> tables learn the way
        prediction = tables.predict_line(5, layout.line_in_page(paddr))
        assert prediction.known
        assert prediction.way == outcome.way

    def test_eviction_clears_validity(self):
        stats, translation, l1, tables = self._system()
        translation.translate(addr(5, 0))
        paddr = translation.translate(addr(5, 0)).physical_address
        way = l1.load(paddr).way
        tables.on_line_evict(layout.line_address(paddr), way)
        assert not tables.predict_line(5, layout.line_in_page(paddr)).known

    def test_prediction_allows_reduced_access(self):
        stats, translation, l1, tables = self._system()
        paddr = translation.translate(addr(6, 3)).physical_address
        l1.load(paddr)
        prediction = tables.predict_line(6, layout.line_in_page(paddr))
        outcome = l1.load(paddr, way_hint=prediction.way)
        assert outcome.hit and outcome.reduced and not outcome.way_hint_wrong

    def test_feedback_update_after_unknown_conventional_hit(self):
        stats, translation, l1, tables = self._system(feedback=True)
        paddr = translation.translate(addr(7, 2)).physical_address
        outcome = l1.load(paddr)  # fill
        line = layout.line_in_page(paddr)
        # Forget the way (simulates a page whose WT entry was lost).
        slot = translation.utlb.reverse_lookup(layout.page_id(paddr), count_event=False)
        tables.uwt.clear_entry(slot)
        assert not tables.predict_line(7, line).known
        tables.feedback_conventional_hit(paddr, outcome.way)
        assert tables.predict_line(7, line).known

    def test_feedback_disabled_is_a_noop(self):
        stats, translation, l1, tables = self._system(feedback=False)
        paddr = translation.translate(addr(7, 2)).physical_address
        outcome = l1.load(paddr)
        slot = translation.utlb.reverse_lookup(layout.page_id(paddr), count_event=False)
        tables.uwt.clear_entry(slot)
        tables.predict_line(7, layout.line_in_page(paddr))
        tables.feedback_conventional_hit(paddr, outcome.way)
        assert not tables.predict_line(7, layout.line_in_page(paddr)).known

    def test_utlb_eviction_writes_entry_back_to_wt(self):
        stats, translation, l1, tables = self._system()
        # Touch page 0 and learn a way.
        paddr = translation.translate(addr(0, 1)).physical_address
        l1.load(paddr)
        line = layout.line_in_page(paddr)
        # Touch enough other pages to push page 0 out of the 16-entry uTLB.
        for page in range(1, 40):
            translation.translate(addr(page, 0))
        # The information must survive in the WT and refill the uWT on re-touch.
        prediction = tables.predict_line(0, line)
        assert prediction.known

    def test_tlb_eviction_loses_way_information(self):
        stats = StatCounters()
        translation = TLBHierarchy(utlb_entries=2, tlb_entries=4, stats=stats)
        l1 = L1DataCache(stats=stats, restrict_way_allocation=True)
        tables = WayTableHierarchy(translation, stats=stats)
        tables.attach_to_cache(l1)
        paddr = translation.translate(addr(0, 1)).physical_address
        l1.load(paddr)
        for page in range(1, 30):
            translation.translate(addr(page, 0))
        # Page 0 left the 4-entry TLB entirely: a fresh entry starts invalid.
        assert not tables.predict_line(0, layout.line_in_page(paddr)).known
        assert stats["wt.page_invalidated"] >= 1

    def test_coverage_property(self):
        stats, translation, l1, tables = self._system()
        paddr = translation.translate(addr(9, 0)).physical_address
        l1.load(paddr)
        tables.predict_line(9, 0)
        assert 0.0 <= tables.coverage <= 1.0

    def test_storage_accounting(self):
        stats, translation, l1, tables = self._system()
        # 16-entry uWT + 64-entry WT at 128 bits each (Fig. 3).
        assert tables.total_storage_bits == (16 + 64) * 128


class TestWayDeterminationUnit:
    def test_unknown_then_known(self):
        wdu = WayDeterminationUnit(entries=4)
        address = addr(3, 1)
        assert not wdu.predict(address).known
        wdu.record(address, way=2)
        prediction = wdu.predict(address)
        assert prediction.known and prediction.way == 2

    def test_lru_eviction_by_capacity(self):
        wdu = WayDeterminationUnit(entries=2)
        wdu.record(addr(1, 0), 0)
        wdu.record(addr(1, 1), 1)
        wdu.record(addr(1, 2), 2)  # evicts the oldest entry
        assert not wdu.predict(addr(1, 0)).known
        assert wdu.predict(addr(1, 2)).known
        assert wdu.occupancy == 2

    def test_cache_eviction_invalidates_entry(self):
        wdu = WayDeterminationUnit(entries=8)
        wdu.record(addr(2, 0), 1)
        wdu.on_line_evict(addr(2, 0), 1)
        assert not wdu.predict(addr(2, 0)).known

    def test_attach_to_cache_tracks_fills(self):
        stats = StatCounters()
        l1 = L1DataCache(stats=stats)
        wdu = WayDeterminationUnit(entries=16, stats=stats)
        wdu.attach_to_cache(l1)
        outcome = l1.load(addr(4, 0))
        prediction = wdu.predict(addr(4, 0))
        assert prediction.known and prediction.way == outcome.way

    def test_rejects_bad_way(self):
        wdu = WayDeterminationUnit(entries=4)
        with pytest.raises(ValueError):
            wdu.record(addr(0, 0), 4)

    def test_storage_scales_with_entries(self):
        small = WayDeterminationUnit(entries=8).storage_bits
        large = WayDeterminationUnit(entries=32).storage_bits
        assert large == 4 * small

    def test_coverage_counts(self):
        wdu = WayDeterminationUnit(entries=4)
        wdu.predict(addr(0, 0))
        wdu.record(addr(0, 0), 1)
        wdu.predict(addr(0, 0))
        assert wdu.coverage == 0.5
