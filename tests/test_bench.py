"""Tests for the ``repro bench`` perf-regression harness."""

from __future__ import annotations

import json

import pytest

from repro.bench import (
    BENCH_PREFIX,
    SCHEMA_VERSION,
    compare_reports,
    default_output_dir,
    detect_revision,
    find_regressions,
    format_report,
    run_benchmarks,
    write_report,
)
from repro.cli import main

EXPECTED_SCENARIOS = {
    "trace_generation",
    "single_config_run",
    "single_config_run_kernel",
    "fig4_mini_sweep",
    "fig4_mini_sweep_serial",
    "figure4_gzip_djpeg_mcf",
    "trace_decode_rtrc",
    "trace_columnar_decode",
}


@pytest.fixture(scope="module")
def quick_report() -> dict:
    """One shared --quick run (the scenarios still simulate real cells)."""
    return run_benchmarks(quick=True, label="test")


class TestRunBenchmarks:
    def test_report_shape(self, quick_report):
        assert quick_report["schema"] == SCHEMA_VERSION
        assert quick_report["label"] == "test"
        assert set(quick_report["scenarios"]) == EXPECTED_SCENARIOS
        assert quick_report["params"]["quick"] is True
        assert quick_report["params"]["repeats"] == 1

    def test_scenarios_record_timings_and_details(self, quick_report):
        for name, scenario in quick_report["scenarios"].items():
            assert scenario["seconds"] > 0.0, name
            assert scenario["runs"] and min(scenario["runs"]) == scenario["seconds"]
        sweep = quick_report["scenarios"]["fig4_mini_sweep"]
        assert sweep["cells"] == 15  # 5 Fig. 4 configurations x 3 benchmarks
        single = quick_report["scenarios"]["single_config_run"]
        assert single["cycles"] > 0
        assert quick_report["total_seconds"] == pytest.approx(
            sum(s["seconds"] for s in quick_report["scenarios"].values())
        )

    def test_columnar_decode_reports_object_baseline(self, quick_report):
        columnar = quick_report["scenarios"]["trace_columnar_decode"]
        assert columnar["object_seconds"] > 0.0
        assert columnar["speedup_vs_objects"] == pytest.approx(
            columnar["object_seconds"] / columnar["seconds"]
        )
        assert columnar["rtrc_bytes"] > 0

    def test_kernel_scenario_reports_generic_baseline(self, quick_report):
        kernel = quick_report["scenarios"]["single_config_run_kernel"]
        assert kernel["generic_seconds"] > 0.0
        assert kernel["speedup_vs_generic"] == pytest.approx(
            kernel["generic_seconds"] / kernel["seconds"]
        )
        assert kernel["cycles"] > 0

    def test_quick_caps_workload_sizes(self, quick_report):
        assert quick_report["params"]["instructions"] <= 600
        assert quick_report["params"]["sweep_instructions"] <= 400

    def test_detect_revision_returns_string(self):
        assert isinstance(detect_revision(), str) and detect_revision()


class TestReportFiles:
    def test_write_report_creates_bench_file(self, quick_report, tmp_path):
        path = write_report(quick_report, tmp_path)
        assert path.name == f"{BENCH_PREFIX}test.json"
        loaded = json.loads(path.read_text())
        assert loaded == quick_report

    def test_write_report_sanitises_label(self, quick_report, tmp_path):
        report = dict(quick_report, label="feat/odd label!")
        path = write_report(report, tmp_path)
        assert path.name == f"{BENCH_PREFIX}feat-odd-label-.json"

    def test_format_report_lists_all_scenarios(self, quick_report):
        text = format_report(quick_report)
        for name in EXPECTED_SCENARIOS:
            assert name in text
        assert "total" in text

    def test_compare_reports_prints_speedups(self, quick_report):
        before = json.loads(json.dumps(quick_report))
        before["label"] = "before"
        for scenario in before["scenarios"].values():
            scenario["seconds"] = scenario["seconds"] * 2.0
        text = compare_reports(before, quick_report)
        assert "2.0" in text and "before" in text

    def test_compare_reports_skips_unknown_scenarios(self, quick_report):
        text = compare_reports({"label": "b", "scenarios": {}}, quick_report)
        assert text.splitlines() == [f"speedup b -> {quick_report['label']}"]


class TestCompareGate:
    def _shifted(self, report, factor, label):
        copy = json.loads(json.dumps(report))
        copy["label"] = label
        for scenario in copy["scenarios"].values():
            scenario["seconds"] = scenario["seconds"] * factor
        return copy

    def test_find_regressions_flags_slowdowns(self, quick_report):
        slower = self._shifted(quick_report, 1.5, "slower")
        hits = find_regressions(quick_report, slower, threshold_pct=20.0)
        assert len(hits) == len(quick_report["scenarios"])
        assert all("slower" in line for line in hits)

    def test_find_regressions_respects_threshold(self, quick_report):
        slower = self._shifted(quick_report, 1.1, "slower")
        assert find_regressions(quick_report, slower, threshold_pct=20.0) == []

    def test_find_regressions_ignores_new_scenarios(self, quick_report):
        before = json.loads(json.dumps(quick_report))
        del before["scenarios"]["fig4_mini_sweep_serial"]
        slower = self._shifted(quick_report, 3.0, "slower")
        hits = find_regressions(before, slower, threshold_pct=20.0)
        assert not any("fig4_mini_sweep_serial" in line for line in hits)

    def test_two_file_compare_passes_and_fails(self, quick_report, tmp_path, capsys):
        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        old.write_text(json.dumps(quick_report))
        new.write_text(json.dumps(self._shifted(quick_report, 1.5, "slow")))
        # Within a generous threshold: success.
        assert main(["bench", "--compare", str(old), str(new), "--threshold", "60"]) == 0
        # Default 20% gate: the 50% slowdown fails the build.
        assert main(["bench", "--compare", str(old), str(new)]) == 1
        out = capsys.readouterr().out
        assert "regression beyond threshold" in out
        # Speedups never fail, whatever the direction of the file arguments.
        assert main(["bench", "--compare", str(new), str(old)]) == 0

    def test_two_file_compare_runs_nothing(self, quick_report, tmp_path):
        old = tmp_path / "old.json"
        old.write_text(json.dumps(quick_report))
        # Comparing a report against itself: no benchmarks run (instant), 0.
        assert main(["bench", "--compare", str(old), str(old)]) == 0

    def test_trace_decode_reports_jsonl_comparison(self, quick_report):
        decode = quick_report["scenarios"]["trace_decode_rtrc"]
        assert decode["jsonl_seconds"] > 0.0
        assert decode["speedup_vs_jsonl"] > 0.0
        assert decode["rtrc_bytes"] > 0

    def test_compare_missing_file_exits_2(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.json")
        other = str(tmp_path / "also-nope.json")
        assert main(["bench", "--compare", missing, other]) == 2
        err = capsys.readouterr().err
        assert "comparison file not found" in err and "nope.json" in err

    def test_compare_corrupt_json_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["bench", "--compare", str(bad), str(bad)]) == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_compare_non_report_json_exits_2(self, tmp_path, capsys):
        not_report = tmp_path / "empty.json"
        not_report.write_text("[]")
        assert main(["bench", "--compare", str(not_report), str(not_report)]) == 2
        assert "not a bench report" in capsys.readouterr().err

    def test_single_file_compare_missing_baseline_exits_2(self, tmp_path, capsys):
        missing = str(tmp_path / "base.json")
        assert main(["bench", "--quick", "--no-write", "--compare", missing]) == 2
        assert "comparison file not found" in capsys.readouterr().err

    def test_more_than_two_files_rejected(self, quick_report, tmp_path):
        old = tmp_path / "old.json"
        old.write_text(json.dumps(quick_report))
        assert main(["bench", "--compare", str(old), str(old), str(old)]) == 2

    def test_default_output_dir_is_repo_anchored(self):
        path = default_output_dir()
        assert path.parts[-2:] == ("benchmarks", "perf")
        # In this checkout the repository root is resolvable.
        assert path.is_absolute()

    def test_output_override_writes_exact_path(self, quick_report, tmp_path):
        target = tmp_path / "nested" / "exact.json"
        path = write_report(quick_report, tmp_path, out_file=target)
        assert path == target and target.exists()


class TestBenchCli:
    def test_cli_quick_no_write(self, capsys):
        assert main(["bench", "--quick", "--no-write"]) == 0
        out = capsys.readouterr().out
        assert "fig4_mini_sweep" in out
        assert "wrote" not in out

    def test_cli_writes_and_compares(self, tmp_path, capsys):
        assert main(["bench", "--quick", "--label", "a", "--out", str(tmp_path)]) == 0
        first = tmp_path / f"{BENCH_PREFIX}a.json"
        assert first.exists()
        assert (
            main(
                [
                    "bench",
                    "--quick",
                    "--label",
                    "b",
                    "--out",
                    str(tmp_path),
                    "--compare",
                    str(first),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "speedup a -> b" in out
        assert (tmp_path / f"{BENCH_PREFIX}b.json").exists()
