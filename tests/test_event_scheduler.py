"""Event-driven scheduler: bit-identical to the cycle-driven reference loop.

The pipeline's default event-driven loop (PR 3) must produce results
indistinguishable from the cycle-driven loop that polls every component every
cycle — the same discipline the PR-2 idle fast-forward was held to, now for
the general case.  These tests sweep randomized configurations and traces
through both loops and compare complete ``SimulationResult`` payloads, and
unit-test the :class:`~repro.sim.events.EventWheel`'s deterministic
equal-timestamp tie-breaking.
"""

from __future__ import annotations

import random

import pytest

from repro.cpu.instruction import compute, load, store
from repro.cpu.pipeline import OutOfOrderPipeline, PipelineParametersLite
from repro.sim.config import MalecParameters, SimulationConfig
from repro.sim.events import EventWheel
from repro.sim.simulator import Simulator
from repro.workloads.suites import benchmark_profile
from repro.workloads.synthetic import generate_trace
from repro.workloads.trace import MemoryTrace


def run_with_scheduler(config: SimulationConfig, trace, scheduler: str, warmup=0.0):
    """One fresh simulation with the pipeline scheduler pinned."""
    simulator = Simulator(config)
    instructions = list(trace)
    warmup_count = int(len(instructions) * warmup)
    params = simulator._pipeline_parameters()
    if warmup_count:
        OutOfOrderPipeline(
            simulator.interface,
            params=params,
            stats=simulator.stats,
            scheduler=scheduler,
        ).run(instructions[:warmup_count])
        simulator.stats.clear()
    pipeline = OutOfOrderPipeline(
        simulator.interface, params=params, stats=simulator.stats, scheduler=scheduler
    )
    result = pipeline.run(instructions[warmup_count:])
    return result, pipeline, simulator.stats.as_dict()


def random_trace(seed: int, length: int = 350) -> MemoryTrace:
    """Mixed loads/stores/computes with random deps, bursts and far pages."""
    rng = random.Random(seed)
    pages = [0x4000 * (1 + p) for p in range(4)] + [
        (1 << 21) * (3 + p) for p in range(5)
    ]
    instructions = []
    for index in range(length):
        roll = rng.random()
        address = rng.choice(pages) + rng.randrange(0, 4096, 4)
        deps = ()
        if index and rng.random() < 0.45:
            deps = (rng.randrange(1, min(index, 10) + 1),)
        if roll < 0.4:
            instructions.append(load(address, deps=deps))
        elif roll < 0.6:
            instructions.append(store(address, deps=deps))
        else:
            instructions.append(compute(deps=deps))
    return MemoryTrace(name=f"rand-{seed}", instructions=instructions)


def random_config(seed: int) -> SimulationConfig:
    """A randomized configuration drawn from all three interface families."""
    rng = random.Random(1000 + seed)
    family = rng.choice(["base1", "base2", "malec"])
    latency = rng.choice([1, 2, 3])
    if family == "base1":
        return SimulationConfig.base_1ldst(l1_hit_latency=latency)
    if family == "base2":
        return SimulationConfig.base_2ld1st(l1_hit_latency=latency)
    options = MalecParameters(
        way_determination=rng.choice(["wt", "wdu", "none"]),
        result_buses=rng.choice([2, 4]),
        input_buffer_capacity=rng.choice([1, 2, 3]),
    )
    return SimulationConfig.malec(l1_hit_latency=latency, malec_options=options)


class TestEventCycleIdentity:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_config_and_trace_identical(self, seed):
        """Randomized sweep: event-driven == cycle-driven, field for field."""
        config = random_config(seed)
        trace = random_trace(seed)
        ev_result, _, ev_stats = run_with_scheduler(config, trace, "event")
        cy_result, _, cy_stats = run_with_scheduler(config, trace, "cycle")
        assert ev_result.cycles == cy_result.cycles
        assert (ev_result.loads, ev_result.stores, ev_result.computes) == (
            cy_result.loads,
            cy_result.stores,
            cy_result.computes,
        )
        assert ev_stats == cy_stats

    @pytest.mark.parametrize("bench_name", ["gzip", "mcf", "djpeg"])
    def test_real_benchmark_traces_identical_with_warmup(self, bench_name):
        """Warmed benchmark runs (the campaign shape) stay bit-identical."""
        trace = generate_trace(benchmark_profile(bench_name), instructions=900)
        config = SimulationConfig.malec()
        ev_result, _, ev_stats = run_with_scheduler(config, trace, "event", warmup=0.3)
        cy_result, _, cy_stats = run_with_scheduler(config, trace, "cycle", warmup=0.3)
        assert ev_result.cycles == cy_result.cycles
        assert ev_stats == cy_stats

    def test_event_loop_skips_idle_stretches(self):
        """Pointer chasing: the event loop must actually jump the clock."""
        instructions = []
        for index in range(50):
            instructions.append(
                load(0x10000 + index * (1 << 20), deps=(1,) if index else ())
            )
            instructions.append(compute(deps=(1,)))
        trace = MemoryTrace(name="chase", instructions=instructions)
        config = SimulationConfig.base_1ldst()
        ev_result, ev_pipeline, ev_stats = run_with_scheduler(config, trace, "event")
        cy_result, cy_pipeline, cy_stats = run_with_scheduler(config, trace, "cycle")
        assert ev_pipeline.fast_forwarded_cycles > ev_result.cycles // 2
        assert ev_result.cycles == cy_result.cycles
        assert ev_stats == cy_stats

    def test_tiny_pipelines_identical(self):
        """Narrow widths force deferrals and width-exhaustion leftovers."""
        params = PipelineParametersLite(
            rob_entries=8, fetch_width=2, issue_width=2, commit_width=1
        )
        trace = random_trace(99, length=200)
        config = SimulationConfig.base_2ld1st()
        results = {}
        for scheduler in ("event", "cycle"):
            simulator = Simulator(config)
            pipeline = OutOfOrderPipeline(
                simulator.interface,
                params=params,
                stats=simulator.stats,
                scheduler=scheduler,
            )
            outcome = pipeline.run(list(trace))
            results[scheduler] = (outcome.cycles, simulator.stats.as_dict())
        assert results["event"] == results["cycle"]

    def test_unknown_scheduler_rejected(self):
        simulator = Simulator(SimulationConfig.base_1ldst())
        with pytest.raises(ValueError):
            OutOfOrderPipeline(simulator.interface, scheduler="quantum")


class TestEventWheelTieBreaking:
    def test_fifo_order_within_cycle(self):
        wheel = EventWheel()
        wheel.schedule(5, "a")
        wheel.schedule(5, "b")
        wheel.schedule(5, "c")
        assert wheel.pop_due(5) == ["a", "b", "c"]

    def test_component_order_beats_insertion_order(self):
        wheel = EventWheel()
        first = wheel.register("pipeline")
        second = wheel.register("interface")
        assert (first, second) == (0, 1)
        # Inserted out of component order; drained in component order.
        wheel.schedule(7, "iface-1", component_id=second)
        wheel.schedule(7, "pipe-1", component_id=first)
        wheel.schedule(7, "iface-2", component_id=second)
        wheel.schedule(7, "pipe-2", component_id=first)
        assert wheel.pop_due(7) == ["pipe-1", "pipe-2", "iface-1", "iface-2"]
        assert wheel.component_name(first) == "pipeline"

    def test_cycle_order_across_buckets(self):
        wheel = EventWheel()
        wheel.schedule(9, "late")
        wheel.schedule(3, "early")
        wheel.schedule(6, "mid")
        assert wheel.next_cycle() == 3
        assert wheel.pop_due(8) == ["early", "mid"]
        assert wheel.next_cycle() == 9
        assert len(wheel) == 1
        assert wheel.pop_due(100) == ["late"]
        assert not wheel

    def test_pop_due_ignores_future_events(self):
        wheel = EventWheel()
        wheel.schedule(10, "x")
        assert wheel.pop_due(9) == []
        assert len(wheel) == 1

    def test_single_component_mode(self):
        wheel = EventWheel(single_component=True)
        wheel.register("only")
        with pytest.raises(ValueError):
            wheel.register("second")
        wheel.schedule(2, 11)
        wheel.schedule(2, 12)
        wheel.schedule(1, 10)
        assert wheel.pop_due(2) == [10, 11, 12]

    def test_clear_drops_events(self):
        wheel = EventWheel()
        wheel.schedule(1, "x")
        wheel.clear()
        assert wheel.next_cycle() is None
        assert wheel.pop_due(10) == []
