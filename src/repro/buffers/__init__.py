"""Load queue, store buffer and merge buffer.

These structures are common to all analyzed configurations (Table I keeps
their sizes identical across Base1ldst, Base2ld1st and MALEC): a 40-entry
load queue, a 24-entry store buffer holding speculative stores until they
commit, and a 4-entry merge buffer that coalesces committed stores to the
same cache line before they are written back to the L1.

MALEC changes only their *lookup structures*: because all accesses of a cycle
share one page id, the store and merge buffer lookups are split into a shared
page-id segment and per-access narrow offset segments (Sec. IV).  The classes
below count both full-width and split lookups so the energy model can weigh
them, even though the paper ultimately excludes LQ/SB/MB energy from its
results (it is similar across configurations).
"""

from repro.buffers.load_queue import LoadQueue, LoadQueueEntry
from repro.buffers.store_buffer import StoreBuffer, StoreBufferEntry, ForwardingResult
from repro.buffers.merge_buffer import MergeBuffer, MergeBufferEntry

__all__ = [
    "LoadQueue",
    "LoadQueueEntry",
    "StoreBuffer",
    "StoreBufferEntry",
    "ForwardingResult",
    "MergeBuffer",
    "MergeBufferEntry",
]
