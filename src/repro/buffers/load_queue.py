"""Load queue.

The load queue (LQ, 40 entries in Table II) tracks every in-flight load from
dispatch until its data has returned and the load has committed.  In this
reproduction it provides the back-pressure that limits how many loads the
pipeline can have outstanding, and records per-load timing used for the
latency statistics.  Its energy is excluded from the paper's results (it is
the same for every configuration), so no lookup events are charged here.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.stats import StatCounters


class LoadQueueEntry:
    """Book-keeping for one in-flight load (slotted: one entry per load)."""

    __slots__ = ("tag", "virtual_address", "dispatch_cycle", "issue_cycle", "complete_cycle")

    def __init__(
        self,
        tag: Any,
        virtual_address: int,
        dispatch_cycle: int,
        issue_cycle: Optional[int] = None,
        complete_cycle: Optional[int] = None,
    ) -> None:
        self.tag = tag
        self.virtual_address = virtual_address
        self.dispatch_cycle = dispatch_cycle
        self.issue_cycle = issue_cycle
        self.complete_cycle = complete_cycle

    @property
    def latency(self) -> Optional[int]:
        """Cycles from issue to data return, when both are known."""
        if self.issue_cycle is None or self.complete_cycle is None:
            return None
        return self.complete_cycle - self.issue_cycle


class LoadQueue:
    """Fixed-capacity queue of in-flight loads keyed by an opaque tag."""

    def __init__(self, entries: int = 40, stats: Optional[StatCounters] = None) -> None:
        if entries <= 0:
            raise ValueError("the load queue needs at least one entry")
        self.entries = entries
        self.stats = stats if stats is not None else StatCounters()
        self._entries: Dict[Any, LoadQueueEntry] = {}
        # Per-access counters resolved to integer slots once (hot path).
        self._h_allocate = self.stats.handle("lq.allocate")
        self._h_total_latency = self.stats.handle("lq.total_latency")
        self._h_completed = self.stats.handle("lq.completed")

    # ------------------------------------------------------------------
    @property
    def occupancy(self) -> int:
        """Number of loads currently tracked."""
        return len(self._entries)

    @property
    def full(self) -> bool:
        """True when no further load can be dispatched."""
        return len(self._entries) >= self.entries

    def allocate(self, tag: Any, virtual_address: int, cycle: int) -> LoadQueueEntry:
        """Insert a load at dispatch; raises when the queue is full."""
        if self.full:
            raise RuntimeError("load queue overflow")
        if tag in self._entries:
            raise ValueError(f"load {tag!r} already present in the load queue")
        entry = LoadQueueEntry(tag=tag, virtual_address=virtual_address, dispatch_cycle=cycle)
        self._entries[tag] = entry
        self.stats.bump(self._h_allocate)
        return entry

    def allocate_issued(
        self, tag: Any, virtual_address: int, cycle: int, count: bool = True
    ) -> None:
        """Fused :meth:`allocate` + :meth:`mark_issued` for the hot path.

        The interfaces submit a load the cycle its address computation
        finishes, so dispatch and issue coincide; fusing both saves a dict
        probe and a call per load while bumping the same counters.
        ``count=False`` leaves the ``lq.allocate`` charge to the caller (the
        interfaces fold it into one fused submission bump).
        """
        if len(self._entries) >= self.entries:
            raise RuntimeError("load queue overflow")
        if tag in self._entries:
            raise ValueError(f"load {tag!r} already present in the load queue")
        self._entries[tag] = LoadQueueEntry(
            tag=tag,
            virtual_address=virtual_address,
            dispatch_cycle=cycle,
            issue_cycle=cycle,
        )
        if count:
            self.stats.bump(self._h_allocate)

    def mark_issued(self, tag: Any, cycle: int) -> None:
        """Record the cycle in which the load was sent to the L1 interface."""
        self._entries[tag].issue_cycle = cycle

    def mark_complete(self, tag: Any, cycle: int) -> None:
        """Record the cycle in which the load's data returned."""
        entry = self._entries[tag]
        entry.complete_cycle = cycle
        issue_cycle = entry.issue_cycle
        if issue_cycle is not None:
            self.stats.bump(self._h_total_latency, cycle - issue_cycle)
            self.stats.bump(self._h_completed)

    def complete_release(self, tag: Any, cycle: int) -> None:
        """Fused :meth:`mark_complete` + :meth:`release` for the hot path.

        Like :meth:`mark_complete`, an unknown tag raises ``KeyError`` — a
        completion for a load that was never allocated (or was already
        released) is a scheduler defect that must surface immediately, not
        drift the statistics.
        """
        entry = self._entries.pop(tag)
        entry.complete_cycle = cycle
        issue_cycle = entry.issue_cycle
        if issue_cycle is not None:
            self.stats.bump(self._h_total_latency, cycle - issue_cycle)
            self.stats.bump(self._h_completed)

    def release(self, tag: Any) -> None:
        """Remove a committed load from the queue."""
        self._entries.pop(tag, None)

    def get(self, tag: Any) -> Optional[LoadQueueEntry]:
        """Entry for ``tag`` (``None`` if not present)."""
        return self._entries.get(tag)

    def outstanding(self) -> List[LoadQueueEntry]:
        """All loads whose data has not returned yet."""
        return [entry for entry in self._entries.values() if entry.complete_cycle is None]

    @property
    def average_latency(self) -> float:
        """Mean issue-to-completion latency of completed loads."""
        return self.stats.ratio("lq.total_latency", "lq.completed")
