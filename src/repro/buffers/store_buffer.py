"""Store buffer with full-width and page-split lookup accounting.

Stores that finish address computation enter the store buffer (SB, 24 entries
in Table II) and remain there until they commit, at which point they move to
the merge buffer.  Loads must search the SB for older overlapping stores so
that speculatively buffered data can be forwarded.

The baselines perform one full-width associative lookup per load.  MALEC
splits the lookup structure into a shared page-id segment (one comparison per
cycle, shared by the whole page group) and per-access narrow offset segments
(Sec. IV); both are modelled and counted separately so their energies can be
compared even though the paper excludes the SB from its final numbers.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.memory.address import AddressLayout, DEFAULT_LAYOUT
from repro.stats import StatCounters


class StoreBufferEntry:
    """A speculative store waiting to commit (slotted: one entry per store)."""

    __slots__ = ("tag", "virtual_address", "size", "cycle", "committed")

    def __init__(
        self,
        tag: Any,
        virtual_address: int,
        size: int,
        cycle: int,
        committed: bool = False,
    ) -> None:
        self.tag = tag
        self.virtual_address = virtual_address
        self.size = size
        self.cycle = cycle
        self.committed = committed


class ForwardingResult:
    """Result of a load's search of the store buffer."""

    __slots__ = ("hit", "entry")

    def __init__(self, hit: bool, entry: Optional[StoreBufferEntry] = None) -> None:
        self.hit = hit
        self.entry = entry


class StoreBuffer:
    """Fixed-capacity buffer of speculative stores in program order."""

    def __init__(
        self,
        entries: int = 24,
        layout: AddressLayout = DEFAULT_LAYOUT,
        stats: Optional[StatCounters] = None,
    ) -> None:
        if entries <= 0:
            raise ValueError("the store buffer needs at least one entry")
        self.entries = entries
        self.layout = layout
        self.stats = stats if stats is not None else StatCounters()
        self._entries: List[StoreBufferEntry] = []
        #: tag -> entry index for O(1) commit marking (tags are unique)
        self._by_tag: dict = {}
        #: number of committed-but-not-drained entries (cheap quiescence check)
        self._committed_count = 0
        # Per-access counters resolved to integer slots once (hot path).
        self._h_insert = self.stats.handle("sb.insert")
        self._h_lookup_offset = self.stats.handle("sb.lookup_offset")
        self._h_lookup_full = self.stats.handle("sb.lookup_full")
        self._h_forward_hit = self.stats.handle("sb.forward_hit")
        self._h_lookup_page_shared = self.stats.handle("sb.lookup_page_shared")
        self._h_drain = self.stats.handle("sb.drain")

    # ------------------------------------------------------------------
    @property
    def occupancy(self) -> int:
        """Number of stores currently buffered."""
        return len(self._entries)

    @property
    def full(self) -> bool:
        """True when no further store can be accepted."""
        return len(self._entries) >= self.entries

    def insert(self, tag: Any, virtual_address: int, size: int, cycle: int) -> StoreBufferEntry:
        """Add a store that finished address computation."""
        if self.full:
            raise RuntimeError("store buffer overflow")
        entry = StoreBufferEntry(tag=tag, virtual_address=virtual_address, size=size, cycle=cycle)
        self._entries.append(entry)
        self._by_tag[tag] = entry
        self.stats.bump(self._h_insert)
        return entry

    # ------------------------------------------------------------------
    # Load forwarding lookups
    # ------------------------------------------------------------------
    def lookup(self, address: int, size: int = 4, split: bool = False) -> ForwardingResult:
        """Search for the youngest older store overlapping ``address``.

        ``split`` selects MALEC's split lookup structure: the page-id segment
        is shared by the page group (charged once per cycle via
        :meth:`charge_shared_page_lookup`), so only the narrow offset segment
        is charged here.  A full-width lookup is charged otherwise.
        """
        if split:
            self.stats.bump(self._h_lookup_offset)
        else:
            self.stats.bump(self._h_lookup_full)
        end = address + size
        for entry in reversed(self._entries):
            start = entry.virtual_address
            if start < end and address < start + entry.size:
                self.stats.bump(self._h_forward_hit)
                return ForwardingResult(hit=True, entry=entry)
        return ForwardingResult(hit=False)

    def charge_shared_page_lookup(self) -> None:
        """Charge the per-cycle shared page-id comparison of the split structure."""
        self.stats.bump(self._h_lookup_page_shared)

    # ------------------------------------------------------------------
    # Commit path
    # ------------------------------------------------------------------
    @property
    def committed_count(self) -> int:
        """Number of committed stores still waiting to drain to the MB."""
        return self._committed_count

    def mark_committed(self, tag: Any) -> Optional[StoreBufferEntry]:
        """Flag the store identified by ``tag`` as committed (ready for the MB)."""
        entry = self._by_tag.get(tag)
        if entry is not None and not entry.committed:
            entry.committed = True
            self._committed_count += 1
            return entry
        return None

    def pop_committed(self) -> Optional[StoreBufferEntry]:
        """Remove and return the oldest committed store, if any."""
        if not self._committed_count:
            return None
        for index, entry in enumerate(self._entries):
            if entry.committed:
                self.stats.bump(self._h_drain)
                self._committed_count -= 1
                self._entries.pop(index)
                if self._by_tag.get(entry.tag) is entry:
                    del self._by_tag[entry.tag]
                return entry
        return None

    def flush_speculative(self) -> int:
        """Drop all uncommitted stores (pipeline squash); returns the count."""
        before = len(self._entries)
        self._entries = [entry for entry in self._entries if entry.committed]
        self._by_tag = {entry.tag: entry for entry in self._entries}
        dropped = before - len(self._entries)
        if dropped:
            self.stats.add("sb.squashed", dropped)
        return dropped
