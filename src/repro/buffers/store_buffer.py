"""Store buffer with full-width and page-split lookup accounting.

Stores that finish address computation enter the store buffer (SB, 24 entries
in Table II) and remain there until they commit, at which point they move to
the merge buffer.  Loads must search the SB for older overlapping stores so
that speculatively buffered data can be forwarded.

The baselines perform one full-width associative lookup per load.  MALEC
splits the lookup structure into a shared page-id segment (one comparison per
cycle, shared by the whole page group) and per-access narrow offset segments
(Sec. IV); both are modelled and counted separately so their energies can be
compared even though the paper excludes the SB from its final numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional

from repro.memory.address import AddressLayout, DEFAULT_LAYOUT
from repro.stats import StatCounters


@dataclass
class StoreBufferEntry:
    """A speculative store waiting to commit."""

    tag: Any
    virtual_address: int
    size: int
    cycle: int
    committed: bool = False


@dataclass
class ForwardingResult:
    """Result of a load's search of the store buffer."""

    hit: bool
    entry: Optional[StoreBufferEntry] = None


class StoreBuffer:
    """Fixed-capacity buffer of speculative stores in program order."""

    def __init__(
        self,
        entries: int = 24,
        layout: AddressLayout = DEFAULT_LAYOUT,
        stats: Optional[StatCounters] = None,
    ) -> None:
        if entries <= 0:
            raise ValueError("the store buffer needs at least one entry")
        self.entries = entries
        self.layout = layout
        self.stats = stats if stats is not None else StatCounters()
        self._entries: List[StoreBufferEntry] = []

    # ------------------------------------------------------------------
    @property
    def occupancy(self) -> int:
        """Number of stores currently buffered."""
        return len(self._entries)

    @property
    def full(self) -> bool:
        """True when no further store can be accepted."""
        return len(self._entries) >= self.entries

    def insert(self, tag: Any, virtual_address: int, size: int, cycle: int) -> StoreBufferEntry:
        """Add a store that finished address computation."""
        if self.full:
            raise RuntimeError("store buffer overflow")
        entry = StoreBufferEntry(tag=tag, virtual_address=virtual_address, size=size, cycle=cycle)
        self._entries.append(entry)
        self.stats.add("sb.insert")
        return entry

    # ------------------------------------------------------------------
    # Load forwarding lookups
    # ------------------------------------------------------------------
    def _overlaps(self, entry: StoreBufferEntry, address: int, size: int) -> bool:
        start_a, end_a = entry.virtual_address, entry.virtual_address + entry.size
        start_b, end_b = address, address + size
        return start_a < end_b and start_b < end_a

    def lookup(self, address: int, size: int = 4, split: bool = False) -> ForwardingResult:
        """Search for the youngest older store overlapping ``address``.

        ``split`` selects MALEC's split lookup structure: the page-id segment
        is shared by the page group (charged once per cycle via
        :meth:`charge_shared_page_lookup`), so only the narrow offset segment
        is charged here.  A full-width lookup is charged otherwise.
        """
        if split:
            self.stats.add("sb.lookup_offset")
        else:
            self.stats.add("sb.lookup_full")
        for entry in reversed(self._entries):
            if self._overlaps(entry, address, size):
                self.stats.add("sb.forward_hit")
                return ForwardingResult(hit=True, entry=entry)
        return ForwardingResult(hit=False)

    def charge_shared_page_lookup(self) -> None:
        """Charge the per-cycle shared page-id comparison of the split structure."""
        self.stats.add("sb.lookup_page_shared")

    # ------------------------------------------------------------------
    # Commit path
    # ------------------------------------------------------------------
    def mark_committed(self, tag: Any) -> Optional[StoreBufferEntry]:
        """Flag the store identified by ``tag`` as committed (ready for the MB)."""
        for entry in self._entries:
            if entry.tag == tag and not entry.committed:
                entry.committed = True
                return entry
        return None

    def pop_committed(self) -> Optional[StoreBufferEntry]:
        """Remove and return the oldest committed store, if any."""
        for index, entry in enumerate(self._entries):
            if entry.committed:
                self.stats.add("sb.drain")
                return self._entries.pop(index)
        return None

    def flush_speculative(self) -> int:
        """Drop all uncommitted stores (pipeline squash); returns the count."""
        before = len(self._entries)
        self._entries = [entry for entry in self._entries if entry.committed]
        dropped = before - len(self._entries)
        if dropped:
            self.stats.add("sb.squashed", dropped)
        return dropped
