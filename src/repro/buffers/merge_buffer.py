"""Merge buffer: coalesces committed stores before they reach the L1.

Committed stores move from the store buffer into the merge buffer (MB, 4
entries in Table II).  Stores to the same cache line merge into one entry, so
the number of L1 write accesses is reduced.  When the buffer is full the
oldest entry is evicted and becomes a *merge buffer entry* (MBE) travelling
to the cache — through the Input Buffer in MALEC (lowest priority, not time
critical) or directly through a cache port in the baselines.

Loads must also search the MB, since it can hold data newer than the cache;
MALEC uses the same split (shared page-id + narrow offset) lookup structure
as for the store buffer.
"""

from __future__ import annotations

from typing import List, Optional

from repro.memory.address import AddressLayout, DEFAULT_LAYOUT
from repro.stats import StatCounters


class MergeBufferEntry:
    """One cache line's worth of merged, committed store data (slotted)."""

    __slots__ = ("line_address", "store_count", "dirty_bytes", "allocation_cycle")

    def __init__(
        self,
        line_address: int,
        store_count: int = 1,
        dirty_bytes: int = 0,
        allocation_cycle: int = 0,
    ) -> None:
        self.line_address = line_address
        self.store_count = store_count
        self.dirty_bytes = dirty_bytes
        self.allocation_cycle = allocation_cycle


class MergeBuffer:
    """Fixed-capacity, line-granular write-combining buffer."""

    def __init__(
        self,
        entries: int = 4,
        layout: AddressLayout = DEFAULT_LAYOUT,
        stats: Optional[StatCounters] = None,
    ) -> None:
        if entries <= 0:
            raise ValueError("the merge buffer needs at least one entry")
        self.entries = entries
        self.layout = layout
        self.stats = stats if stats is not None else StatCounters()
        self._entries: List[MergeBufferEntry] = []
        # Per-access counters resolved to integer slots once (hot path).
        self._h_merged_store = self.stats.handle("mb.merged_store")
        self._h_eviction = self.stats.handle("mb.eviction")
        self._h_allocate = self.stats.handle("mb.allocate")
        self._h_lookup_offset = self.stats.handle("mb.lookup_offset")
        self._h_lookup_full = self.stats.handle("mb.lookup_full")
        self._h_forward_hit = self.stats.handle("mb.forward_hit")
        self._h_lookup_page_shared = self.stats.handle("mb.lookup_page_shared")

    # ------------------------------------------------------------------
    @property
    def occupancy(self) -> int:
        """Number of lines currently buffered."""
        return len(self._entries)

    @property
    def full(self) -> bool:
        """True when an incoming store to a new line would force an eviction."""
        return len(self._entries) >= self.entries

    def _find(self, line_address: int) -> Optional[MergeBufferEntry]:
        for entry in self._entries:
            if entry.line_address == line_address:
                return entry
        return None

    # ------------------------------------------------------------------
    # Commit path
    # ------------------------------------------------------------------
    def commit_store(
        self, virtual_address: int, size: int = 4, cycle: int = 0
    ) -> Optional[MergeBufferEntry]:
        """Place a committed store into the buffer.

        Returns the evicted :class:`MergeBufferEntry` when the buffer had to
        make room (the caller forwards it to the cache / Input Buffer), or
        ``None`` when the store merged or a free slot existed.
        """
        line_address = self.layout.line_address(virtual_address)
        existing = self._find(line_address)
        if existing is not None:
            existing.store_count += 1
            existing.dirty_bytes += size
            self.stats.bump(self._h_merged_store)
            return None

        evicted: Optional[MergeBufferEntry] = None
        if self.full:
            evicted = self._entries.pop(0)
            self.stats.bump(self._h_eviction)
        self._entries.append(
            MergeBufferEntry(
                line_address=line_address,
                store_count=1,
                dirty_bytes=size,
                allocation_cycle=cycle,
            )
        )
        self.stats.bump(self._h_allocate)
        return evicted

    def pop_oldest(self) -> Optional[MergeBufferEntry]:
        """Explicitly evict the oldest entry (used when draining the buffer)."""
        if not self._entries:
            return None
        self.stats.bump(self._h_eviction)
        return self._entries.pop(0)

    def drain(self) -> List[MergeBufferEntry]:
        """Remove and return every entry (end-of-simulation flush)."""
        drained = self._entries
        self._entries = []
        if drained:
            self.stats.add("mb.drain", len(drained))
        return drained

    # ------------------------------------------------------------------
    # Load lookups
    # ------------------------------------------------------------------
    def lookup(self, virtual_address: int, split: bool = False) -> Optional[MergeBufferEntry]:
        """Search the buffer for the line containing ``virtual_address``.

        ``split`` selects MALEC's shared-page + narrow-offset lookup (the
        shared part is charged via :meth:`charge_shared_page_lookup`).
        """
        if split:
            self.stats.bump(self._h_lookup_offset)
        else:
            self.stats.bump(self._h_lookup_full)
        entry = self._find(self.layout.line_address(virtual_address))
        if entry is not None:
            self.stats.bump(self._h_forward_hit)
        return entry

    def charge_shared_page_lookup(self) -> None:
        """Charge the per-cycle shared page-id comparison of the split structure."""
        self.stats.bump(self._h_lookup_page_shared)

    @property
    def merge_rate(self) -> float:
        """Fraction of committed stores that merged into an existing entry."""
        merged = self.stats.get("mb.merged_store")
        total = merged + self.stats.get("mb.allocate")
        return merged / total if total else 0.0
