"""Sweep-as-a-service: a dependency-free HTTP front end over a shared store.

``repro serve`` turns a campaign store into a small service: clients submit
campaign sweeps over HTTP, poll their progress, and fetch individual cell
records or the Pareto frontier of a finished sweep.  Because the store is
content-hash keyed and simulation is deterministic (bit-identical results
for any job count), a popular configuration grid is **computed once and
served from cache** to every later caller — a second submission of the same
campaign completes with zero cells recomputed, provable from the telemetry
journal.

The server is pure stdlib (:mod:`http.server` + :mod:`threading` +
:mod:`queue`): a :class:`~http.server.ThreadingHTTPServer` answers requests
while a single background worker drains the submission queue, so sweeps run
one at a time against the shared store (the store's idempotent puts make
even overlapping external writers safe; serializing merely keeps the host
sane).  Every request is journaled through the PR 9 telemetry layer as a
``serve_request`` record under the server's session id, next to the
ordinary ``run_start``/``cell``/``run_end`` records of the sweeps it
triggers.

Endpoints (all JSON; see ``docs/architecture.md`` for a curl session):

====== =================================== ====================================
Method Path                                Meaning
====== =================================== ====================================
GET    ``/api/v1/health``                  liveness + store URL + cell count
GET    ``/api/v1/store``                   store URL, cell count, manifest
POST   ``/api/v1/campaigns``               submit a sweep (``{"preset": ...}``)
GET    ``/api/v1/campaigns``               list submitted campaigns
GET    ``/api/v1/campaigns/<id>``          poll one campaign's progress
GET    ``/api/v1/campaigns/<id>/frontier`` Pareto frontier of a finished sweep
GET    ``/api/v1/cells/<key>``             one stored cell record, verbatim
====== =================================== ====================================
"""

from __future__ import annotations

import json
import queue
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple

from repro.api import RunOptions
from repro.campaign.executor import ParallelExecutor
from repro.campaign.spec import PRESET_NAMES, CampaignSpec, campaign_preset
from repro.campaign.store import ResultStore, open_store
from repro.dse.objectives import DEFAULT_OBJECTIVES, resolve_objectives
from repro.dse.pareto import ParetoPoint, pareto_frontier
from repro.obs.logs import get_logger
from repro.obs.telemetry import TelemetryJournal

__all__ = ["ReproServer", "CampaignJob"]

logger = get_logger(__name__)

#: campaign job states, in lifecycle order
JOB_STATES = ("queued", "running", "done", "failed")


class CampaignJob:
    """One submitted sweep: its spec, lifecycle state and results."""

    def __init__(self, job_id: str, spec: CampaignSpec, jobs: Optional[int]) -> None:
        self.id = job_id
        self.spec = spec
        self.jobs = jobs
        self.state = "queued"
        self.error: Optional[str] = None
        self.done = 0
        self.total = len(spec.cells())
        self.cells_computed = 0
        self.cells_skipped = 0
        self.run_id: Optional[str] = None
        #: config name -> {benchmark -> SimulationResult}, set when done
        self.results: Optional[Dict[str, Dict[str, Any]]] = None

    def describe(self) -> dict:
        """The JSON shape every campaign endpoint returns."""
        payload: Dict[str, Any] = {
            "id": self.id,
            "campaign": self.spec.name,
            "state": self.state,
            "done": self.done,
            "total": self.total,
            "cells_computed": self.cells_computed,
            "cells_skipped": self.cells_skipped,
        }
        if self.run_id is not None:
            payload["run_id"] = self.run_id
        if self.error is not None:
            payload["error"] = self.error
        if self.state == "done":
            payload["keys"] = sorted(cell.key() for cell in self.spec.cells())
        return payload


class _RequestError(Exception):
    """An HTTP error response: (status, message)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class _Handler(BaseHTTPRequestHandler):
    """Routes requests to the owning :class:`ReproServer` and journals them."""

    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    # BaseHTTPRequestHandler logs to stderr per request by default; the
    # telemetry journal is the operational record, so keep stderr quiet.
    def log_message(self, format: str, *args: object) -> None:
        logger.debug("serve: " + format, *args)

    @property
    def app(self) -> "ReproServer":
        return self.server.app  # type: ignore[attr-defined]

    # ------------------------------------------------------------------
    def do_GET(self) -> None:
        self._handle("GET")

    def do_POST(self) -> None:
        self._handle("POST")

    def _handle(self, method: str) -> None:
        started = time.time()
        try:
            status, payload = self.app.dispatch(method, self.path, self._body())
        except _RequestError as error:
            status, payload = error.status, {"error": str(error)}
        except Exception as error:  # never let a bug kill the connection
            logger.exception("serve: unhandled error for %s %s", method, self.path)
            status, payload = 500, {"error": f"{type(error).__name__}: {error}"}
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)
        self.app.journal_request(method, self.path, status, time.time() - started)

    def _body(self) -> Optional[dict]:
        length = int(self.headers.get("Content-Length") or 0)
        if not length:
            return None
        raw = self.rfile.read(length)
        try:
            parsed = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise _RequestError(400, f"request body is not JSON: {error}")
        if not isinstance(parsed, dict):
            raise _RequestError(400, "request body must be a JSON object")
        return parsed


class ReproServer:
    """The submit/poll/fetch service over one shared campaign store.

    Parameters
    ----------
    store:
        Store URL (``json:dir`` / ``sqlite:db``), bare directory path, or a
        live :class:`ResultStore` — shared by every sweep this server runs.
    host / port:
        Bind address; ``port=0`` picks a free port (tests read
        :attr:`port` after construction).
    jobs:
        Default worker-process count for submitted sweeps (a submission may
        override it with a ``"jobs"`` field).
    """

    def __init__(
        self,
        store: Any,
        host: str = "127.0.0.1",
        port: int = 0,
        jobs: Optional[int] = None,
    ) -> None:
        resolved = open_store(store)
        if resolved is None:
            raise ValueError("repro serve needs a store (json:dir or sqlite:db)")
        self.store: ResultStore = resolved
        self.jobs = jobs
        self.journal = TelemetryJournal(self.store.telemetry_path)
        self._lock = threading.Lock()
        self._campaigns: Dict[str, CampaignJob] = {}
        self._order: List[str] = []
        self._queue: "queue.Queue[Optional[str]]" = queue.Queue()
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.app = self  # type: ignore[attr-defined]
        self._server_thread: Optional[threading.Thread] = None
        self._worker_thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> None:
        """Start the HTTP listener and the sweep worker (both daemons)."""
        self._server_thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-serve-http", daemon=True
        )
        self._worker_thread = threading.Thread(
            target=self._drain, name="repro-serve-worker", daemon=True
        )
        self._server_thread.start()
        self._worker_thread.start()
        logger.info("serve: listening on %s (store %s)", self.url, self.store.url)

    def shutdown(self) -> None:
        """Stop accepting requests, let the current sweep finish, exit."""
        self._httpd.shutdown()
        self._httpd.server_close()
        self._queue.put(None)
        if self._worker_thread is not None:
            self._worker_thread.join()
        if self._server_thread is not None:
            self._server_thread.join()

    def serve_forever(self) -> None:
        """Foreground mode for the CLI: block until KeyboardInterrupt."""
        self.start()
        try:
            while True:
                time.sleep(3600)
        except KeyboardInterrupt:
            pass
        finally:
            self.shutdown()

    def journal_request(
        self, method: str, path: str, status: int, wall_seconds: float
    ) -> None:
        """Journal one handled request (the PR 9 telemetry layer)."""
        self.journal.serve_request(method, path, status, wall_seconds)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def dispatch(
        self, method: str, path: str, body: Optional[dict]
    ) -> Tuple[int, dict]:
        """Route one request; returns ``(status, JSON payload)``."""
        parts = [part for part in path.split("?")[0].split("/") if part]
        if len(parts) < 2 or parts[0] != "api" or parts[1] != "v1":
            raise _RequestError(404, f"unknown path {path!r}; endpoints live under /api/v1")
        route = parts[2:]
        if route == ["health"] and method == "GET":
            return 200, {"status": "ok", "store": self.store.url, "cells": len(self.store)}
        if route == ["store"] and method == "GET":
            manifest = self.store.manifest()
            return 200, {
                "store": self.store.url,
                "cells": len(self.store),
                "campaign": manifest.get("name") if manifest else None,
            }
        if route == ["campaigns"] and method == "POST":
            return self._submit(body or {})
        if route == ["campaigns"] and method == "GET":
            with self._lock:
                jobs = [self._campaigns[cid].describe() for cid in self._order]
            return 200, {"campaigns": jobs}
        if len(route) == 2 and route[0] == "campaigns" and method == "GET":
            return 200, self._job(route[1]).describe()
        if (
            len(route) == 3
            and route[0] == "campaigns"
            and route[2] == "frontier"
            and method == "GET"
        ):
            return self._frontier(route[1])
        if len(route) == 2 and route[0] == "cells" and method == "GET":
            record = self.store.record(route[1])
            if record is None:
                raise _RequestError(404, f"no stored cell {route[1]!r}")
            return 200, record
        raise _RequestError(404, f"no endpoint for {method} {path}")

    def _job(self, job_id: str) -> CampaignJob:
        with self._lock:
            job = self._campaigns.get(job_id)
        if job is None:
            raise _RequestError(404, f"unknown campaign {job_id!r}")
        return job

    # ------------------------------------------------------------------
    # Submit + worker
    # ------------------------------------------------------------------
    def _submit(self, body: dict) -> Tuple[int, dict]:
        preset = body.get("preset")
        if not isinstance(preset, str):
            raise _RequestError(
                400, f"submission needs a \"preset\" name (one of {', '.join(PRESET_NAMES)})"
            )
        try:
            spec = campaign_preset(preset)
        except KeyError as error:
            raise _RequestError(400, str(error.args[0]) if error.args else str(error))
        overrides = {}
        for field in ("benchmarks", "instructions", "seed"):
            if field in body:
                overrides[field] = body[field]
        if "warmup" in body:
            overrides["warmup_fraction"] = body["warmup"]
        if overrides:
            try:
                spec = spec.with_overrides(**overrides)
            except (TypeError, ValueError) as error:
                raise _RequestError(400, f"bad override: {error}")
        jobs = body.get("jobs", self.jobs)
        if jobs is not None and (not isinstance(jobs, int) or jobs < 1):
            raise _RequestError(400, "\"jobs\" must be a positive integer")
        with self._lock:
            job_id = f"c{len(self._order) + 1:04d}"
            job = CampaignJob(job_id, spec, jobs)
            self._campaigns[job_id] = job
            self._order.append(job_id)
        self._queue.put(job_id)
        return 202, job.describe()

    def _drain(self) -> None:
        while True:
            job_id = self._queue.get()
            if job_id is None:
                return
            self._run_job(self._job(job_id))

    def _run_job(self, job: CampaignJob) -> None:
        with self._lock:
            job.state = "running"

        def progress(event: str, cell: object, done: int, total: int) -> None:
            with self._lock:
                job.done = done

        # A dedicated journal per sweep gives each submission its own run_id
        # in the shared journal — the "second submission recomputed nothing"
        # proof reads its run_end and checks cells_computed == 0.
        journal = TelemetryJournal(self.store.telemetry_path)
        executor = ParallelExecutor(
            options=RunOptions(jobs=job.jobs, store=self.store),
            progress=progress,
            journal=journal,
        )
        try:
            results = executor.run(job.spec)
        except Exception as error:
            logger.exception("serve: campaign %s failed", job.id)
            with self._lock:
                job.state = "failed"
                job.error = f"{type(error).__name__}: {error}"
            return
        with self._lock:
            job.run_id = journal.run_id
            job.cells_computed = len(executor.completed_cells)
            job.cells_skipped = len(executor.skipped_cells)
            job.done = job.total
            job.results = {
                run.benchmark: dict(run.results) for run in results.runs
            }
            job.state = "done"

    # ------------------------------------------------------------------
    # Frontier
    # ------------------------------------------------------------------
    def _frontier(self, job_id: str) -> Tuple[int, dict]:
        """Pareto frontier of a finished sweep on the runtime/energy plane.

        The first configuration of the campaign is the normalization
        baseline (the campaign presets put the paper's Base1ldst first), so
        the baseline itself sits at ``(1.0, 1.0)``.
        """
        job = self._job(job_id)
        with self._lock:
            state, by_benchmark = job.state, job.results
        if state != "done" or by_benchmark is None:
            raise _RequestError(
                409, f"campaign {job_id!r} is {state}; the frontier needs state done"
            )
        config_names = job.spec.configuration_names()
        objectives = resolve_objectives(DEFAULT_OBJECTIVES)
        baseline_name = config_names[0]
        baseline = {
            benchmark: results[baseline_name]
            for benchmark, results in by_benchmark.items()
        }
        points = []
        for name in config_names:
            candidate = {
                benchmark: results[name]
                for benchmark, results in by_benchmark.items()
            }
            values = tuple(
                objective.evaluate(candidate, baseline) for objective in objectives
            )
            points.append(ParetoPoint(label=name, values=values))
        frontier = pareto_frontier(points)

        def as_dict(point: ParetoPoint) -> dict:
            return {
                "config": point.label,
                "values": {
                    objective.key: point.values[index]
                    for index, objective in enumerate(objectives)
                },
            }

        return 200, {
            "id": job.id,
            "campaign": job.spec.name,
            "baseline": baseline_name,
            "objectives": [objective.key for objective in objectives],
            "points": [as_dict(point) for point in points],
            "frontier": [as_dict(point) for point in frontier],
        }
