"""Shared statistics counters.

Every hardware structure in the reproduction (TLBs, way tables, cache banks,
store/merge buffers, the arbitration logic, ...) reports its activity by
incrementing named counters on a shared :class:`StatCounters` instance.  The
energy model (:mod:`repro.energy`) later converts a subset of these counters
(the *access events*) into dynamic energy, and the simulator records derived
metrics such as coverage and miss rates from them.

Counter names follow a simple ``<structure>.<event>`` convention, e.g.
``l1.tag_read``, ``utlb.hit`` or ``wt.update``.  Keeping them in one flat
namespace makes it trivial to diff two configurations and to serialise results.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterator, Mapping, Tuple


class StatCounters:
    """A flat, named collection of integer/float counters.

    The class behaves like a ``defaultdict(float)`` with a few convenience
    helpers (ratios, merging, prefix filtering) and deliberately keeps no
    reference to the structures that feed it, so a single instance can be
    shared by an entire simulated system.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, float] = defaultdict(float)

    # ------------------------------------------------------------------
    # Basic mutation
    # ------------------------------------------------------------------
    def add(self, name: str, amount: float = 1.0) -> None:
        """Increment counter ``name`` by ``amount`` (default 1)."""
        self._counters[name] += amount

    def set(self, name: str, value: float) -> None:
        """Set counter ``name`` to ``value`` explicitly."""
        self._counters[name] = value

    def get(self, name: str, default: float = 0.0) -> float:
        """Return the current value of ``name`` (``default`` if never touched)."""
        return self._counters.get(name, default)

    def __getitem__(self, name: str) -> float:
        return self._counters.get(name, 0.0)

    def __contains__(self, name: str) -> bool:
        return name in self._counters

    def __iter__(self) -> Iterator[str]:
        return iter(self._counters)

    def __len__(self) -> int:
        return len(self._counters)

    # ------------------------------------------------------------------
    # Aggregation helpers
    # ------------------------------------------------------------------
    def ratio(self, numerator: str, denominator: str) -> float:
        """Return ``numerator / denominator`` or 0.0 if the denominator is 0."""
        denom = self.get(denominator)
        if denom == 0:
            return 0.0
        return self.get(numerator) / denom

    def total(self, *names: str) -> float:
        """Sum of the given counters."""
        return sum(self.get(name) for name in names)

    def with_prefix(self, prefix: str) -> Dict[str, float]:
        """Return all counters whose name starts with ``prefix``."""
        return {k: v for k, v in self._counters.items() if k.startswith(prefix)}

    def merge(self, other: "StatCounters") -> None:
        """Add every counter of ``other`` into this instance."""
        for name, value in other.items():
            self._counters[name] += value

    def items(self) -> Iterator[Tuple[str, float]]:
        """Iterate over ``(name, value)`` pairs."""
        return iter(self._counters.items())

    def as_dict(self) -> Dict[str, float]:
        """Snapshot of all counters as a plain dictionary."""
        return dict(self._counters)

    def clear(self) -> None:
        """Reset every counter."""
        self._counters.clear()

    def update_from(self, mapping: Mapping[str, float]) -> None:
        """Add the values of ``mapping`` into the counters."""
        for name, value in mapping.items():
            self._counters[name] += value

    # ------------------------------------------------------------------
    # Presentation
    # ------------------------------------------------------------------
    def summary(self, prefix: str = "") -> str:
        """Human-readable multi-line summary, optionally filtered by prefix."""
        lines = []
        for name in sorted(self._counters):
            if prefix and not name.startswith(prefix):
                continue
            value = self._counters[name]
            if float(value).is_integer():
                lines.append(f"{name:<40s} {int(value):>14d}")
            else:
                lines.append(f"{name:<40s} {value:>14.4f}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"StatCounters({len(self._counters)} counters)"
