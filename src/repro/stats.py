"""Shared statistics counters.

Every hardware structure in the reproduction (TLBs, way tables, cache banks,
store/merge buffers, the arbitration logic, ...) reports its activity by
incrementing named counters on a shared :class:`StatCounters` instance.  The
energy model (:mod:`repro.energy`) later converts a subset of these counters
(the *access events*) into dynamic energy, and the simulator records derived
metrics such as coverage and miss rates from them.

Counter names follow a simple ``<structure>.<event>`` convention, e.g.
``l1.tag_read``, ``utlb.hit`` or ``wt.update``.  Keeping them in one flat
namespace makes it trivial to diff two configurations and to serialise results.

Internally the counters are *integer indexed*: every name is interned once
into a slot of a flat value array, and hot structures resolve their counter
names to slot handles at construction time (:meth:`StatCounters.handle`) so
the per-access increment (:meth:`StatCounters.bump`) is a bare list index —
no string hashing on the simulation hot path.  The name-keyed API
(:meth:`add`, :meth:`get`, ...) is unchanged and backed by the same slots;
:meth:`as_dict` flushes the live slots back into a plain dictionary at the
end of a run.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Tuple


class StatCounters:
    """A flat, named collection of integer/float counters.

    The class behaves like a ``defaultdict(float)`` with a few convenience
    helpers (ratios, merging, prefix filtering) and deliberately keeps no
    reference to the structures that feed it, so a single instance can be
    shared by an entire simulated system.

    A counter is *live* once it has been touched by :meth:`add`, :meth:`set`
    or :meth:`bump`; :meth:`clear` resets every slot to zero and not-live
    without invalidating previously issued handles, which is what lets the
    simulator discard warm-up statistics while the hardware structures keep
    their resolved handles.
    """

    __slots__ = ("_index", "_names", "_values", "_live")

    def __init__(self) -> None:
        self._index: Dict[str, int] = {}
        self._names: List[str] = []
        self._values: List[float] = []
        self._live: List[bool] = []

    # ------------------------------------------------------------------
    # Slot interning (the integer-indexed hot path)
    # ------------------------------------------------------------------
    def handle(self, name: str) -> int:
        """Intern ``name`` and return its slot index for :meth:`bump`.

        Handles are stable for the lifetime of the instance (they survive
        :meth:`clear`); hot structures resolve them once at construction.
        """
        slot = self._index.get(name)
        if slot is None:
            slot = len(self._names)
            self._index[name] = slot
            self._names.append(name)
            self._values.append(0.0)
            self._live.append(False)
        return slot

    def bump(self, slot: int, amount: float = 1.0) -> None:
        """Increment the counter at ``slot`` (from :meth:`handle`) by ``amount``."""
        self._values[slot] += amount
        self._live[slot] = True

    def bump_many(self, pairs) -> None:
        """Apply a precomputed ``((slot, amount), ...)`` batch in one call.

        Hot structures with a fixed per-access counter pattern (e.g. a
        conventional cache read touching ctrl/tag/data/access counters)
        build the tuple once at construction and flush it per event.
        """
        values = self._values
        live = self._live
        for slot, amount in pairs:
            values[slot] += amount
            live[slot] = True

    # ------------------------------------------------------------------
    # Basic mutation
    # ------------------------------------------------------------------
    def add(self, name: str, amount: float = 1.0) -> None:
        """Increment counter ``name`` by ``amount`` (default 1)."""
        slot = self.handle(name)
        self._values[slot] += amount
        self._live[slot] = True

    def set(self, name: str, value: float) -> None:
        """Set counter ``name`` to ``value`` explicitly."""
        slot = self.handle(name)
        self._values[slot] = value
        self._live[slot] = True

    def get(self, name: str, default: float = 0.0) -> float:
        """Return the current value of ``name`` (``default`` if never touched)."""
        slot = self._index.get(name)
        if slot is None or not self._live[slot]:
            return default
        return self._values[slot]

    def __getitem__(self, name: str) -> float:
        return self.get(name, 0.0)

    def __contains__(self, name: str) -> bool:
        slot = self._index.get(name)
        return slot is not None and self._live[slot]

    def __iter__(self) -> Iterator[str]:
        return (name for slot, name in enumerate(self._names) if self._live[slot])

    def __len__(self) -> int:
        return sum(1 for live in self._live if live)

    # ------------------------------------------------------------------
    # Aggregation helpers
    # ------------------------------------------------------------------
    def ratio(self, numerator: str, denominator: str) -> float:
        """Return ``numerator / denominator`` or 0.0 if the denominator is 0."""
        denom = self.get(denominator)
        if denom == 0:
            return 0.0
        return self.get(numerator) / denom

    def total(self, *names: str) -> float:
        """Sum of the given counters."""
        return sum(self.get(name) for name in names)

    def with_prefix(self, prefix: str) -> Dict[str, float]:
        """Return all counters whose name starts with ``prefix``."""
        return {
            name: self._values[slot]
            for slot, name in enumerate(self._names)
            if self._live[slot] and name.startswith(prefix)
        }

    def merge(self, other: "StatCounters") -> None:
        """Add every counter of ``other`` into this instance."""
        for name, value in other.items():
            self.add(name, value)

    def items(self) -> Iterator[Tuple[str, float]]:
        """Iterate over ``(name, value)`` pairs of live counters."""
        return (
            (name, self._values[slot])
            for slot, name in enumerate(self._names)
            if self._live[slot]
        )

    def as_dict(self) -> Dict[str, float]:
        """Snapshot of all live counters as a plain dictionary (the flush)."""
        return {
            name: self._values[slot]
            for slot, name in enumerate(self._names)
            if self._live[slot]
        }

    def clear(self) -> None:
        """Reset every counter to zero (issued handles stay valid).

        The reset happens *in place*: hot structures may cache references to
        the value/liveness lists (see e.g. the interfaces' inlined bumps),
        and those references must survive a warm-up discard.
        """
        values = self._values
        live = self._live
        for slot in range(len(values)):
            values[slot] = 0.0
            live[slot] = False

    def update_from(self, mapping: Mapping[str, float]) -> None:
        """Add the values of ``mapping`` into the counters."""
        for name, value in mapping.items():
            self.add(name, value)

    # ------------------------------------------------------------------
    # Presentation
    # ------------------------------------------------------------------
    def summary(self, prefix: str = "") -> str:
        """Human-readable multi-line summary, optionally filtered by prefix."""
        lines = []
        for name in sorted(self):
            if prefix and not name.startswith(prefix):
                continue
            value = self.get(name)
            if float(value).is_integer():
                lines.append(f"{name:<40s} {int(value):>14d}")
            else:
                lines.append(f"{name:<40s} {value:>14.4f}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"StatCounters({len(self)} counters)"
