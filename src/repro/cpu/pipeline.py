"""Cycle-level out-of-order pipeline driving an L1 interface model.

The pipeline implements the processor-side behaviour the paper's evaluation
depends on (Table II): a 168-entry ROB, 6-wide fetch/dispatch, 8-wide issue
and in-order commit.  Memory instructions are handed to an *L1 interface
model* (Base1ldst, Base2ld1st or MALEC) which owns the address-computation
slots, the load/store/merge buffers, translation and the cache; the pipeline
only sees per-cycle slot availability and load-completion notifications.

The interface object must provide the following methods (duck-typed so the
interface package does not need to import this module)::

    begin_cycle(cycle)
    can_accept_load() / can_accept_store()        -> bool
    reserve_load_slot() / reserve_store_slot()    -> bool   (per-cycle slots)
    submit_load(tag, address, size, cycle)
    submit_store(tag, address, size, cycle)
    commit_store(tag, cycle)
    tick(cycle)  -> list[(tag, data_ready_cycle)]
    finalize(cycle)                                (drain write buffers)

Execution time is the cycle in which the last instruction commits, which is
what Fig. 4a normalizes across configurations.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.cpu.instruction import Instruction, InstructionKind
from repro.cpu.rob import ReorderBuffer, RobEntry
from repro.stats import StatCounters


@dataclass
class PipelineParametersLite:
    """Pipeline widths (Table II defaults); kept separate from sim config to
    allow unit tests to build tiny pipelines."""

    rob_entries: int = 168
    fetch_width: int = 6
    issue_width: int = 8
    commit_width: int = 6
    compute_latency: int = 1


@dataclass
class PipelineResult:
    """Summary of one pipeline run."""

    cycles: int
    instructions: int
    loads: int
    stores: int
    computes: int

    @property
    def ipc(self) -> float:
        """Committed instructions per cycle."""
        return self.instructions / self.cycles if self.cycles else 0.0


class OutOfOrderPipeline:
    """Dependency-driven, resource-limited out-of-order execution model."""

    def __init__(
        self,
        interface,
        params: PipelineParametersLite = PipelineParametersLite(),
        stats: Optional[StatCounters] = None,
        max_cycles: Optional[int] = None,
    ) -> None:
        self.interface = interface
        self.params = params
        self.stats = stats if stats is not None else StatCounters()
        self.max_cycles = max_cycles
        self.rob = ReorderBuffer(params.rob_entries)

    # ------------------------------------------------------------------
    def run(self, trace: Iterable[Instruction]) -> PipelineResult:
        """Execute ``trace`` to completion and return the cycle count."""
        instructions = list(trace)
        for seq, instruction in enumerate(instructions):
            if instruction.seq < 0:
                instruction.seq = seq
        total = len(instructions)
        if total == 0:
            return PipelineResult(cycles=0, instructions=0, loads=0, stores=0, computes=0)

        params = self.params
        max_cycles = self.max_cycles or (200 * total + 100_000)

        next_fetch = 0
        committed = 0
        cycle = 0
        last_commit_cycle = 0

        #: entries indexed by sequence number (only in-flight ones are kept)
        in_flight: Dict[int, RobEntry] = {}
        #: producer seq -> consumer entries waiting on it
        consumers: Dict[int, List[RobEntry]] = {}
        #: completed producer seqs (results available); kept until no longer needed
        produced: set = set()
        #: min-heap of ready-to-issue sequence numbers (oldest first)
        ready_heap: List[int] = []
        #: memory ops that were ready but found no slot this cycle
        deferred: List[int] = []
        #: min-heap of (completion_cycle, seq) events
        completion_events: List[Tuple[int, int]] = []
        #: stores must claim store-buffer entries in program order (as real
        #: store queues allocate at dispatch); otherwise younger stores can
        #: fill the SB and deadlock an older store at the ROB head.
        store_order: List[int] = []
        store_order_head = 0

        loads = stores = computes = 0

        while committed < total:
            if cycle > max_cycles:
                raise RuntimeError(
                    f"pipeline exceeded {max_cycles} cycles; likely deadlock "
                    f"({committed}/{total} committed)"
                )
            self.interface.begin_cycle(cycle)

            # ----------------------------------------------------------
            # 1. Retire completion events scheduled for this cycle.
            # ----------------------------------------------------------
            while completion_events and completion_events[0][0] <= cycle:
                _, seq = heapq.heappop(completion_events)
                entry = in_flight.get(seq)
                if entry is None or entry.completed:
                    continue
                self._complete(entry, cycle, produced, consumers, ready_heap)

            # ----------------------------------------------------------
            # 2. Issue ready instructions (oldest first, up to issue width).
            # ----------------------------------------------------------
            if deferred:
                for seq in deferred:
                    heapq.heappush(ready_heap, seq)
                deferred = []
            issued = 0
            postponed: List[int] = []
            loads_blocked = stores_blocked = False
            while ready_heap and issued < params.issue_width:
                seq = heapq.heappop(ready_heap)
                entry = in_flight.get(seq)
                if entry is None or entry.issued:
                    continue
                instruction = entry.instruction
                if instruction.kind is InstructionKind.COMPUTE:
                    entry.issued = True
                    entry.issue_cycle = cycle
                    heapq.heappush(
                        completion_events, (cycle + params.compute_latency, seq)
                    )
                    issued += 1
                elif instruction.is_load:
                    if (
                        not loads_blocked
                        and self.interface.can_accept_load()
                        and self.interface.reserve_load_slot()
                    ):
                        entry.issued = True
                        entry.issue_cycle = cycle
                        self.interface.submit_load(
                            seq, instruction.address, instruction.size, cycle
                        )
                        issued += 1
                    else:
                        # Out of load slots this cycle: keep the load for the
                        # next cycle but let younger compute work proceed.
                        loads_blocked = True
                        postponed.append(seq)
                else:  # store
                    in_store_order = (
                        store_order_head < len(store_order)
                        and store_order[store_order_head] == seq
                    )
                    if (
                        not stores_blocked
                        and in_store_order
                        and self.interface.can_accept_store()
                        and self.interface.reserve_store_slot()
                    ):
                        store_order_head += 1
                        entry.issued = True
                        entry.issue_cycle = cycle
                        self.interface.submit_store(
                            seq, instruction.address, instruction.size, cycle
                        )
                        # Stores produce no register value: they are complete
                        # (for commit purposes) once their address is computed.
                        heapq.heappush(completion_events, (cycle + 1, seq))
                        issued += 1
                    else:
                        stores_blocked = True
                        postponed.append(seq)
            deferred.extend(postponed)
            self.stats.add("pipeline.issued", issued)

            # ----------------------------------------------------------
            # 3. Advance the interface; schedule load completions.
            # ----------------------------------------------------------
            for tag, ready_cycle in self.interface.tick(cycle):
                entry = in_flight.get(tag)
                if entry is None or entry.completed:
                    continue
                heapq.heappush(completion_events, (max(ready_cycle, cycle + 1), tag))

            # ----------------------------------------------------------
            # 4. Commit in order.
            # ----------------------------------------------------------
            for entry in self.rob.commit_ready(params.commit_width):
                committed += 1
                last_commit_cycle = cycle
                instruction = entry.instruction
                if instruction.is_load:
                    loads += 1
                elif instruction.is_store:
                    stores += 1
                    self.interface.commit_store(instruction.seq, cycle)
                else:
                    computes += 1
                in_flight.pop(instruction.seq, None)
                consumers.pop(instruction.seq, None)
            self.stats.add("pipeline.cycles")

            # ----------------------------------------------------------
            # 5. Fetch / dispatch into the ROB.
            # ----------------------------------------------------------
            fetched = 0
            while (
                fetched < params.fetch_width
                and next_fetch < total
                and not self.rob.full
            ):
                instruction = instructions[next_fetch]
                entry = self.rob.dispatch(instruction, cycle)
                in_flight[instruction.seq] = entry
                if instruction.is_store:
                    store_order.append(instruction.seq)
                pending = 0
                for producer in instruction.producers():
                    if producer in produced or producer not in in_flight:
                        continue
                    consumers.setdefault(producer, []).append(entry)
                    pending += 1
                entry.pending_deps = pending
                if pending == 0:
                    heapq.heappush(ready_heap, instruction.seq)
                next_fetch += 1
                fetched += 1
            self.stats.add("pipeline.dispatched", fetched)

            cycle += 1

        total_cycles = last_commit_cycle + 1
        self.interface.finalize(total_cycles)
        self.stats.set("pipeline.total_cycles", total_cycles)
        self.stats.set("pipeline.committed", committed)
        return PipelineResult(
            cycles=total_cycles,
            instructions=total,
            loads=loads,
            stores=stores,
            computes=computes,
        )

    # ------------------------------------------------------------------
    def _complete(
        self,
        entry: RobEntry,
        cycle: int,
        produced: set,
        consumers: Dict[int, List[RobEntry]],
        ready_heap: List[int],
    ) -> None:
        """Mark an instruction complete and wake its consumers."""
        entry.completed = True
        entry.complete_cycle = cycle
        seq = entry.instruction.seq
        produced.add(seq)
        for consumer in consumers.pop(seq, []):
            consumer.pending_deps -= 1
            if consumer.pending_deps == 0 and not consumer.issued:
                heapq.heappush(ready_heap, consumer.instruction.seq)
