"""Cycle-level out-of-order pipeline driving an L1 interface model.

The pipeline implements the processor-side behaviour the paper's evaluation
depends on (Table II): a 168-entry ROB, 6-wide fetch/dispatch, 8-wide issue
and in-order commit.  Memory instructions are handed to an *L1 interface
model* (Base1ldst, Base2ld1st or MALEC) which owns the address-computation
slots, the load/store/merge buffers, translation and the cache; the pipeline
only sees per-cycle slot availability and load-completion notifications.

The interface object must provide the following methods (duck-typed so the
interface package does not need to import this module)::

    begin_cycle(cycle)
    can_accept_load() / can_accept_store()        -> bool
    reserve_load_slot() / reserve_store_slot()    -> bool   (per-cycle slots)
    submit_load(tag, address, size, cycle)
    submit_store(tag, address, size, cycle)
    commit_store(tag, cycle)
    tick(cycle)  -> list[(tag, data_ready_cycle)]
    finalize(cycle)                                (drain write buffers)
    quiescent() -> bool                            (optional, idle detection)

Execution time is the cycle in which the last instruction commits, which is
what Fig. 4a normalizes across configurations.

Event-driven scheduler (default)
--------------------------------
``run`` normally executes the trace through an event-driven loop built on
:class:`repro.sim.events.EventWheel`: instead of polling every stage every
cycle, each source of future activity registers the cycle it next acts —

* instruction completions (computes, stores, load data returns) sit in the
  wheel (or in a dedicated next-cycle bucket for the dominant one-cycle
  case);
* the issue stage runs only while ready or deferred instructions exist;
* the L1 interface ticks only while it reports itself non-quiescent (it
  aggregates its components — load queue, store buffer, merge buffer, input
  buffer, cache banks — into that single next-activity signal; a submit or
  store commit re-arms it);
* commit and fetch are gated by their own cheap occupancy checks.

When no stage has work in the current cycle and the wheel holds a future
event, the clock jumps straight to it — the PR-2 *idle fast-forward* is the
degenerate case of "no event scheduled before the next completion".  All
skipped cycles are accounted into ``pipeline.cycles`` exactly as if they had
been simulated, and intra-cycle ordering is pinned (fixed stage order, FIFO
buckets, seq-ordered ready heap), so results are **bit-identical** to the
cycle-driven reference loop; only wall time changes.

The cycle-driven loop is retained for identity testing: construct the
pipeline with ``scheduler="cycle"`` (or ``enable_fast_forward=False``, which
also disables the idle fast-forward) to poll every component every cycle
exactly as the PR-2 code did.  ``fast_forwarded_cycles`` records how many
cycles either loop skipped.

Hot-path notes
--------------
``run`` is the innermost loop of every sweep, so its bookkeeping is arrays
indexed by sequence number rather than dictionaries (``in_flight``,
``produced``, ``consumers``), instructions completing one cycle out
(computes, stores, L1-hit notifications) take a bucket list instead of the
event wheel, and per-cycle statistics are accumulated in locals and flushed
once at the end of the run (sums of integers, so the flushed totals are
bit-identical to per-cycle accumulation).
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass
from typing import Deque, Iterable, List, Optional, Tuple

from repro.cpu.instruction import Instruction, build_pipeline_arrays
from repro.cpu.rob import ReorderBuffer, RobEntry
from repro.sim.events import EventWheel
from repro.stats import StatCounters

#: recognised values of the ``scheduler`` constructor argument
SCHEDULERS = ("event", "cycle")


@dataclass
class PipelineParametersLite:
    """Pipeline widths (Table II defaults); kept separate from sim config to
    allow unit tests to build tiny pipelines."""

    rob_entries: int = 168
    fetch_width: int = 6
    issue_width: int = 8
    commit_width: int = 6
    compute_latency: int = 1


@dataclass
class PipelineResult:
    """Summary of one pipeline run."""

    cycles: int
    instructions: int
    loads: int
    stores: int
    computes: int

    @property
    def ipc(self) -> float:
        """Committed instructions per cycle."""
        return self.instructions / self.cycles if self.cycles else 0.0


class OutOfOrderPipeline:
    """Dependency-driven, resource-limited out-of-order execution model."""

    def __init__(
        self,
        interface,
        params: PipelineParametersLite = PipelineParametersLite(),
        stats: Optional[StatCounters] = None,
        max_cycles: Optional[int] = None,
        enable_fast_forward: bool = True,
        scheduler: str = "event",
        collector=None,
        kernel=None,
    ) -> None:
        if scheduler not in SCHEDULERS:
            raise ValueError(f"scheduler {scheduler!r} not in {SCHEDULERS}")
        self.interface = interface
        self.params = params
        self.stats = stats if stats is not None else StatCounters()
        self.max_cycles = max_cycles
        self.rob = ReorderBuffer(params.rob_entries)
        self.enable_fast_forward = enable_fast_forward
        self.scheduler = scheduler
        #: optional repro.obs.collector.RunCollector (duck-typed so this
        #: module does not import obs).  Strictly observational: category
        #: counts and occupancy samples accumulate in loop locals and flush
        #: once per run, and nothing it collects feeds back into stats or
        #: results — attaching one cannot perturb bit-identity.
        self.collector = collector
        #: optional specialized kernel entry point (see repro.sim.kernels):
        #: kernel_run(pipeline, seqs, total, capacity, trace_arrays) returning
        #: a PipelineResult, or None to decline (runtime guard mismatch), in
        #: which case the generic event-driven loop runs instead.  Only
        #: consulted on the event-scheduler path.
        self.kernel = kernel
        #: whether the last run() executed through the specialized kernel
        self.kernel_used = False
        #: whether a kernel was attached but declined (guards returned None)
        self.kernel_fallback = False
        #: idle cycles skipped (fast-forward / event jumps) in the last run()
        self.fast_forwarded_cycles = 0

    # ------------------------------------------------------------------
    def run(self, trace: Iterable[Instruction], trace_arrays=None) -> PipelineResult:
        """Execute ``trace`` to completion and return the cycle count.

        ``trace_arrays`` optionally carries the seq-indexed
        ``(kinds, addresses, sizes, producers)`` arrays of the *full* trace
        (see :meth:`repro.workloads.trace.MemoryTrace.pipeline_arrays`); when
        omitted they are derived here.  The event-driven loop reads these
        arrays instead of per-instruction attributes.

        Columnar input — a :class:`~repro.workloads.columnar.ColumnarTrace`
        or one of its windows (``run_slice``) — is recognised by its
        ``columnar_pipeline_plan()`` protocol and executes without any
        Instruction objects at all: the fetch stage walks a ``range`` of
        sequence numbers and every fact comes from the column-built arrays.
        The cycle-driven reference loop keeps its per-instruction shape, so
        columnar input to ``scheduler="cycle"`` materializes objects first
        (identity testing only; not a perf path).
        """
        plan = getattr(trace, "columnar_pipeline_plan", None)
        self.kernel_used = False
        self.kernel_fallback = False
        if plan is not None:
            seqs, total, capacity, trace_arrays = plan()
            self.fast_forwarded_cycles = 0
            if total == 0:
                return PipelineResult(
                    cycles=0, instructions=0, loads=0, stores=0, computes=0
                )
            if self.scheduler == "cycle" or not self.enable_fast_forward:
                return self._run_cycle_driven(
                    trace.materialize_instructions(), total, capacity
                )
            kernel = self.kernel
            if kernel is not None:
                result = kernel(self, seqs, total, capacity, trace_arrays)
                if result is not None:
                    self.kernel_used = True
                    return result
                self.kernel_fallback = True
            return self._run_event_driven(seqs, total, capacity, trace_arrays)
        instructions = list(trace)
        total = len(instructions)
        self.fast_forwarded_cycles = 0
        if total == 0:
            return PipelineResult(cycles=0, instructions=0, loads=0, stores=0, computes=0)
        # Sequence numbers need not start at zero (a warmed-up run receives a
        # slice of a trace whose seqs are global positions); the seq-indexed
        # arrays below are sized to the largest seq in this run, and the
        # event-driven fetch stage walks the seq list built here instead of
        # touching Instruction attributes again.
        seqs = []
        seq_append = seqs.append
        capacity = total
        for position, instruction in enumerate(instructions):
            seq = instruction.seq
            if seq < 0:
                seq = instruction.seq = position
            seq_append(seq)
            if seq >= capacity:
                capacity = seq + 1
        # ``enable_fast_forward=False`` selects the cycle-driven reference
        # loop outright: it is what "no skipping at all" means, and the
        # identity tests rely on it polling every component every cycle.
        if self.scheduler == "cycle" or not self.enable_fast_forward:
            return self._run_cycle_driven(instructions, total, capacity)
        if trace_arrays is None or len(trace_arrays[0]) < capacity:
            trace_arrays = build_pipeline_arrays(instructions, capacity)
        kernel = self.kernel
        if kernel is not None:
            result = kernel(self, seqs, total, capacity, trace_arrays)
            if result is not None:
                self.kernel_used = True
                return result
            self.kernel_fallback = True
        return self._run_event_driven(seqs, total, capacity, trace_arrays)


    # ------------------------------------------------------------------
    # Event-driven scheduler (default)
    # ------------------------------------------------------------------
    def _run_event_driven(
        self,
        seqs,
        total: int,
        capacity: int,
        trace_arrays,
    ) -> PipelineResult:
        """Event-driven execution: stages run only when they have events.

        Bookkeeping is data-oriented: instead of per-instruction RobEntry
        objects, parallel seq-indexed arrays carry the issued/completed flags
        and dependency counts, and the ROB itself is a deque of seqs.  Flag
        reads become byte loads, which matters at one-to-two million
        instruction events per second of sweep.  ``seqs`` is any indexable
        of the run's sequence numbers in fetch order — a list for object
        traces, a plain ``range`` for columnar windows — the loop's only
        view of the trace besides ``trace_arrays``.
        """
        params = self.params
        max_cycles = self.max_cycles or (200 * total + 100_000)
        issue_width = params.issue_width
        fetch_width = params.fetch_width
        commit_width = params.commit_width
        compute_latency = params.compute_latency

        interface = self.interface
        begin_cycle = interface.begin_cycle
        can_accept_load = interface.can_accept_load
        can_accept_store = interface.can_accept_store
        reserve_load_slot = interface.reserve_load_slot
        reserve_store_slot = interface.reserve_store_slot
        submit_load = interface.submit_load
        submit_store = interface.submit_store
        commit_store = interface.commit_store
        tick = interface.tick
        # Optional protocol extension: an interface without quiescent() is
        # treated as active every cycle (unit-test stubs keep working; they
        # simply never skip a tick and never allow a clock jump).
        quiescent = getattr(interface, "quiescent", None)

        rob_entries = self.rob.entries
        #: the ROB as a deque of seqs (program order); self.rob stays empty —
        #: the cycle-driven reference loop still goes through its RobEntry API
        rob_q: Deque[int] = deque()
        rob_len = 0  # len(rob_q), maintained inline (hot gate checks)
        heappush = heapq.heappush
        heappop = heapq.heappop

        #: completion events further than one cycle out live in the wheel
        #: (single producer: bare payloads, FIFO per bucket)
        wheel = EventWheel(single_component=True)
        schedule = wheel.schedule
        pop_due = wheel.pop_due
        #: local mirror of wheel.next_cycle() (int comparisons on the hot path)
        NEVER = float("inf")
        wheel_next = NEVER

        next_fetch = 0
        committed = 0
        cycle = 0
        last_commit_cycle = 0

        #: seq -> dispatched-and-not-yet-committed flag
        in_rob = bytearray(capacity)
        #: seq -> issued flag
        issued_f = bytearray(capacity)
        #: seq -> completed flag
        completed_f = bytearray(capacity)
        #: seq -> 1 once the instruction's result is available
        produced = bytearray(capacity)
        #: seq -> outstanding producer count while dispatched
        pending_deps = [0] * capacity
        #: seq-indexed instruction facts (shared across runs of one trace)
        kinds, addresses, sizes, producers_of = trace_arrays
        #: seq -> waiting consumer seqs (None when nobody waits)
        consumers: List[Optional[List[int]]] = [None] * capacity
        #: instructions ready at dispatch, in fetch order (ascending seq) —
        #: the common case, kept out of the heap entirely
        ready_fifo: Deque[int] = deque()
        #: min-heap of seqs woken by completing producers (oldest first)
        ready_heap: List[int] = []
        #: memory ops that were ready but found no slot this cycle, plus any
        #: ready instructions beyond this cycle's issue width (ascending seq)
        deferred: List[int] = []
        deferred_has_load = False
        #: True while ``deferred`` may hold more than slot-starved stores
        #: (issue-width leftovers of unknown kind block clock jumps)
        deferred_blocking = False
        #: seqs completing exactly next cycle (computes, stores, L1 hits)
        due_next: List[int] = []
        #: stores must claim store-buffer entries in program order (as real
        #: store queues allocate at dispatch); otherwise younger stores can
        #: fill the SB and deadlock an older store at the ROB head.
        store_order: List[int] = []
        store_order_head = 0

        loads = stores = computes = 0
        # Per-cycle counters accumulated locally, flushed at the end of run().
        cycles_counted = 0
        issued_total = 0
        dispatched_total = 0

        bucket_latency_ok = compute_latency == 1

        # Observation plumbing: every cycle is classified into exactly one
        # category (deltas of the loop's own counters decide which), tallied
        # in locals and flushed into the collector once after the run.
        collector = self.collector
        collecting = collector is not None
        cat_commit = cat_issue = cat_frontend = 0
        cat_memory = cat_buffer = cat_idle = cat_ff = 0
        events_seen = 0
        sample_every = collector.sample_every if collecting else 0
        next_sample = sample_every if sample_every else NEVER
        if sample_every:
            occ_lq = getattr(interface, "load_queue", None)
            occ_sb = getattr(interface, "store_buffer", None)
            occ_mb = getattr(interface, "merge_buffer", None)

        # The interface may carry state from a warm-up run of the same trace;
        # start ticking it unless it positively reports itself idle.
        interface_active = quiescent is None or not quiescent()

        while committed < total:
            if cycle > max_cycles:
                raise RuntimeError(
                    f"pipeline exceeded {max_cycles} cycles; likely deadlock "
                    f"({committed}/{total} committed)"
                )
            if collecting:
                commit_before = committed
                issue_before = issued_total
                fetch_before = next_fetch

            # ----------------------------------------------------------
            # 1. Retire completions scheduled for this cycle.  Processing
            #    order within one cycle does not affect outcomes (waking a
            #    consumer only pushes onto the ready heap, which issues in
            #    seq order regardless), so the bucket of one-cycle
            #    completions is drained before the wheel.
            # ----------------------------------------------------------
            if due_next:
                due_now = due_next
                due_next = []
                if collecting:
                    events_seen += len(due_now)
                for seq in due_now:
                    if completed_f[seq]:
                        continue
                    completed_f[seq] = 1
                    produced[seq] = 1
                    waiting = consumers[seq]
                    if waiting is not None:
                        consumers[seq] = None
                        for consumer in waiting:
                            left = pending_deps[consumer] - 1
                            pending_deps[consumer] = left
                            if left == 0 and not issued_f[consumer]:
                                heappush(ready_heap, consumer)
            if wheel_next <= cycle:
                wheel_due = pop_due(cycle)
                if collecting:
                    events_seen += len(wheel_due)
                for seq in wheel_due:
                    if completed_f[seq]:
                        continue
                    completed_f[seq] = 1
                    produced[seq] = 1
                    waiting = consumers[seq]
                    if waiting is not None:
                        consumers[seq] = None
                        for consumer in waiting:
                            left = pending_deps[consumer] - 1
                            pending_deps[consumer] = left
                            if left == 0 and not issued_f[consumer]:
                                heappush(ready_heap, consumer)
                wheel_next = wheel.next_cycle()
                if wheel_next is None:
                    wheel_next = NEVER

            # ----------------------------------------------------------
            # 2. Issue ready instructions (oldest first, up to issue width).
            #    The stage only runs while instructions are ready/deferred.
            #    Three ascending sources are merged by seq — the deferred
            #    list, the dispatch FIFO and the wake heap — so the issue
            #    order is identical to popping one min-heap of all of them,
            #    without funnelling every instruction through heap churn.
            # ----------------------------------------------------------
            if ready_fifo or ready_heap or deferred:
                begin_cycle(cycle)  # reset the per-cycle slot counters
                issued = 0
                postponed: List[int] = []
                postponed_load = False
                loads_blocked = stores_blocked = False
                di = 0
                dn = len(deferred)
                # Neither wakes nor deferrals can appear mid-issue, so the
                # single-source common case (dispatch FIFO only) is decided
                # once per cycle and skips the three-way merge entirely.
                simple = not dn and not ready_heap
                while issued < issue_width:
                    if simple:
                        if not ready_fifo:
                            break
                        seq = ready_fifo.popleft()
                    else:
                        s_def = deferred[di] if di < dn else NEVER
                        s_fifo = ready_fifo[0] if ready_fifo else NEVER
                        s_heap = ready_heap[0] if ready_heap else NEVER
                        if s_def <= s_fifo:
                            if s_def <= s_heap:
                                if s_def is NEVER:
                                    break  # every source is empty
                                seq = s_def
                                di += 1
                            else:
                                seq = heappop(ready_heap)
                        elif s_fifo <= s_heap:
                            seq = ready_fifo.popleft()
                        else:
                            seq = heappop(ready_heap)
                    if not in_rob[seq] or issued_f[seq]:
                        continue
                    kind = kinds[seq]
                    if kind == 0:  # compute
                        issued_f[seq] = 1
                        if bucket_latency_ok:
                            due_next.append(seq)
                        else:
                            target = cycle + compute_latency
                            schedule(target, seq)
                            if target < wheel_next:
                                wheel_next = target
                        issued += 1
                    elif kind == 1:  # load
                        if (
                            not loads_blocked
                            and can_accept_load()
                            and reserve_load_slot()
                        ):
                            issued_f[seq] = 1
                            submit_load(seq, addresses[seq], sizes[seq], cycle)
                            interface_active = True
                            issued += 1
                        else:
                            # Out of load slots this cycle: keep the load for
                            # the next cycle but let younger computes proceed.
                            loads_blocked = True
                            postponed.append(seq)
                            postponed_load = True
                    else:  # store
                        in_store_order = (
                            store_order_head < len(store_order)
                            and store_order[store_order_head] == seq
                        )
                        if (
                            not stores_blocked
                            and in_store_order
                            and can_accept_store()
                            and reserve_store_slot()
                        ):
                            store_order_head += 1
                            issued_f[seq] = 1
                            submit_store(seq, addresses[seq], sizes[seq], cycle)
                            interface_active = True
                            # Stores produce no register value: they are
                            # complete (for commit) once their address is
                            # computed.
                            due_next.append(seq)
                            issued += 1
                        else:
                            stores_blocked = True
                            postponed.append(seq)
                # Unattempted deferred leftovers (issue width exhausted) stay
                # deferred; they are younger than everything in ``postponed``
                # (the merge consumed strictly older seqs first), so appending
                # keeps the list ascending.  Their kind is unknown here, so
                # they block clock jumps until re-examined.
                if di < dn:
                    postponed += deferred[di:]
                    deferred_blocking = True
                else:
                    deferred_blocking = False
                deferred = postponed
                deferred_has_load = postponed_load
                issued_total += issued

            # ----------------------------------------------------------
            # 3. Advance the interface while it has scheduled activity;
            #    schedule load completions.
            # ----------------------------------------------------------
            if interface_active:
                for tag, ready_cycle in tick(cycle):
                    if not 0 <= tag < capacity or not in_rob[tag] or completed_f[tag]:
                        continue
                    if ready_cycle <= cycle + 1:
                        due_next.append(tag)
                    else:
                        schedule(ready_cycle, tag)
                        if ready_cycle < wheel_next:
                            wheel_next = ready_cycle

            # ----------------------------------------------------------
            # 4. Commit in order.
            # ----------------------------------------------------------
            if rob_q and completed_f[rob_q[0]]:
                commits = 0
                while commits < commit_width and rob_q and completed_f[rob_q[0]]:
                    seq = rob_q.popleft()
                    rob_len -= 1
                    commits += 1
                    committed += 1
                    last_commit_cycle = cycle
                    kind = kinds[seq]
                    if kind == 1:
                        loads += 1
                    elif kind == 2:
                        stores += 1
                        commit_store(seq, cycle)
                        # The committed store must now drain SB -> MB -> cache.
                        interface_active = True
                    else:
                        computes += 1
                    in_rob[seq] = 0
                    consumers[seq] = None

            cycles_counted += 1

            # ----------------------------------------------------------
            # 5. Fetch / dispatch into the ROB.
            # ----------------------------------------------------------
            if next_fetch < total:
                fetched = 0
                while (
                    fetched < fetch_width
                    and next_fetch < total
                    and rob_len < rob_entries
                ):
                    seq = seqs[next_fetch]
                    rob_q.append(seq)
                    rob_len += 1
                    in_rob[seq] = 1
                    if kinds[seq] == 2:
                        store_order.append(seq)
                    pending = 0
                    producers = producers_of[seq]
                    if producers:
                        for producer in producers:
                            # A producer before this run's slice (or already
                            # committed) is not in the ROB and counts as done.
                            if produced[producer] or not in_rob[producer]:
                                continue
                            waiting = consumers[producer]
                            if waiting is None:
                                waiting = consumers[producer] = []
                            waiting.append(seq)
                            pending += 1
                        pending_deps[seq] = pending
                    if pending == 0:
                        # Fetch order is ascending seq: a plain FIFO append.
                        ready_fifo.append(seq)
                    next_fetch += 1
                    fetched += 1
                dispatched_total += fetched

            # ----------------------------------------------------------
            # Observation: classify this cycle (one category per counted
            # cycle; first match wins) and sample structure occupancy.
            # ``interface_active`` still reflects activity *during* this
            # cycle — the disarm check below runs after classification.
            # ----------------------------------------------------------
            if collecting:
                if committed > commit_before:
                    cat_commit += 1
                elif issued_total > issue_before:
                    cat_issue += 1
                elif next_fetch > fetch_before:
                    cat_frontend += 1
                elif interface_active:
                    cat_memory += 1
                elif deferred:
                    cat_buffer += 1
                else:
                    cat_idle += 1
                if cycles_counted >= next_sample:
                    next_sample += sample_every
                    collector.sample(
                        cycle,
                        rob_len,
                        occ_lq.occupancy if occ_lq is not None else 0,
                        occ_sb.occupancy if occ_sb is not None else 0,
                        occ_mb.occupancy if occ_mb is not None else 0,
                    )

            cycle += 1

            # ----------------------------------------------------------
            # 6. Re-arm / disarm the interface event: after a tick (and any
            #    store commits) the interface either still has work next
            #    cycle or reports itself quiescent, in which case its event
            #    is descheduled until a submit or commit re-arms it.
            # ----------------------------------------------------------
            if interface_active and quiescent is not None and quiescent():
                interface_active = False

            # ----------------------------------------------------------
            # 7. No event scheduled for this cycle: jump the clock to the
            #    next wheel event.  Every skipped cycle would have been a
            #    complete no-op (nothing to retire/issue/tick/commit/fetch),
            #    so only the cycle counter advances — results stay
            #    bit-identical.
            #
            #    Deferred memory ops require care: their issue attempt used
            #    *pre-tick* state, but this cycle's tick may have released
            #    the back-pressure that blocked them.  A quiescent interface
            #    holds no unserviced loads, so its load queue is drained and
            #    a deferred *load* would always issue next cycle — never
            #    jump then.  A deferred *store* can only issue next cycle if
            #    it heads the program-order store sequence and the store
            #    buffer has room; both are stable until a commit or a
            #    completion event, so anything else is safe to jump across.
            # ----------------------------------------------------------
            if (
                not ready_fifo
                and not ready_heap
                and not due_next
                and not interface_active
                and quiescent is not None
                and wheel_next is not NEVER
                and wheel_next > cycle
                and (next_fetch >= total or rob_len >= rob_entries)
                and committed < total
                and not (rob_q and completed_f[rob_q[0]])
                and (
                    not deferred
                    or (
                        not deferred_blocking
                        and not deferred_has_load
                        and (
                            store_order_head >= len(store_order)
                            or store_order[store_order_head] not in deferred
                            or not can_accept_store()
                        )
                    )
                )
            ):
                skipped = wheel_next - cycle
                cycles_counted += skipped
                self.fast_forwarded_cycles += skipped
                if collecting:
                    cat_ff += skipped
                cycle = wheel_next

        total_cycles = last_commit_cycle + 1
        interface.finalize(total_cycles)
        # Flush the locally accumulated per-cycle counters in one shot.
        stats = self.stats
        stats.add("pipeline.issued", issued_total)
        stats.add("pipeline.cycles", cycles_counted)
        stats.add("pipeline.dispatched", dispatched_total)
        stats.set("pipeline.total_cycles", total_cycles)
        stats.set("pipeline.committed", committed)
        if collecting:
            # Every loop iteration classified exactly one counted cycle and
            # every jump accounted its skipped stretch, so the categories sum
            # to ``cycles_counted`` == ``total_cycles`` by construction.
            collector.record_categories(
                cat_commit,
                cat_issue,
                cat_frontend,
                cat_memory,
                cat_buffer,
                cat_idle,
                cat_ff,
            )
            collector.record_run(total_cycles, total, events_seen)
        return PipelineResult(
            cycles=total_cycles,
            instructions=total,
            loads=loads,
            stores=stores,
            computes=computes,
        )

    # ------------------------------------------------------------------
    # Cycle-driven reference loop (identity testing; PR-2 behaviour)
    # ------------------------------------------------------------------
    def _run_cycle_driven(
        self, instructions: List[Instruction], total: int, capacity: int
    ) -> PipelineResult:
        params = self.params
        max_cycles = self.max_cycles or (200 * total + 100_000)
        issue_width = params.issue_width
        fetch_width = params.fetch_width
        commit_width = params.commit_width
        compute_latency = params.compute_latency

        interface = self.interface
        begin_cycle = interface.begin_cycle
        can_accept_load = interface.can_accept_load
        can_accept_store = interface.can_accept_store
        reserve_load_slot = interface.reserve_load_slot
        reserve_store_slot = interface.reserve_store_slot
        submit_load = interface.submit_load
        submit_store = interface.submit_store
        tick = interface.tick
        # Optional protocol extension: interfaces without quiescent() simply
        # never fast-forward (unit-test stubs keep working unchanged).
        quiescent = getattr(interface, "quiescent", None)
        fast_forward = self.enable_fast_forward and quiescent is not None

        rob = self.rob
        rob_entries = rob.entries
        rob_buffer = rob._buffer  # hot path: dispatch/commit are inlined below
        heappush = heapq.heappush
        heappop = heapq.heappop

        next_fetch = 0
        committed = 0
        cycle = 0
        last_commit_cycle = 0

        #: seq -> in-flight RobEntry (None once committed / not yet dispatched)
        in_flight: List[Optional[RobEntry]] = [None] * capacity
        #: seq -> 1 once the instruction's result is available
        produced = bytearray(capacity)
        #: seq -> entries waiting on that producer (None when nobody waits)
        consumers: List[Optional[List[RobEntry]]] = [None] * capacity
        #: min-heap of ready-to-issue sequence numbers (oldest first)
        ready_heap: List[int] = []
        #: memory ops that were ready but found no slot this cycle
        deferred: List[int] = []
        #: entries completing exactly next cycle (computes, stores, L1 hits)
        due_next: List[RobEntry] = []
        #: min-heap of (completion_cycle, seq, entry) for longer latencies;
        #: seq breaks ties so the entry itself is never compared
        completion_events: List[Tuple[int, int, RobEntry]] = []
        #: stores must claim store-buffer entries in program order (as real
        #: store queues allocate at dispatch); otherwise younger stores can
        #: fill the SB and deadlock an older store at the ROB head.
        store_order: List[int] = []
        store_order_head = 0

        loads = stores = computes = 0
        # Per-cycle counters accumulated locally, flushed at the end of run().
        cycles_counted = 0
        issued_total = 0
        dispatched_total = 0

        bucket_latency_ok = compute_latency == 1

        # Observation plumbing (same categories as the event-driven loop so
        # identity tests can compare attributions across schedulers; no
        # occupancy sampling here — the reference loop is not a perf path).
        collector = self.collector
        collecting = collector is not None
        cat_commit = cat_issue = cat_frontend = 0
        cat_memory = cat_buffer = cat_idle = cat_ff = 0

        while committed < total:
            if cycle > max_cycles:
                raise RuntimeError(
                    f"pipeline exceeded {max_cycles} cycles; likely deadlock "
                    f"({committed}/{total} committed)"
                )
            if collecting:
                commit_before = committed
                issue_before = issued_total
                fetch_before = next_fetch
            begin_cycle(cycle)

            # ----------------------------------------------------------
            # 1. Retire completions scheduled for this cycle.  Processing
            #    order within one cycle does not affect outcomes (waking a
            #    consumer only pushes onto the ready heap), so the bucket
            #    of one-cycle completions is drained before the heap.
            # ----------------------------------------------------------
            if due_next:
                due_now = due_next
                due_next = []
                for entry in due_now:
                    if entry.completed:
                        continue
                    entry.completed = True
                    entry.complete_cycle = cycle
                    seq = entry.instruction.seq
                    produced[seq] = 1
                    waiting = consumers[seq]
                    if waiting is not None:
                        consumers[seq] = None
                        for consumer in waiting:
                            consumer.pending_deps -= 1
                            if consumer.pending_deps == 0 and not consumer.issued:
                                heappush(ready_heap, consumer.instruction.seq)
            while completion_events and completion_events[0][0] <= cycle:
                entry = heappop(completion_events)[2]
                if entry.completed:
                    continue
                entry.completed = True
                entry.complete_cycle = cycle
                seq = entry.instruction.seq
                produced[seq] = 1
                waiting = consumers[seq]
                if waiting is not None:
                    consumers[seq] = None
                    for consumer in waiting:
                        consumer.pending_deps -= 1
                        if consumer.pending_deps == 0 and not consumer.issued:
                            heappush(ready_heap, consumer.instruction.seq)

            # ----------------------------------------------------------
            # 2. Issue ready instructions (oldest first, up to issue width).
            # ----------------------------------------------------------
            if deferred:
                for seq in deferred:
                    heappush(ready_heap, seq)
                deferred = []
            issued = 0
            postponed: List[int] = []
            postponed_load = False
            loads_blocked = stores_blocked = False
            while ready_heap and issued < issue_width:
                seq = heappop(ready_heap)
                entry = in_flight[seq]
                if entry is None or entry.issued:
                    continue
                instruction = entry.instruction
                if not instruction.is_memory:
                    entry.issued = True
                    entry.issue_cycle = cycle
                    if bucket_latency_ok:
                        due_next.append(entry)
                    else:
                        heappush(
                            completion_events, (cycle + compute_latency, seq, entry)
                        )
                    issued += 1
                elif instruction.is_load:
                    if (
                        not loads_blocked
                        and can_accept_load()
                        and reserve_load_slot()
                    ):
                        entry.issued = True
                        entry.issue_cycle = cycle
                        submit_load(seq, instruction.address, instruction.size, cycle)
                        issued += 1
                    else:
                        # Out of load slots this cycle: keep the load for the
                        # next cycle but let younger compute work proceed.
                        loads_blocked = True
                        postponed.append(seq)
                        postponed_load = True
                else:  # store
                    in_store_order = (
                        store_order_head < len(store_order)
                        and store_order[store_order_head] == seq
                    )
                    if (
                        not stores_blocked
                        and in_store_order
                        and can_accept_store()
                        and reserve_store_slot()
                    ):
                        store_order_head += 1
                        entry.issued = True
                        entry.issue_cycle = cycle
                        submit_store(seq, instruction.address, instruction.size, cycle)
                        # Stores produce no register value: they are complete
                        # (for commit purposes) once their address is computed.
                        due_next.append(entry)
                        issued += 1
                    else:
                        stores_blocked = True
                        postponed.append(seq)
            deferred = postponed  # drained into ready_heap above
            deferred_has_load = postponed_load
            issued_total += issued

            # ----------------------------------------------------------
            # 3. Advance the interface; schedule load completions.
            # ----------------------------------------------------------
            for tag, ready_cycle in tick(cycle):
                entry = in_flight[tag] if 0 <= tag < capacity else None
                if entry is None or entry.completed:
                    continue
                if ready_cycle <= cycle + 1:
                    due_next.append(entry)
                else:
                    heappush(completion_events, (ready_cycle, tag, entry))

            # ----------------------------------------------------------
            # 4. Commit in order (inlined rob.commit_ready()).
            # ----------------------------------------------------------
            if rob_buffer and rob_buffer[0].completed:
                commits = 0
                while (
                    commits < commit_width
                    and rob_buffer
                    and rob_buffer[0].completed
                ):
                    entry = rob_buffer.popleft()
                    commits += 1
                    committed += 1
                    last_commit_cycle = cycle
                    instruction = entry.instruction
                    if instruction.is_load:
                        loads += 1
                    elif instruction.is_store:
                        stores += 1
                        interface.commit_store(instruction.seq, cycle)
                    else:
                        computes += 1
                    in_flight[instruction.seq] = None
                    consumers[instruction.seq] = None
            cycles_counted += 1

            # ----------------------------------------------------------
            # 5. Fetch / dispatch into the ROB (inlined rob.dispatch(): the
            #    capacity check below is the same one dispatch() performs).
            # ----------------------------------------------------------
            if next_fetch < total:
                fetched = 0
                while (
                    fetched < fetch_width
                    and next_fetch < total
                    and len(rob_buffer) < rob_entries
                ):
                    instruction = instructions[next_fetch]
                    entry = RobEntry(instruction, cycle)
                    rob_buffer.append(entry)
                    seq = instruction.seq
                    in_flight[seq] = entry
                    if instruction.is_store:
                        store_order.append(seq)
                    pending = 0
                    if instruction.deps:
                        for distance in instruction.deps:
                            producer = seq - distance
                            if (
                                producer < 0
                                or produced[producer]
                                or in_flight[producer] is None
                            ):
                                continue
                            waiting = consumers[producer]
                            if waiting is None:
                                waiting = consumers[producer] = []
                            waiting.append(entry)
                            pending += 1
                        entry.pending_deps = pending
                    if pending == 0:
                        heappush(ready_heap, seq)
                    next_fetch += 1
                    fetched += 1
                dispatched_total += fetched

            # Observation: classify this cycle (mirrors the event-driven
            # loop; the interface's post-tick quiescence stands in for its
            # ``interface_active`` flag).
            if collecting:
                if committed > commit_before:
                    cat_commit += 1
                elif issued_total > issue_before:
                    cat_issue += 1
                elif next_fetch > fetch_before:
                    cat_frontend += 1
                elif quiescent is not None and not quiescent():
                    cat_memory += 1
                elif deferred:
                    cat_buffer += 1
                else:
                    cat_idle += 1

            cycle += 1

            # ----------------------------------------------------------
            # 6. Idle fast-forward: if the machine is fully stalled waiting
            #    for a future completion event, jump the clock to it.  Each
            #    skipped cycle would have been a complete no-op (nothing to
            #    retire/issue/tick/commit/fetch), so only the cycle counter
            #    needs advancing — results stay bit-identical.
            #
            #    Deferred memory ops require care: their issue attempt used
            #    *pre-tick* state, but this cycle's tick may have released
            #    the back-pressure that blocked them.  A quiescent interface
            #    holds no unserviced loads, so its load queue is drained and
            #    a deferred *load* would always issue next cycle — never
            #    skip then.  A deferred *store* can only issue next cycle if
            #    it heads the program-order store sequence and the store
            #    buffer has room; both are stable until a commit or a
            #    completion event, so anything else is safe to skip across.
            # ----------------------------------------------------------
            if (
                fast_forward
                and not ready_heap
                and not due_next
                and completion_events
                and completion_events[0][0] > cycle
                and (next_fetch >= total or len(rob_buffer) >= rob_entries)
                and committed < total
                and not (rob_buffer and rob_buffer[0].completed)
                and (
                    not deferred
                    or (
                        not deferred_has_load
                        and (
                            store_order_head >= len(store_order)
                            or store_order[store_order_head] not in deferred
                            or not can_accept_store()
                        )
                    )
                )
                and quiescent()
            ):
                target = completion_events[0][0]
                skipped = target - cycle
                cycles_counted += skipped
                self.fast_forwarded_cycles += skipped
                if collecting:
                    cat_ff += skipped
                cycle = target

        total_cycles = last_commit_cycle + 1
        interface.finalize(total_cycles)
        # Flush the locally accumulated per-cycle counters in one shot.
        stats = self.stats
        stats.add("pipeline.issued", issued_total)
        stats.add("pipeline.cycles", cycles_counted)
        stats.add("pipeline.dispatched", dispatched_total)
        stats.set("pipeline.total_cycles", total_cycles)
        stats.set("pipeline.committed", committed)
        if collecting:
            collector.record_categories(
                cat_commit,
                cat_issue,
                cat_frontend,
                cat_memory,
                cat_buffer,
                cat_idle,
                cat_ff,
            )
            collector.record_run(total_cycles, total, 0)
        return PipelineResult(
            cycles=total_cycles,
            instructions=total,
            loads=loads,
            stores=stores,
            computes=computes,
        )
