"""Cycle-level out-of-order pipeline driving an L1 interface model.

The pipeline implements the processor-side behaviour the paper's evaluation
depends on (Table II): a 168-entry ROB, 6-wide fetch/dispatch, 8-wide issue
and in-order commit.  Memory instructions are handed to an *L1 interface
model* (Base1ldst, Base2ld1st or MALEC) which owns the address-computation
slots, the load/store/merge buffers, translation and the cache; the pipeline
only sees per-cycle slot availability and load-completion notifications.

The interface object must provide the following methods (duck-typed so the
interface package does not need to import this module)::

    begin_cycle(cycle)
    can_accept_load() / can_accept_store()        -> bool
    reserve_load_slot() / reserve_store_slot()    -> bool   (per-cycle slots)
    submit_load(tag, address, size, cycle)
    submit_store(tag, address, size, cycle)
    commit_store(tag, cycle)
    tick(cycle)  -> list[(tag, data_ready_cycle)]
    finalize(cycle)                                (drain write buffers)
    quiescent() -> bool                            (optional, idle detection)

Execution time is the cycle in which the last instruction commits, which is
what Fig. 4a normalizes across configurations.

Hot-path notes
--------------
``run`` is the innermost loop of every sweep, so its bookkeeping is arrays
indexed by sequence number rather than dictionaries (``in_flight``,
``produced``, ``consumers``), instructions completing one cycle out
(computes, stores, L1-hit notifications) take a bucket list instead of the
completion-event heap, and per-cycle statistics are accumulated in locals
and flushed once at the end of the run (sums of integers, so the flushed
totals are bit-identical to per-cycle accumulation).

Idle fast-forward
-----------------
Low-IPC workloads (``mcf``-style pointer chasing) spend the vast majority of
their cycles waiting on a single outstanding DRAM miss or page walk.  When
nothing can happen this cycle — no instruction is ready to issue, no entry
can commit, fetch is blocked (ROB full or trace exhausted) and the interface
reports itself quiescent — the pipeline jumps its clock directly to the next
scheduled completion event instead of spinning through empty cycles.  The
skipped cycles are accounted into the ``pipeline.cycles`` counter exactly as
if they had been simulated, so results (cycles, statistics, energy) are
bit-identical with the fast-forward enabled or disabled; only the wall time
changes.  ``fast_forwarded_cycles`` records how many cycles were skipped.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from repro.cpu.instruction import Instruction
from repro.cpu.rob import ReorderBuffer, RobEntry
from repro.stats import StatCounters


@dataclass
class PipelineParametersLite:
    """Pipeline widths (Table II defaults); kept separate from sim config to
    allow unit tests to build tiny pipelines."""

    rob_entries: int = 168
    fetch_width: int = 6
    issue_width: int = 8
    commit_width: int = 6
    compute_latency: int = 1


@dataclass
class PipelineResult:
    """Summary of one pipeline run."""

    cycles: int
    instructions: int
    loads: int
    stores: int
    computes: int

    @property
    def ipc(self) -> float:
        """Committed instructions per cycle."""
        return self.instructions / self.cycles if self.cycles else 0.0


class OutOfOrderPipeline:
    """Dependency-driven, resource-limited out-of-order execution model."""

    def __init__(
        self,
        interface,
        params: PipelineParametersLite = PipelineParametersLite(),
        stats: Optional[StatCounters] = None,
        max_cycles: Optional[int] = None,
        enable_fast_forward: bool = True,
    ) -> None:
        self.interface = interface
        self.params = params
        self.stats = stats if stats is not None else StatCounters()
        self.max_cycles = max_cycles
        self.rob = ReorderBuffer(params.rob_entries)
        self.enable_fast_forward = enable_fast_forward
        #: idle cycles skipped by the fast-forward in the most recent run()
        self.fast_forwarded_cycles = 0

    # ------------------------------------------------------------------
    def run(self, trace: Iterable[Instruction]) -> PipelineResult:
        """Execute ``trace`` to completion and return the cycle count."""
        instructions = list(trace)
        for seq, instruction in enumerate(instructions):
            if instruction.seq < 0:
                instruction.seq = seq
        total = len(instructions)
        self.fast_forwarded_cycles = 0
        if total == 0:
            return PipelineResult(cycles=0, instructions=0, loads=0, stores=0, computes=0)
        # Sequence numbers need not start at zero (a warmed-up run receives a
        # slice of a trace whose seqs are global positions); the seq-indexed
        # arrays below are sized to the largest seq in this run.
        capacity = total
        for instruction in instructions:
            if instruction.seq >= capacity:
                capacity = instruction.seq + 1

        params = self.params
        max_cycles = self.max_cycles or (200 * total + 100_000)
        issue_width = params.issue_width
        fetch_width = params.fetch_width
        commit_width = params.commit_width
        compute_latency = params.compute_latency

        interface = self.interface
        begin_cycle = interface.begin_cycle
        can_accept_load = interface.can_accept_load
        can_accept_store = interface.can_accept_store
        reserve_load_slot = interface.reserve_load_slot
        reserve_store_slot = interface.reserve_store_slot
        submit_load = interface.submit_load
        submit_store = interface.submit_store
        tick = interface.tick
        # Optional protocol extension: interfaces without quiescent() simply
        # never fast-forward (unit-test stubs keep working unchanged).
        quiescent = getattr(interface, "quiescent", None)
        fast_forward = self.enable_fast_forward and quiescent is not None

        rob = self.rob
        rob_entries = rob.entries
        rob_buffer = rob._buffer  # hot path: dispatch/commit are inlined below
        heappush = heapq.heappush
        heappop = heapq.heappop

        next_fetch = 0
        committed = 0
        cycle = 0
        last_commit_cycle = 0

        #: seq -> in-flight RobEntry (None once committed / not yet dispatched)
        in_flight: List[Optional[RobEntry]] = [None] * capacity
        #: seq -> 1 once the instruction's result is available
        produced = bytearray(capacity)
        #: seq -> entries waiting on that producer (None when nobody waits)
        consumers: List[Optional[List[RobEntry]]] = [None] * capacity
        #: min-heap of ready-to-issue sequence numbers (oldest first)
        ready_heap: List[int] = []
        #: memory ops that were ready but found no slot this cycle
        deferred: List[int] = []
        #: entries completing exactly next cycle (computes, stores, L1 hits)
        due_next: List[RobEntry] = []
        #: min-heap of (completion_cycle, seq, entry) for longer latencies;
        #: seq breaks ties so the entry itself is never compared
        completion_events: List[Tuple[int, int, RobEntry]] = []
        #: stores must claim store-buffer entries in program order (as real
        #: store queues allocate at dispatch); otherwise younger stores can
        #: fill the SB and deadlock an older store at the ROB head.
        store_order: List[int] = []
        store_order_head = 0

        loads = stores = computes = 0
        # Per-cycle counters accumulated locally, flushed at the end of run().
        cycles_counted = 0
        issued_total = 0
        dispatched_total = 0

        bucket_latency_ok = compute_latency == 1

        while committed < total:
            if cycle > max_cycles:
                raise RuntimeError(
                    f"pipeline exceeded {max_cycles} cycles; likely deadlock "
                    f"({committed}/{total} committed)"
                )
            begin_cycle(cycle)

            # ----------------------------------------------------------
            # 1. Retire completions scheduled for this cycle.  Processing
            #    order within one cycle does not affect outcomes (waking a
            #    consumer only pushes onto the ready heap), so the bucket
            #    of one-cycle completions is drained before the heap.
            # ----------------------------------------------------------
            if due_next:
                due_now = due_next
                due_next = []
                for entry in due_now:
                    if entry.completed:
                        continue
                    entry.completed = True
                    entry.complete_cycle = cycle
                    seq = entry.instruction.seq
                    produced[seq] = 1
                    waiting = consumers[seq]
                    if waiting is not None:
                        consumers[seq] = None
                        for consumer in waiting:
                            consumer.pending_deps -= 1
                            if consumer.pending_deps == 0 and not consumer.issued:
                                heappush(ready_heap, consumer.instruction.seq)
            while completion_events and completion_events[0][0] <= cycle:
                entry = heappop(completion_events)[2]
                if entry.completed:
                    continue
                entry.completed = True
                entry.complete_cycle = cycle
                seq = entry.instruction.seq
                produced[seq] = 1
                waiting = consumers[seq]
                if waiting is not None:
                    consumers[seq] = None
                    for consumer in waiting:
                        consumer.pending_deps -= 1
                        if consumer.pending_deps == 0 and not consumer.issued:
                            heappush(ready_heap, consumer.instruction.seq)

            # ----------------------------------------------------------
            # 2. Issue ready instructions (oldest first, up to issue width).
            # ----------------------------------------------------------
            if deferred:
                for seq in deferred:
                    heappush(ready_heap, seq)
                deferred = []
            issued = 0
            postponed: List[int] = []
            postponed_load = False
            loads_blocked = stores_blocked = False
            while ready_heap and issued < issue_width:
                seq = heappop(ready_heap)
                entry = in_flight[seq]
                if entry is None or entry.issued:
                    continue
                instruction = entry.instruction
                if not instruction.is_memory:
                    entry.issued = True
                    entry.issue_cycle = cycle
                    if bucket_latency_ok:
                        due_next.append(entry)
                    else:
                        heappush(
                            completion_events, (cycle + compute_latency, seq, entry)
                        )
                    issued += 1
                elif instruction.is_load:
                    if (
                        not loads_blocked
                        and can_accept_load()
                        and reserve_load_slot()
                    ):
                        entry.issued = True
                        entry.issue_cycle = cycle
                        submit_load(seq, instruction.address, instruction.size, cycle)
                        issued += 1
                    else:
                        # Out of load slots this cycle: keep the load for the
                        # next cycle but let younger compute work proceed.
                        loads_blocked = True
                        postponed.append(seq)
                        postponed_load = True
                else:  # store
                    in_store_order = (
                        store_order_head < len(store_order)
                        and store_order[store_order_head] == seq
                    )
                    if (
                        not stores_blocked
                        and in_store_order
                        and can_accept_store()
                        and reserve_store_slot()
                    ):
                        store_order_head += 1
                        entry.issued = True
                        entry.issue_cycle = cycle
                        submit_store(seq, instruction.address, instruction.size, cycle)
                        # Stores produce no register value: they are complete
                        # (for commit purposes) once their address is computed.
                        due_next.append(entry)
                        issued += 1
                    else:
                        stores_blocked = True
                        postponed.append(seq)
            deferred = postponed  # drained into ready_heap above
            deferred_has_load = postponed_load
            issued_total += issued

            # ----------------------------------------------------------
            # 3. Advance the interface; schedule load completions.
            # ----------------------------------------------------------
            for tag, ready_cycle in tick(cycle):
                entry = in_flight[tag] if 0 <= tag < capacity else None
                if entry is None or entry.completed:
                    continue
                if ready_cycle <= cycle + 1:
                    due_next.append(entry)
                else:
                    heappush(completion_events, (ready_cycle, tag, entry))

            # ----------------------------------------------------------
            # 4. Commit in order (inlined rob.commit_ready()).
            # ----------------------------------------------------------
            if rob_buffer and rob_buffer[0].completed:
                commits = 0
                while (
                    commits < commit_width
                    and rob_buffer
                    and rob_buffer[0].completed
                ):
                    entry = rob_buffer.popleft()
                    commits += 1
                    committed += 1
                    last_commit_cycle = cycle
                    instruction = entry.instruction
                    if instruction.is_load:
                        loads += 1
                    elif instruction.is_store:
                        stores += 1
                        interface.commit_store(instruction.seq, cycle)
                    else:
                        computes += 1
                    in_flight[instruction.seq] = None
                    consumers[instruction.seq] = None
            cycles_counted += 1

            # ----------------------------------------------------------
            # 5. Fetch / dispatch into the ROB (inlined rob.dispatch(): the
            #    capacity check below is the same one dispatch() performs).
            # ----------------------------------------------------------
            if next_fetch < total:
                fetched = 0
                while (
                    fetched < fetch_width
                    and next_fetch < total
                    and len(rob_buffer) < rob_entries
                ):
                    instruction = instructions[next_fetch]
                    entry = RobEntry(instruction, cycle)
                    rob_buffer.append(entry)
                    seq = instruction.seq
                    in_flight[seq] = entry
                    if instruction.is_store:
                        store_order.append(seq)
                    pending = 0
                    if instruction.deps:
                        for distance in instruction.deps:
                            producer = seq - distance
                            if (
                                producer < 0
                                or produced[producer]
                                or in_flight[producer] is None
                            ):
                                continue
                            waiting = consumers[producer]
                            if waiting is None:
                                waiting = consumers[producer] = []
                            waiting.append(entry)
                            pending += 1
                        entry.pending_deps = pending
                    if pending == 0:
                        heappush(ready_heap, seq)
                    next_fetch += 1
                    fetched += 1
                dispatched_total += fetched

            cycle += 1

            # ----------------------------------------------------------
            # 6. Idle fast-forward: if the machine is fully stalled waiting
            #    for a future completion event, jump the clock to it.  Each
            #    skipped cycle would have been a complete no-op (nothing to
            #    retire/issue/tick/commit/fetch), so only the cycle counter
            #    needs advancing — results stay bit-identical.
            #
            #    Deferred memory ops require care: their issue attempt used
            #    *pre-tick* state, but this cycle's tick may have released
            #    the back-pressure that blocked them.  A quiescent interface
            #    holds no unserviced loads, so its load queue is drained and
            #    a deferred *load* would always issue next cycle — never
            #    skip then.  A deferred *store* can only issue next cycle if
            #    it heads the program-order store sequence and the store
            #    buffer has room; both are stable until a commit or a
            #    completion event, so anything else is safe to skip across.
            # ----------------------------------------------------------
            if (
                fast_forward
                and not ready_heap
                and not due_next
                and completion_events
                and completion_events[0][0] > cycle
                and (next_fetch >= total or len(rob_buffer) >= rob_entries)
                and committed < total
                and not (rob_buffer and rob_buffer[0].completed)
                and (
                    not deferred
                    or (
                        not deferred_has_load
                        and (
                            store_order_head >= len(store_order)
                            or store_order[store_order_head] not in deferred
                            or not can_accept_store()
                        )
                    )
                )
                and quiescent()
            ):
                target = completion_events[0][0]
                skipped = target - cycle
                cycles_counted += skipped
                self.fast_forwarded_cycles += skipped
                cycle = target

        total_cycles = last_commit_cycle + 1
        interface.finalize(total_cycles)
        # Flush the locally accumulated per-cycle counters in one shot.
        stats = self.stats
        stats.add("pipeline.issued", issued_total)
        stats.add("pipeline.cycles", cycles_counted)
        stats.add("pipeline.dispatched", dispatched_total)
        stats.set("pipeline.total_cycles", total_cycles)
        stats.set("pipeline.committed", committed)
        return PipelineResult(
            cycles=total_cycles,
            instructions=total,
            loads=loads,
            stores=stores,
            computes=computes,
        )
