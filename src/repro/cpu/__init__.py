"""Out-of-order memory-side pipeline.

The paper evaluates MALEC underneath a single-core out-of-order superscalar
processor (Table II: 168 ROB entries, 6-wide fetch/dispatch, 8-wide issue,
1 GHz).  gem5 is not available in this environment, so this package provides
a lightweight cycle-level pipeline that reproduces the properties MALEC's
results depend on:

* the rate at which memory operations become ready for address computation
  (limited by fetch/dispatch width, the ROB, and data dependencies on older
  loads);
* the number of address-computation slots per cycle offered by the L1
  interface (Table I differs between the configurations);
* the feedback from load latency into issue progress (dependent instructions
  cannot issue until the load's data returns), which is what turns faster or
  more parallel L1 accesses into shorter execution times.

It is not an ISA simulator: non-memory instructions are single-cycle opaque
"compute" operations that only carry dependence edges.
"""

from repro.cpu.instruction import Instruction, InstructionKind
from repro.cpu.rob import ReorderBuffer, RobEntry
from repro.cpu.pipeline import OutOfOrderPipeline, PipelineResult

__all__ = [
    "Instruction",
    "InstructionKind",
    "ReorderBuffer",
    "RobEntry",
    "OutOfOrderPipeline",
    "PipelineResult",
]
