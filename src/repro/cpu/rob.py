"""Reorder buffer.

The ROB holds every dispatched, not-yet-committed instruction in program
order (168 entries in Table II).  Instructions complete out of order but
commit strictly in order, up to the commit width per cycle; the pipeline uses
the ROB both as the dispatch window limiter and as the commit mechanism that
defines the final execution time.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from repro.cpu.instruction import Instruction


class RobEntry:
    """Book-keeping for one in-flight instruction (slotted for speed)."""

    __slots__ = (
        "instruction",
        "dispatch_cycle",
        "issued",
        "issue_cycle",
        "completed",
        "complete_cycle",
        "pending_deps",
    )

    def __init__(self, instruction: Instruction, dispatch_cycle: int) -> None:
        self.instruction = instruction
        self.dispatch_cycle = dispatch_cycle
        self.issued = False
        self.issue_cycle: Optional[int] = None
        self.completed = False
        self.complete_cycle: Optional[int] = None
        #: number of producers whose results are still outstanding
        self.pending_deps = 0

    @property
    def seq(self) -> int:
        """Program-order sequence number of the instruction."""
        return self.instruction.seq

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        state = "done" if self.completed else ("issued" if self.issued else "waiting")
        return f"RobEntry(seq={self.seq}, {self.instruction.kind.value}, {state})"


class ReorderBuffer:
    """Fixed-capacity, program-order window of in-flight instructions."""

    def __init__(self, entries: int = 168) -> None:
        if entries <= 0:
            raise ValueError("the ROB needs at least one entry")
        self.entries = entries
        self._buffer: Deque[RobEntry] = deque()

    # ------------------------------------------------------------------
    @property
    def occupancy(self) -> int:
        """Number of in-flight instructions."""
        return len(self._buffer)

    @property
    def full(self) -> bool:
        """True when dispatch must stall."""
        return len(self._buffer) >= self.entries

    @property
    def empty(self) -> bool:
        """True when no instruction is in flight."""
        return not self._buffer

    def dispatch(self, instruction: Instruction, cycle: int) -> RobEntry:
        """Append an instruction at the ROB tail."""
        if self.full:
            raise RuntimeError("ROB overflow")
        entry = RobEntry(instruction, cycle)
        self._buffer.append(entry)
        return entry

    def head(self) -> Optional[RobEntry]:
        """Oldest in-flight instruction (next to commit), if any."""
        return self._buffer[0] if self._buffer else None

    def commit_ready(self, max_count: int) -> List[RobEntry]:
        """Pop up to ``max_count`` completed instructions from the head."""
        committed: List[RobEntry] = []
        while self._buffer and len(committed) < max_count and self._buffer[0].completed:
            committed.append(self._buffer.popleft())
        return committed

    def __iter__(self):
        return iter(self._buffer)

    def __len__(self) -> int:
        return len(self._buffer)
