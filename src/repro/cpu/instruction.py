"""Dynamic instruction representation used by traces and the pipeline.

A trace is a sequence of :class:`Instruction` objects in program order.  Only
three kinds exist: loads, stores and opaque single-cycle compute operations.
Dependencies are expressed as *backward distances* (``deps``): a value of
``k`` means "this instruction consumes the result of the instruction ``k``
positions earlier in the trace".  Distances keep traces relocatable (they can
be sliced or concatenated) and are resolved to absolute sequence numbers by
the pipeline at dispatch time.

Millions of :class:`Instruction` objects are alive during a sweep, and the
pipeline inspects their kind on every issue/commit, so the class is a
hand-rolled ``__slots__`` class (no per-instance ``__dict__``) and the kind
predicates (``is_load`` ...) are plain attributes computed once at
construction instead of properties.
"""

from __future__ import annotations

import enum
from typing import Optional, Tuple


class InstructionKind(enum.Enum):
    """The three instruction classes the memory-side pipeline distinguishes."""

    LOAD = "load"
    STORE = "store"
    COMPUTE = "compute"


class Instruction:
    """One dynamic instruction of a workload trace.

    Attributes
    ----------
    kind:
        Load, store or compute.
    address:
        Virtual address for memory operations; ``None`` for compute.
    size:
        Access width in bytes for memory operations.
    deps:
        Backward distances to producer instructions.  A load whose *address*
        depends on an earlier load (pointer chasing, as in ``mcf``) carries
        that load's distance here; a compute instruction consuming a load
        result lists the load.  Distances that point before the start of the
        trace are ignored at dispatch.
    seq:
        Absolute position in the trace; filled by the trace container.
    is_load / is_store / is_memory:
        Kind predicates, precomputed at construction (hot-path reads).
    """

    __slots__ = ("kind", "address", "size", "deps", "seq", "is_load", "is_store", "is_memory")

    def __init__(
        self,
        kind: InstructionKind,
        address: Optional[int] = None,
        size: int = 4,
        deps: Tuple[int, ...] = (),
        seq: int = -1,
    ) -> None:
        self.kind = kind
        self.address = address
        self.size = size
        self.deps = tuple(deps)
        self.seq = seq
        is_load = kind is InstructionKind.LOAD
        is_store = kind is InstructionKind.STORE
        self.is_load = is_load
        self.is_store = is_store
        self.is_memory = is_load or is_store
        if self.is_memory:
            if address is None:
                raise ValueError(f"{kind.value} instructions need an address")
            if size <= 0:
                raise ValueError("memory accesses need a positive size")
        for distance in self.deps:
            if distance <= 0:
                raise ValueError("dependency distances must be positive (backward)")

    # ------------------------------------------------------------------
    def producers(self) -> Tuple[int, ...]:
        """Absolute sequence numbers of this instruction's producers.

        Only meaningful once ``seq`` has been assigned; negative results
        (producers before the trace start) are dropped.
        """
        if self.seq < 0:
            raise ValueError("instruction sequence number not assigned yet")
        return tuple(self.seq - d for d in self.deps if self.seq - d >= 0)

    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Instruction):
            return NotImplemented
        return (self.kind, self.address, self.size, self.deps, self.seq) == (
            other.kind,
            other.address,
            other.size,
            other.deps,
            other.seq,
        )

    __hash__ = None  # type: ignore[assignment]  # mutable, like the dataclass it replaced

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        address = f"{self.address:#x}" if self.address is not None else "None"
        return (
            f"Instruction(kind={self.kind!r}, address={address}, size={self.size}, "
            f"deps={self.deps!r}, seq={self.seq})"
        )


def build_pipeline_arrays(instructions, capacity: int):
    """Seq-indexed ``(kinds, addresses, sizes, producers)`` arrays.

    ``kinds[seq]`` is 0/1/2 for compute/load/store and ``producers[seq]``
    the tuple of absolute in-range producer seqs.  The single definition of
    this encoding: both :meth:`repro.workloads.trace.MemoryTrace.pipeline_arrays`
    (cached per trace) and the pipeline's ad-hoc fallback build through it,
    so the two can never drift apart.  ``sizes[seq]`` carries the
    instruction's size verbatim (even for computes, whose entries the
    pipeline never reads) so these arrays are bit-equal to the columnar
    view's (:meth:`repro.workloads.columnar.ColumnarTrace.pipeline_arrays`),
    which lifts the size column straight off the ``.rtrc`` records.
    """
    kinds = bytearray(capacity)
    addresses = [0] * capacity
    sizes = [0] * capacity
    producers = [()] * capacity
    for instruction in instructions:
        seq = instruction.seq
        if instruction.is_load:
            kinds[seq] = 1
        elif instruction.is_store:
            kinds[seq] = 2
        sizes[seq] = instruction.size
        if instruction.address is not None:
            addresses[seq] = instruction.address
        if instruction.deps:
            producers[seq] = tuple(
                seq - d for d in instruction.deps if seq - d >= 0
            )
    return kinds, addresses, sizes, producers


def load(address: int, size: int = 4, deps: Tuple[int, ...] = ()) -> Instruction:
    """Convenience constructor for a load instruction."""
    return Instruction(kind=InstructionKind.LOAD, address=address, size=size, deps=deps)


def store(address: int, size: int = 4, deps: Tuple[int, ...] = ()) -> Instruction:
    """Convenience constructor for a store instruction."""
    return Instruction(kind=InstructionKind.STORE, address=address, size=size, deps=deps)


def compute(deps: Tuple[int, ...] = ()) -> Instruction:
    """Convenience constructor for a compute instruction."""
    return Instruction(kind=InstructionKind.COMPUTE, deps=deps)
