"""Dynamic instruction representation used by traces and the pipeline.

A trace is a sequence of :class:`Instruction` objects in program order.  Only
three kinds exist: loads, stores and opaque single-cycle compute operations.
Dependencies are expressed as *backward distances* (``deps``): a value of
``k`` means "this instruction consumes the result of the instruction ``k``
positions earlier in the trace".  Distances keep traces relocatable (they can
be sliced or concatenated) and are resolved to absolute sequence numbers by
the pipeline at dispatch time.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple


class InstructionKind(enum.Enum):
    """The three instruction classes the memory-side pipeline distinguishes."""

    LOAD = "load"
    STORE = "store"
    COMPUTE = "compute"


@dataclass
class Instruction:
    """One dynamic instruction of a workload trace.

    Attributes
    ----------
    kind:
        Load, store or compute.
    address:
        Virtual address for memory operations; ``None`` for compute.
    size:
        Access width in bytes for memory operations.
    deps:
        Backward distances to producer instructions.  A load whose *address*
        depends on an earlier load (pointer chasing, as in ``mcf``) carries
        that load's distance here; a compute instruction consuming a load
        result lists the load.  Distances that point before the start of the
        trace are ignored at dispatch.
    seq:
        Absolute position in the trace; filled by the trace container.
    """

    kind: InstructionKind
    address: Optional[int] = None
    size: int = 4
    deps: Tuple[int, ...] = field(default_factory=tuple)
    seq: int = -1

    def __post_init__(self) -> None:
        if self.kind in (InstructionKind.LOAD, InstructionKind.STORE):
            if self.address is None:
                raise ValueError(f"{self.kind.value} instructions need an address")
            if self.size <= 0:
                raise ValueError("memory accesses need a positive size")
        for distance in self.deps:
            if distance <= 0:
                raise ValueError("dependency distances must be positive (backward)")

    # ------------------------------------------------------------------
    @property
    def is_load(self) -> bool:
        """True for loads."""
        return self.kind is InstructionKind.LOAD

    @property
    def is_store(self) -> bool:
        """True for stores."""
        return self.kind is InstructionKind.STORE

    @property
    def is_memory(self) -> bool:
        """True for loads and stores."""
        return self.kind is not InstructionKind.COMPUTE

    def producers(self) -> Tuple[int, ...]:
        """Absolute sequence numbers of this instruction's producers.

        Only meaningful once ``seq`` has been assigned; negative results
        (producers before the trace start) are dropped.
        """
        if self.seq < 0:
            raise ValueError("instruction sequence number not assigned yet")
        return tuple(self.seq - d for d in self.deps if self.seq - d >= 0)


def load(address: int, size: int = 4, deps: Tuple[int, ...] = ()) -> Instruction:
    """Convenience constructor for a load instruction."""
    return Instruction(kind=InstructionKind.LOAD, address=address, size=size, deps=deps)


def store(address: int, size: int = 4, deps: Tuple[int, ...] = ()) -> Instruction:
    """Convenience constructor for a store instruction."""
    return Instruction(kind=InstructionKind.STORE, address=address, size=size, deps=deps)


def compute(deps: Tuple[int, ...] = ()) -> Instruction:
    """Convenience constructor for a compute instruction."""
    return Instruction(kind=InstructionKind.COMPUTE, deps=deps)
