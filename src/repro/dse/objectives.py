"""Objective functions mapping simulation results onto the trade-off plane.

Every objective is *minimized* and computed as the geometric mean, over the
space's benchmarks, of a per-benchmark ratio against the space's fixed
baseline configuration (``Base1ldst`` by default — the paper's Fig. 4
normalization).  The baseline is held constant across candidates, so the
normalization rescales axes without ever changing dominance relations.

Built-ins:

``runtime``
    Normalized execution time (Fig. 4a's y-axis).
``energy``
    Normalized L1-subsystem energy — L1 arrays plus uTLB/TLB and the
    way-determination and buffer structures, i.e. the full
    :class:`~repro.energy.accounting.EnergyReport` total (Fig. 4b).
``edp``
    Energy-delay product: the per-benchmark product of the two ratios
    (the single-number summary of the paper's trade-off claim).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Sequence, Tuple

from repro.analysis.reporting import geometric_mean
from repro.sim.simulator import SimulationResult

#: per-benchmark ratio: (candidate result, baseline result) -> float
RatioFunction = Callable[[SimulationResult, SimulationResult], float]


@dataclass(frozen=True)
class Objective:
    """One minimized axis of the design-space search."""

    key: str
    label: str
    ratio: RatioFunction

    def evaluate(
        self,
        candidate: Mapping[str, SimulationResult],
        baseline: Mapping[str, SimulationResult],
    ) -> float:
        """Geomean of the per-benchmark ratio over the common benchmarks.

        ``candidate`` and ``baseline`` map benchmark name to result; both
        must cover the same benchmarks (the engine always evaluates the
        baseline alongside every batch, so this holds by construction).
        """
        missing = set(candidate) ^ set(baseline)
        if missing:
            raise ValueError(f"candidate/baseline benchmark mismatch: {sorted(missing)}")
        return geometric_mean(
            self.ratio(candidate[name], baseline[name]) for name in sorted(candidate)
        )


def _runtime_ratio(result: SimulationResult, base: SimulationResult) -> float:
    return result.normalized_time(base)


def _energy_ratio(result: SimulationResult, base: SimulationResult) -> float:
    return result.normalized_energy(base)["total"]


def _edp_ratio(result: SimulationResult, base: SimulationResult) -> float:
    return _runtime_ratio(result, base) * _energy_ratio(result, base)


OBJECTIVES: Dict[str, Objective] = {
    "runtime": Objective("runtime", "norm. time", _runtime_ratio),
    "energy": Objective("energy", "norm. energy", _energy_ratio),
    "edp": Objective("edp", "norm. EDP", _edp_ratio),
}

#: objective keys in presentation order (shown in ``repro dse`` CLI help)
OBJECTIVE_NAMES: Tuple[str, ...] = tuple(OBJECTIVES)

#: the energy/performance plane of the paper's headline claim
DEFAULT_OBJECTIVES: Tuple[str, ...] = ("runtime", "energy")


def resolve_objectives(keys: Sequence[str]) -> Tuple[Objective, ...]:
    """Look up objectives by key, preserving order and rejecting duplicates."""
    if not keys:
        raise ValueError("at least one objective is required")
    if len(set(keys)) != len(keys):
        raise ValueError(f"duplicate objectives: {list(keys)}")
    resolved = []
    for key in keys:
        try:
            resolved.append(OBJECTIVES[key])
        except KeyError:
            raise ValueError(
                f"unknown objective {key!r}; choose from {', '.join(OBJECTIVE_NAMES)}"
            ) from None
    return tuple(resolved)
