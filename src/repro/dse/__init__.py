"""Design-space exploration over the energy/performance plane.

The paper argues one point of a trade-off curve: MALEC buys L1-subsystem
energy savings at a small performance cost, and Sec. VI-D samples a handful
of sensitivity points by hand.  This package automates the search over the
whole configuration space:

* :mod:`repro.dse.space` — declarative :class:`SearchSpace` grids over
  configuration knobs, with named presets (``malec-mini``,
  ``malec-sensitivity``);
* :mod:`repro.dse.strategies` — exhaustive grid, seeded random sampling and
  adaptive successive halving (short traces for everyone, full length for
  survivors);
* :mod:`repro.dse.objectives` — minimized axes (normalized runtime, L1+TLB
  energy, energy-delay product) computed against a fixed baseline;
* :mod:`repro.dse.pareto` — dominance, frontier extraction and NSGA-style
  dominance ranks;
* :mod:`repro.dse.engine` — :func:`run_dse`, which routes every evaluation
  through the campaign executor and content-hash-keyed result store, so
  exploration is parallel, resumable and deduplicated across strategies.

Quick start::

    from repro.campaign import ResultStore
    from repro.dse import run_dse, space_preset

    result = run_dse(
        space_preset("malec-mini"),
        strategy="halving",
        budget=12,
        store=ResultStore("results/dse"),
    )
    for candidate in result.frontier:
        print(candidate.name, candidate.objectives)
"""

from repro.dse.engine import DseResult, Evaluator, extract_frontier, run_dse
from repro.dse.objectives import (
    DEFAULT_OBJECTIVES,
    OBJECTIVE_NAMES,
    OBJECTIVES,
    Objective,
    resolve_objectives,
)
from repro.dse.pareto import (
    ParetoPoint,
    dominance_ranks,
    dominates,
    frontier_and_ranks,
    pareto_frontier,
    rank_by_label,
)
from repro.dse.space import (
    SPACE_PRESET_NAMES,
    SPACE_PRESETS,
    Candidate,
    Dimension,
    SearchSpace,
    choice,
    format_value,
    int_range,
    space_preset,
)
from repro.dse.strategies import (
    STRATEGIES,
    STRATEGY_NAMES,
    EvaluatedCandidate,
    GridSearch,
    RandomSearch,
    SearchStrategy,
    SuccessiveHalving,
    strategy_by_name,
)

__all__ = [
    "Candidate",
    "DEFAULT_OBJECTIVES",
    "Dimension",
    "DseResult",
    "EvaluatedCandidate",
    "Evaluator",
    "GridSearch",
    "OBJECTIVES",
    "OBJECTIVE_NAMES",
    "Objective",
    "ParetoPoint",
    "RandomSearch",
    "SPACE_PRESETS",
    "SPACE_PRESET_NAMES",
    "STRATEGIES",
    "STRATEGY_NAMES",
    "SearchSpace",
    "SearchStrategy",
    "SuccessiveHalving",
    "choice",
    "dominance_ranks",
    "dominates",
    "extract_frontier",
    "format_value",
    "frontier_and_ranks",
    "int_range",
    "pareto_frontier",
    "rank_by_label",
    "resolve_objectives",
    "run_dse",
    "space_preset",
    "strategy_by_name",
]
