"""Declarative search spaces over the simulator's configuration parameters.

A :class:`SearchSpace` spans a grid of :class:`~repro.sim.config.SimulationConfig`
variants: each :class:`Dimension` names one configuration knob (a dotted
attribute path such as ``malec_options.result_buses`` or
``cache.l1_hit_latency``) and the values it may take.  Points of the space
are indexed ``0 .. size-1`` in a fixed mixed-radix (row-major) order, so
every search strategy — and every re-run of one — enumerates candidates
identically, which is what makes frontiers reproducible across job counts
and across store resumes.

A point compiles into a concrete configuration via
:meth:`SearchSpace.candidate` and further into the
:class:`~repro.campaign.spec.CampaignCell` grid (one cell per benchmark) via
:meth:`SearchSpace.cells_for`, so all evaluations flow through the existing
content-hash-keyed result store and process-pool executor.

Named presets:

``malec-mini``
    The Sec. VI-D sensitivity grid (result buses, Input Buffer capacity, L1
    hit latency, way-determination scheme) over a small locality-diverse
    benchmark subset — the smoke case of the DSE engine.
``malec-sensitivity``
    The same grid extended with the merge window, over the full
    locality-diverse subset at full trace length.
``interfaces``
    Interface kind x L1 latency — the Fig. 4 plane itself, where
    multi-point frontiers live (Base2ld1st fast but energy-hungry,
    Base1ldst frugal but slow, MALEC in between).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, is_dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.campaign.spec import CampaignCell
from repro.sim.config import SimulationConfig
from repro.workloads.registry import validate_workload, workload_trace_hash
from repro.workloads.suites import LOCALITY_DIVERSE_BENCHMARKS


# ----------------------------------------------------------------------
# Dimensions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Dimension:
    """One configuration knob and the values it ranges over.

    ``path`` is a dotted attribute path into :class:`SimulationConfig`
    (nested frozen dataclasses), e.g. ``"malec_options.result_buses"`` or
    ``"cache.l1_hit_latency"``.  ``name`` is the short label used in
    candidate display names and reports.
    """

    name: str
    path: str
    values: Tuple[object, ...]

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError(f"dimension {self.name!r} needs at least one value")
        if len(set(self.values)) != len(self.values):
            raise ValueError(f"dimension {self.name!r} has duplicate values")


def choice(name: str, path: str, values: Sequence[object]) -> Dimension:
    """A categorical/discrete dimension over an explicit value list."""
    return Dimension(name=name, path=path, values=tuple(values))


def int_range(name: str, path: str, start: int, stop: int, step: int = 1) -> Dimension:
    """An integer dimension covering ``start, start+step, ... <= stop``."""
    if step <= 0:
        raise ValueError("int_range needs a positive step")
    return Dimension(name=name, path=path, values=tuple(range(start, stop + 1, step)))


def _apply_override(config, path: Tuple[str, ...], value):
    """Replace the attribute at ``path`` inside nested frozen dataclasses."""
    head = path[0]
    if not hasattr(config, head):
        raise AttributeError(
            f"{type(config).__name__} has no parameter {head!r}"
        )
    if len(path) == 1:
        current = getattr(config, head)
        if isinstance(current, enum.Enum) and not isinstance(value, enum.Enum):
            value = type(current)(value)
        return replace(config, **{head: value})
    inner = getattr(config, head)
    if not is_dataclass(inner):
        raise AttributeError(f"{head!r} is not a parameter group")
    return replace(config, **{head: _apply_override(inner, path[1:], value)})


def format_value(value) -> str:
    if isinstance(value, enum.Enum):
        return str(value.value)
    return str(value)


# ----------------------------------------------------------------------
# Candidates
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Candidate:
    """One point of a search space, compiled to a concrete configuration."""

    index: int
    name: str
    config: SimulationConfig
    assignment: Tuple[Tuple[str, object], ...]

    def assignment_dict(self) -> Dict[str, object]:
        """The dimension assignment as a plain dict (for reports)."""
        return dict(self.assignment)


# ----------------------------------------------------------------------
# The search space
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SearchSpace:
    """A declarative configuration grid plus the benchmarks judging it.

    ``instructions`` is the *full-length* trace size; adaptive strategies
    may evaluate candidates on shorter prefixes first.  ``base`` is the
    configuration every dimension override is applied to; ``baseline`` is
    the fixed reference configuration all objectives normalize against
    (held constant across candidates, so normalization is a pure rescaling
    and never changes dominance relations).
    """

    name: str
    dimensions: Tuple[Dimension, ...]
    benchmarks: Tuple[str, ...] = LOCALITY_DIVERSE_BENCHMARKS
    instructions: int = 4_000
    warmup_fraction: float = 0.3
    seed: int = 0
    base: SimulationConfig = field(default_factory=SimulationConfig.malec)
    baseline: SimulationConfig = field(default_factory=SimulationConfig.base_1ldst)

    def __post_init__(self) -> None:
        if not self.dimensions:
            raise ValueError("a search space needs at least one dimension")
        names = [dim.name for dim in self.dimensions]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate dimension names: {names}")
        if not self.benchmarks:
            raise ValueError("a search space needs at least one benchmark")
        if self.instructions <= 0:
            raise ValueError("search spaces need at least one instruction")
        if not 0.0 <= self.warmup_fraction < 1.0:
            raise ValueError("warmup_fraction must lie in [0, 1)")
        for benchmark in self.benchmarks:
            validate_workload(benchmark)  # raises KeyError for unknown names

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of points in the grid."""
        total = 1
        for dim in self.dimensions:
            total *= len(dim.values)
        return total

    def assignment_at(self, index: int) -> Tuple[Tuple[str, object], ...]:
        """Decode ``index`` into a (dimension name, value) assignment.

        Row-major: the *last* dimension varies fastest, so enumeration
        order matches nested loops over ``dimensions`` in declaration
        order.
        """
        if not 0 <= index < self.size:
            raise IndexError(f"point {index} outside space of size {self.size}")
        digits: List[Tuple[str, object]] = []
        remainder = index
        for dim in reversed(self.dimensions):
            remainder, digit = divmod(remainder, len(dim.values))
            digits.append((dim.name, dim.values[digit]))
        return tuple(reversed(digits))

    def candidate(self, index: int) -> Candidate:
        """Compile point ``index`` into a named :class:`Candidate`."""
        assignment = self.assignment_at(index)
        config = self.base
        for dim, (_, value) in zip(self.dimensions, assignment):
            config = _apply_override(config, tuple(dim.path.split(".")), value)
        label = ",".join(f"{name}={format_value(value)}" for name, value in assignment)
        config = config.with_name(f"{self.base.name}[{label}]")
        return Candidate(
            index=index, name=config.name, config=config, assignment=assignment
        )

    def candidates(self, indices: Sequence[int]) -> List[Candidate]:
        """Compile several points (deterministic: ordered as given)."""
        return [self.candidate(index) for index in indices]

    # ------------------------------------------------------------------
    def cells_for(
        self, candidate: Candidate, instructions: Optional[int] = None
    ) -> List[CampaignCell]:
        """The campaign cells evaluating ``candidate`` (one per benchmark)."""
        return [
            CampaignCell(
                benchmark=benchmark,
                config=candidate.config,
                instructions=instructions or self.instructions,
                warmup_fraction=self.warmup_fraction,
                seed=self.seed,
                trace_hash=workload_trace_hash(benchmark),
            )
            for benchmark in self.benchmarks
        ]

    def describe(self) -> dict:
        """JSON-able manifest of the space (stored alongside DSE results)."""
        return {
            "name": self.name,
            "dimensions": [
                {"name": dim.name, "path": dim.path, "values": [format_value(v) for v in dim.values]}
                for dim in self.dimensions
            ],
            "size": self.size,
            "benchmarks": list(self.benchmarks),
            "instructions": self.instructions,
            "warmup_fraction": self.warmup_fraction,
            "seed": self.seed,
            "base": self.base.name,
            "baseline": self.baseline.name,
        }

    # ------------------------------------------------------------------
    def with_overrides(
        self,
        benchmarks: Optional[Sequence[str]] = None,
        instructions: Optional[int] = None,
        warmup_fraction: Optional[float] = None,
    ) -> "SearchSpace":
        """Copy of the space with some scalar knobs replaced (CLI overrides)."""
        changes = {}
        if benchmarks is not None:
            changes["benchmarks"] = tuple(benchmarks)
        if instructions is not None:
            changes["instructions"] = instructions
        if warmup_fraction is not None:
            changes["warmup_fraction"] = warmup_fraction
        return replace(self, **changes) if changes else self


# ----------------------------------------------------------------------
# Presets
# ----------------------------------------------------------------------
def _sec6d_dimensions() -> Tuple[Dimension, ...]:
    """The four knobs Sec. VI-D varies by hand, as a full grid."""
    return (
        choice("buses", "malec_options.result_buses", (1, 2, 4, 6)),
        choice("ib", "malec_options.input_buffer_capacity", (1, 2, 3)),
        choice("l1lat", "cache.l1_hit_latency", (1, 2, 3)),
        choice("wd", "malec_options.way_determination", ("wt", "wdu")),
    )


#: small locality-diverse subset used by the smoke preset (one high- and one
#: low-locality paper benchmark plus the two synthetic extremes)
_MINI_DSE_BENCHMARKS = ("gzip", "djpeg", "ptrchase", "streamwrite")


def _malec_mini() -> SearchSpace:
    return SearchSpace(
        name="malec-mini",
        dimensions=_sec6d_dimensions(),
        benchmarks=_MINI_DSE_BENCHMARKS,
        instructions=2_000,
    )


def _malec_sensitivity() -> SearchSpace:
    return SearchSpace(
        name="malec-sensitivity",
        dimensions=_sec6d_dimensions()
        + (choice("mw", "malec_options.merge_window", (2, 3, 4)),),
        benchmarks=LOCALITY_DIVERSE_BENCHMARKS,
        instructions=5_000,
    )


def _interfaces() -> SearchSpace:
    """Span the paper's actual trade-off axis: the interface kind itself.

    Within MALEC-only spaces runtime and energy rarely conflict (the same
    knobs improve both), so frontiers can be a single point; crossing the
    Table I interfaces with the L1 latency reproduces the Fig. 4 plane —
    Base2ld1st fast but hungry, Base1ldst frugal but slow, MALEC between —
    where multi-point frontiers live.  The base is the plain ``MALEC``
    factory config; overriding ``interface`` turns it into the baselines
    (which simply ignore the MALEC-only options).
    """
    return SearchSpace(
        name="interfaces",
        dimensions=(
            choice("iface", "interface", ("Base1ldst", "Base2ld1st", "MALEC")),
            choice("l1lat", "cache.l1_hit_latency", (1, 2, 3)),
        ),
        benchmarks=_MINI_DSE_BENCHMARKS,
        instructions=4_000,
    )


SPACE_PRESETS: Dict[str, Callable[[], SearchSpace]] = {
    "malec-mini": _malec_mini,
    "malec-sensitivity": _malec_sensitivity,
    "interfaces": _interfaces,
}

#: preset names in presentation order (shown in ``repro dse`` CLI help)
SPACE_PRESET_NAMES: Tuple[str, ...] = tuple(SPACE_PRESETS)


def space_preset(name: str) -> SearchSpace:
    """Build the named preset space (raises ``KeyError`` for unknown names)."""
    try:
        factory = SPACE_PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown space preset {name!r}; choose from {', '.join(SPACE_PRESET_NAMES)}"
        ) from None
    return factory()
