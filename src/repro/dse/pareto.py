"""Pareto dominance over objective vectors (all objectives minimized).

The paper's whole argument is a point on the energy/performance plane:
MALEC trades a small slowdown for a large L1 energy saving.  The design-
space engine generalizes that to full frontiers — given candidates with
objective vectors (normalized runtime, normalized energy, ...), extract
the non-dominated set and rank everything else by dominance depth.

All comparisons are exact float comparisons on deterministic inputs, so a
frontier is a pure function of the evaluated results: identical across job
counts and across store resumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence, Tuple


@dataclass(frozen=True)
class ParetoPoint:
    """One candidate on the objective plane.

    ``values`` holds the objective vector (one entry per objective, all
    minimized); ``payload`` can carry the evaluated candidate and is
    excluded from equality so two points compare by position and label
    alone.
    """

    label: str
    values: Tuple[float, ...]
    payload: Any = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError("a Pareto point needs at least one objective value")


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True if vector ``a`` Pareto-dominates ``b`` (minimization).

    ``a`` dominates ``b`` when it is no worse in every objective and
    strictly better in at least one.  Equal vectors do not dominate each
    other, so duplicated trade-off points all stay on the frontier.
    """
    if len(a) != len(b):
        raise ValueError("objective vectors must have equal length")
    strictly_better = False
    for left, right in zip(a, b):
        if left > right:
            return False
        if left < right:
            strictly_better = True
    return strictly_better


def _frontier_order(point: ParetoPoint):
    """Deterministic presentation order of a frontier: values, then label."""
    return (point.values, point.label)


def pareto_frontier(points: Sequence[ParetoPoint]) -> List[ParetoPoint]:
    """The non-dominated subset of ``points``, in deterministic order.

    The frontier is sorted by objective vector (then label for exact
    ties), independent of input order, so two runs that evaluated the
    same candidates print the same frontier byte for byte.
    """
    frontier = [
        point
        for point in points
        if not any(
            dominates(other.values, point.values) for other in points if other is not point
        )
    ]
    return sorted(frontier, key=_frontier_order)


def dominance_ranks(points: Sequence[ParetoPoint]) -> List[int]:
    """Non-dominated sorting rank of every point, aligned with the input.

    Rank 0 is the Pareto frontier; rank ``k`` is the frontier of what
    remains after peeling ranks ``0 .. k-1`` (NSGA-style fronts).
    """
    ranks = [-1] * len(points)
    remaining = list(range(len(points)))
    rank = 0
    while remaining:
        front = [
            i
            for i in remaining
            if not any(
                dominates(points[j].values, points[i].values)
                for j in remaining
                if j != i
            )
        ]
        if not front:  # pragma: no cover - only reachable with NaN objectives
            raise ValueError("dominance ranking failed to make progress")
        for i in front:
            ranks[i] = rank
        front_set = set(front)
        remaining = [i for i in remaining if i not in front_set]
        rank += 1
    return ranks


def frontier_and_ranks(
    points: Sequence[ParetoPoint],
) -> Tuple[List[ParetoPoint], Dict[str, int]]:
    """Frontier plus per-label dominance ranks from one ranking pass.

    The frontier is exactly rank 0, presented in :func:`pareto_frontier`'s
    deterministic (values, label) order — one dominance computation serves
    both views, and the ordering contract lives in one place.
    """
    ranks = dominance_ranks(points)
    frontier = sorted(
        (point for point, rank in zip(points, ranks) if rank == 0),
        key=_frontier_order,
    )
    return frontier, {point.label: rank for point, rank in zip(points, ranks)}


def rank_by_label(points: Sequence[ParetoPoint]) -> Dict[str, int]:
    """Convenience view of :func:`dominance_ranks` keyed by point label."""
    return {point.label: rank for point, rank in zip(points, dominance_ranks(points))}
