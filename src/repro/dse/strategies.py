"""Search strategies: which points to evaluate, at which trace length.

Every strategy consumes an *evaluator* (see :class:`repro.dse.engine.Evaluator`)
that turns a list of space indices plus a trace length into
:class:`EvaluatedCandidate` objects, running the underlying simulations
through the campaign executor and store.  Strategies only decide scheduling;
they never touch simulation state, so any strategy is resumable and
dedupe-friendly for free.

* :class:`GridSearch` exhaustively sweeps the space (optionally capped by a
  budget) at full trace length.
* :class:`RandomSearch` samples ``budget`` distinct points with a seeded RNG
  and evaluates them at full length.
* :class:`SuccessiveHalving` samples ``budget`` points, evaluates them on a
  short trace prefix, keeps the best ``1/eta`` — ordered by Pareto dominance
  rank, then scalarized score, and never fewer than the rung's non-dominated
  front — and re-evaluates the survivors on ``eta``-times longer traces,
  repeating until the full length is reached: cheap triage for wide spaces
  that still preserves the extremes of the trade-off curve.  Because shorter
  and longer evaluations are distinct campaign cells, every rung is
  persisted and deduplicated by the result store like any other sweep.

All tie-breaks fall back to the candidate's space index, so schedules are
deterministic functions of (space, seed, budget).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dse.pareto import ParetoPoint, dominance_ranks
from repro.dse.space import SearchSpace


@dataclass(frozen=True)
class EvaluatedCandidate:
    """One candidate evaluated at one trace length."""

    index: int
    name: str
    assignment: Tuple[Tuple[str, object], ...]
    instructions: int
    objective_keys: Tuple[str, ...]
    values: Tuple[float, ...]

    @property
    def objectives(self) -> Dict[str, float]:
        """Objective values keyed by objective name."""
        return dict(zip(self.objective_keys, self.values))

    def score(self) -> float:
        """Scalarized promotion score: the product of all objective values.

        With the default runtime/energy objectives this is exactly the
        energy-delay product; with more objectives it stays a symmetric,
        scale-free aggregate suitable for ranking rungs.
        """
        product = 1.0
        for value in self.values:
            product *= value
        return product


class SearchStrategy:
    """Base class: subclasses implement :meth:`run`."""

    key = ""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    def default_budget(self, space: SearchSpace) -> int:
        """Budget used when the caller passes none."""
        return space.size

    # ------------------------------------------------------------------
    def run(
        self, space: SearchSpace, evaluator, budget: Optional[int] = None
    ) -> Tuple[List[EvaluatedCandidate], List[EvaluatedCandidate]]:
        """Execute the search.

        Returns ``(pool, trail)``: the full-length evaluations eligible for
        the frontier, and every evaluation performed (all rungs), in
        schedule order.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    def _sample(self, space: SearchSpace, budget: Optional[int]) -> List[int]:
        """``budget`` distinct indices, deterministic in (space, seed)."""
        count = self._clamp(space, budget)
        if count >= space.size:
            return list(range(space.size))
        return sorted(random.Random(self.seed).sample(range(space.size), count))

    def _clamp(self, space: SearchSpace, budget: Optional[int]) -> int:
        count = self.default_budget(space) if budget is None else budget
        if count < 1:
            raise ValueError("budget must be >= 1")
        return min(count, space.size)


class GridSearch(SearchStrategy):
    """Exhaustive sweep; a budget evaluates an evenly-strided subsample.

    A budget smaller than the space must not degenerate to the row-major
    index *prefix* (which would pin every leading dimension to its first
    value): the capped sweep instead strides uniformly through the index
    range, so all dimensions keep varying.
    """

    key = "grid"

    def run(self, space, evaluator, budget=None):
        count = self._clamp(space, budget)
        indices = sorted({(i * space.size) // count for i in range(count)})
        pool = evaluator.evaluate(indices, space.instructions)
        return pool, list(pool)


class RandomSearch(SearchStrategy):
    """Seeded uniform sample of the space at full trace length."""

    key = "random"

    def default_budget(self, space: SearchSpace) -> int:
        return min(space.size, 16)

    def run(self, space, evaluator, budget=None):
        indices = self._sample(space, budget)
        pool = evaluator.evaluate(indices, space.instructions)
        return pool, list(pool)


class SuccessiveHalving(SearchStrategy):
    """Adaptive triage: short traces for everyone, full length for survivors.

    Parameters
    ----------
    eta:
        Promotion rate: each rung keeps ``ceil(n / eta)`` candidates — but
        never fewer than the rung's own Pareto front — and multiplies the
        trace length by ``eta``.
    min_instructions:
        Floor for the first rung's trace length.
    """

    key = "halving"

    def __init__(self, seed: int = 0, eta: int = 2, min_instructions: int = 250) -> None:
        super().__init__(seed)
        if eta < 2:
            raise ValueError("eta must be >= 2")
        if min_instructions < 1:
            raise ValueError("min_instructions must be >= 1")
        self.eta = eta
        self.min_instructions = min_instructions

    def default_budget(self, space: SearchSpace) -> int:
        return min(space.size, 16)

    # ------------------------------------------------------------------
    def rung_instructions(self, full: int, candidates: int) -> List[int]:
        """Trace lengths of every rung, ending exactly at ``full``.

        One halving per promotion round: ``ceil(log_eta(candidates))``
        rounds shrink the field to one survivor, so the first rung runs at
        ``full / eta**rounds`` (floored at ``min_instructions``).
        """
        rounds = max(0, math.ceil(math.log(max(candidates, 1), self.eta)))
        lengths = []
        for rung in range(rounds, 0, -1):
            length = max(self.min_instructions, full // self.eta**rung)
            if length < full and (not lengths or length > lengths[-1]):
                lengths.append(length)
        lengths.append(full)
        return lengths

    @staticmethod
    def promote(evaluations: Sequence[EvaluatedCandidate], keep: int) -> List[int]:
        """Indices of the ``keep`` best candidates of one rung.

        Candidates are ordered by Pareto dominance rank first (so the
        extremes of the trade-off curve — excellent on one objective, weak
        on another — are never culled by a scalar aggregate while
        non-dominated), then by scalarized score, then by space index as
        the deterministic tie-break.  The returned indices are sorted so
        the next rung evaluates in canonical order.
        """
        if keep < 1:
            raise ValueError("must keep at least one candidate")
        ordered = sorted(evaluations, key=lambda e: e.index)
        ranks = dominance_ranks(
            [ParetoPoint(label=e.name, values=e.values) for e in ordered]
        )
        ranked = sorted(
            zip(ranks, ordered), key=lambda pair: (pair[0], pair[1].score(), pair[1].index)
        )
        return sorted(e.index for _, e in ranked[:keep])

    def run(self, space, evaluator, budget=None):
        indices = self._sample(space, budget)
        trail: List[EvaluatedCandidate] = []
        pool: List[EvaluatedCandidate] = []
        for length in self.rung_instructions(space.instructions, len(indices)):
            evaluations = evaluator.evaluate(indices, length)
            trail.extend(evaluations)
            if length >= space.instructions:
                pool = evaluations
                break
            # Never promote fewer candidates than the rung's own Pareto
            # front: halving triages the dominated bulk, not the frontier.
            front = dominance_ranks(
                [ParetoPoint(label=e.name, values=e.values) for e in evaluations]
            ).count(0)
            keep = max(1, math.ceil(len(indices) / self.eta), front)
            indices = self.promote(evaluations, keep)
        return pool, trail


STRATEGIES: Dict[str, type] = {
    GridSearch.key: GridSearch,
    RandomSearch.key: RandomSearch,
    SuccessiveHalving.key: SuccessiveHalving,
}

#: strategy names in presentation order (shown in ``repro dse`` CLI help)
STRATEGY_NAMES: Tuple[str, ...] = tuple(STRATEGIES)


def strategy_by_name(name: str, seed: int = 0) -> SearchStrategy:
    """Instantiate the named strategy (raises ``ValueError`` if unknown)."""
    try:
        factory = STRATEGIES[name]
    except KeyError:
        raise ValueError(
            f"unknown strategy {name!r}; choose from {', '.join(STRATEGY_NAMES)}"
        ) from None
    return factory(seed=seed)
