"""The DSE engine: evaluate candidates through the campaign layer, extract
Pareto frontiers over the energy/performance plane.

:func:`run_dse` is the one entry point behind the ``repro dse`` CLI, the
examples and the tests.  Evaluation batches are expressed as ordinary
:class:`~repro.campaign.spec.CampaignSpec` grids — the space's baseline
configuration plus the scheduled candidates over the space's benchmarks —
and executed by :class:`~repro.campaign.executor.ParallelExecutor`, so:

* ``jobs`` fans each batch out over worker processes;
* an attached :class:`~repro.campaign.store.ResultStore` persists every
  cell under its content-hash key, which makes exploration resumable after
  an interrupt and deduplicates evaluations *across strategies* (a halving
  rung, a random sample and a grid sweep that touch the same cell all share
  one record);
* results are bit-identical for any job count, so the extracted frontier is
  a pure function of (space, strategy, seed, budget, objectives).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.campaign.executor import ParallelExecutor, ProgressCallback
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import ResultStore, open_store
from repro.dse.objectives import DEFAULT_OBJECTIVES, Objective, resolve_objectives
from repro.dse.pareto import ParetoPoint, frontier_and_ranks
from repro.dse.space import SearchSpace, format_value
from repro.dse.strategies import (
    EvaluatedCandidate,
    SearchStrategy,
    strategy_by_name,
)
from repro.obs import metrics as obs_metrics
from repro.obs.logs import get_logger

logger = get_logger(__name__)


class Evaluator:
    """Turns (space indices, trace length) into evaluated candidates.

    One evaluator is shared by all rungs of a search, accumulating the
    simulated/resumed cell counts across batches.
    """

    def __init__(
        self,
        space: SearchSpace,
        objectives: Sequence[Objective],
        jobs: Optional[int] = None,
        store: Optional[Union[str, ResultStore]] = None,
        progress: Optional[ProgressCallback] = None,
        trace_log=None,
    ) -> None:
        self.space = space
        self.objectives = tuple(objectives)
        self.jobs = jobs
        # Coerce store URLs ("json:dir", "sqlite:file.db", bare paths) up
        # front so every batch reuses ONE ResultStore instance: the JSON
        # backend's manifest conflict detection is per-writer, and the
        # batches of a single search are intentionally the same writer.
        self.store = open_store(store)
        self.progress = progress
        #: optional TraceEventLog: each batch becomes a span on the parent's
        #: track (its boundary doubles as the halving-rung marker) and the
        #: executor adds per-worker cell spans inside it
        self.trace_log = trace_log
        self.simulated = 0
        self.resumed = 0
        self.batches = 0

    # ------------------------------------------------------------------
    def evaluate(
        self, indices: Sequence[int], instructions: int
    ) -> List[EvaluatedCandidate]:
        """Evaluate the given space points on traces of ``instructions``.

        The baseline configuration rides along in every batch (its cells
        dedupe through the store), so objectives always normalize against
        a baseline simulated at the same trace length.
        """
        space = self.space
        candidates = space.candidates(indices)
        spec = CampaignSpec(
            name=f"dse-{space.name}",
            configurations=(space.baseline,) + tuple(c.config for c in candidates),
            benchmarks=space.benchmarks,
            instructions=instructions,
            warmup_fraction=space.warmup_fraction,
            seed=space.seed,
        )
        executor = ParallelExecutor(
            jobs=self.jobs,
            store=self.store,
            progress=self.progress,
            trace_log=self.trace_log,
        )
        batch_start = time.time()
        results = executor.run(spec)
        batch_end = time.time()
        self.simulated += len(executor.completed_cells)
        self.resumed += len(executor.skipped_cells)
        self.batches += 1
        logger.debug(
            "dse %s: batch %d evaluated %d candidates at %d instructions "
            "(%d simulated, %d resumed)",
            space.name,
            self.batches,
            len(candidates),
            instructions,
            len(executor.completed_cells),
            len(executor.skipped_cells),
        )
        if self.trace_log is not None:
            pid = os.getpid()
            self.trace_log.name_process(pid, "repro")
            # The batch span brackets its cells; for successive-halving
            # searches each batch *is* one rung, so the span boundary is the
            # rung boundary, with the instant event marking its start.
            self.trace_log.add_instant(
                f"rung {self.batches}",
                "dse.rung",
                batch_start * 1e6,
                pid=pid,
                args={"candidates": len(candidates), "instructions": instructions},
            )
            self.trace_log.add_span(
                f"batch {self.batches} ({len(candidates)} candidates)",
                "dse.batch",
                batch_start * 1e6,
                (batch_end - batch_start) * 1e6,
                pid=pid,
                tid=1,
                args={"instructions": instructions},
            )
        if obs_metrics.enabled():
            registry = obs_metrics.registry
            registry.counter("dse.batches").inc()
            registry.counter("dse.cells_simulated").inc(
                len(executor.completed_cells)
            )
            registry.counter("dse.cells_resumed").inc(len(executor.skipped_cells))

        baseline = {
            run.benchmark: run.results[space.baseline.name] for run in results.runs
        }
        keys = tuple(objective.key for objective in self.objectives)
        evaluated = []
        for candidate in candidates:
            per_benchmark = {
                run.benchmark: run.results[candidate.name] for run in results.runs
            }
            values = tuple(
                objective.evaluate(per_benchmark, baseline)
                for objective in self.objectives
            )
            evaluated.append(
                EvaluatedCandidate(
                    index=candidate.index,
                    name=candidate.name,
                    assignment=candidate.assignment,
                    instructions=instructions,
                    objective_keys=keys,
                    values=values,
                )
            )
        return evaluated


@dataclass
class DseResult:
    """Everything one design-space exploration produced."""

    space: SearchSpace
    strategy: str
    objective_keys: Tuple[str, ...]
    #: every evaluation performed, in schedule order (all rungs)
    evaluations: List[EvaluatedCandidate] = field(default_factory=list)
    #: full-trace-length evaluations eligible for the frontier, index order
    pool: List[EvaluatedCandidate] = field(default_factory=list)
    #: the non-dominated subset of ``pool``, deterministic order
    frontier: List[EvaluatedCandidate] = field(default_factory=list)
    #: dominance rank (0 = frontier) of every pool candidate, by name
    ranks: Dict[str, int] = field(default_factory=dict)
    #: cells freshly simulated / loaded from the store across all batches
    cells_simulated: int = 0
    cells_resumed: int = 0

    def describe(self) -> dict:
        """JSON-able manifest of the exploration (stored as ``dse.json``)."""
        return {
            "space": self.space.describe(),
            "strategy": self.strategy,
            "objectives": list(self.objective_keys),
            "evaluations": len(self.evaluations),
            "pool": len(self.pool),
            "frontier": [
                {
                    "name": candidate.name,
                    # format_value: enum-valued dimensions (e.g. the
                    # interface kind) must stay JSON-serializable here.
                    "assignment": {
                        key: format_value(value)
                        for key, value in candidate.assignment
                    },
                    "objectives": candidate.objectives,
                }
                for candidate in self.frontier
            ],
            "cells_simulated": self.cells_simulated,
            "cells_resumed": self.cells_resumed,
        }


def extract_frontier(
    pool: Sequence[EvaluatedCandidate],
) -> Tuple[List[EvaluatedCandidate], Dict[str, int]]:
    """Frontier and dominance ranks of full-length evaluations.

    Points enter the dominance computation sorted by space index, so the
    outcome is independent of the order strategies delivered them.  The
    frontier is rank 0 of the non-dominated sort (one dominance pass),
    presented in :func:`~repro.dse.pareto.pareto_frontier`'s deterministic
    (values, label) order.
    """
    ordered = sorted(pool, key=lambda candidate: candidate.index)
    points = [
        ParetoPoint(label=c.name, values=c.values, payload=c) for c in ordered
    ]
    frontier, ranks = frontier_and_ranks(points)
    return [point.payload for point in frontier], ranks


def run_dse(
    space: SearchSpace,
    strategy: str = "grid",
    objectives: Sequence[str] = DEFAULT_OBJECTIVES,
    budget: Optional[int] = None,
    jobs: Optional[int] = None,
    store=None,
    seed: int = 0,
    progress: Optional[ProgressCallback] = None,
    trace_log=None,
) -> DseResult:
    """Explore ``space`` and return its Pareto frontier.

    Parameters mirror the ``repro dse`` CLI: ``strategy`` is one of
    ``grid``/``random``/``halving``, ``budget`` caps the number of
    candidates, ``jobs``/``store`` are forwarded to the campaign executor
    (making the search parallel and resumable; ``store`` accepts a
    :class:`~repro.campaign.store.ResultStore` or a store URL such as
    ``json:results/dir`` or ``sqlite:results.db``), and ``seed`` feeds the
    sampling strategies.  ``trace_log`` optionally records batch/rung spans
    and per-worker cell spans as Chrome trace events (``--trace-out``).  The
    returned frontier is bit-identical for any ``jobs`` value and across
    interrupt/resume cycles of the same store.
    """
    resolved = resolve_objectives(tuple(objectives))
    search: SearchStrategy = (
        strategy if isinstance(strategy, SearchStrategy) else strategy_by_name(strategy, seed=seed)
    )
    evaluator = Evaluator(
        space, resolved, jobs=jobs, store=store, progress=progress,
        trace_log=trace_log,
    )
    pool, trail = search.run(space, evaluator, budget=budget)
    pool = sorted(pool, key=lambda candidate: candidate.index)
    frontier, ranks = extract_frontier(pool)
    result = DseResult(
        space=space,
        strategy=search.key,
        objective_keys=tuple(objective.key for objective in resolved),
        evaluations=trail,
        pool=pool,
        frontier=frontier,
        ranks=ranks,
        cells_simulated=evaluator.simulated,
        cells_resumed=evaluator.resumed,
    )
    store = evaluator.store
    if store is not None:
        manifest_path = store.root / "dse.json"
        tmp = manifest_path.with_suffix(".tmp")
        tmp.write_text(json.dumps(result.describe(), indent=1, sort_keys=True))
        tmp.replace(manifest_path)
    return result
