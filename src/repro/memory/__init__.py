"""Memory substrate: address arithmetic, DRAM model and hierarchy glue.

This package provides the lowest layer of the MALEC reproduction: the
address-space geometry shared by every other component (pages, cache lines,
banks, sub-blocks), a simple fixed-latency DRAM model and the
:class:`~repro.memory.hierarchy.MemoryHierarchy` container that wires the L1
data cache, the unified L2 and DRAM together.
"""

from repro.memory.address import AddressLayout, DEFAULT_LAYOUT, align_down, align_up
from repro.memory.dram import DRAMModel
from repro.memory.hierarchy import MemoryHierarchy

__all__ = [
    "AddressLayout",
    "DEFAULT_LAYOUT",
    "align_down",
    "align_up",
    "DRAMModel",
    "MemoryHierarchy",
]
