"""Address-space geometry shared by every component of the MALEC model.

The paper (Table II) assumes a 32-bit address space, 4 KByte pages, a 32 KByte
4-way set-associative L1 data cache with 64-byte lines split across four
independent banks, and 128-bit sub-blocks inside each line.  Every structure
in the reproduction (TLBs, way tables, cache banks, store/merge buffers,
arbitration logic) slices addresses into the same fields, so the geometry is
centralised here in :class:`AddressLayout`.

Address fields (for the default layout)::

    31                      12 11          6 5      4 3        0
    +-------------------------+-------------+--------+---------+
    |        page id (20)     | line-in-page | sub-   | byte in |
    |                         |     (6)      | block  | sub-blk |
    +-------------------------+-------------+--------+---------+
                              |<------- page offset (12) ------>|

The cache sees the same address as ``tag | set | bank | line offset``; the
bank is selected by the low bits of the line address so that consecutive
lines map to different banks (the interleaving the paper relies on to service
several loads per cycle).

Because the field extractors sit on the simulator's innermost loops, every
derived width, shift and mask is computed *once* at construction time and
stored as a plain attribute (the layout is frozen, so they can never go
stale), and :meth:`AddressLayout.decompose` memoises the full field split of
an address — page, line, bank, set, tag — so each distinct address is
decomposed a single time per layout no matter how many interfaces,
configurations or sweep cells touch it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NamedTuple


def _is_power_of_two(value: int) -> bool:
    """Return ``True`` if ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def _log2(value: int) -> int:
    """Exact integer log2 of a power of two."""
    if not _is_power_of_two(value):
        raise ValueError(f"{value} is not a power of two")
    return value.bit_length() - 1


def align_down(address: int, granule: int) -> int:
    """Align ``address`` downwards to a multiple of ``granule``."""
    if not _is_power_of_two(granule):
        raise ValueError(f"granule {granule} must be a power of two")
    return address & ~(granule - 1)


def align_up(address: int, granule: int) -> int:
    """Align ``address`` upwards to a multiple of ``granule``."""
    if not _is_power_of_two(granule):
        raise ValueError(f"granule {granule} must be a power of two")
    return (address + granule - 1) & ~(granule - 1)


class AddressParts(NamedTuple):
    """The complete field split of one address (see :meth:`AddressLayout.decompose`)."""

    page_id: int
    page_offset: int
    line_number: int
    line_in_page: int
    subblock_in_line: int
    bank_index: int
    set_index: int
    tag: int


@dataclass(frozen=True)
class AddressLayout:
    """Geometry of the simulated address space and L1 data cache.

    Parameters mirror Table II of the paper.  All sizes are in bytes and must
    be powers of two; consistency is validated at construction time.

    Attributes
    ----------
    address_bits:
        Width of virtual and physical addresses (the paper uses 32).
    page_bytes:
        Page size; 4 KByte in the paper.
    line_bytes:
        L1 cache line size; 64 bytes in the paper.
    l1_capacity_bytes:
        Total L1 data capacity; 32 KByte in the paper.
    l1_associativity:
        L1 set associativity; 4 in the paper.
    l1_banks:
        Number of independent single-ported L1 banks; 4 in the paper.
    subblock_bytes:
        Width of a data-array sub-block; 16 bytes (128 bit) in the paper.

    All derived widths (``page_offset_bits``, ``tag_bits``, ...) are plain
    attributes precomputed at construction time.
    """

    address_bits: int = 32
    page_bytes: int = 4096
    line_bytes: int = 64
    l1_capacity_bytes: int = 32 * 1024
    l1_associativity: int = 4
    l1_banks: int = 4
    subblock_bytes: int = 16

    def __post_init__(self) -> None:
        for name in (
            "page_bytes",
            "line_bytes",
            "l1_capacity_bytes",
            "l1_associativity",
            "l1_banks",
            "subblock_bytes",
        ):
            if not _is_power_of_two(getattr(self, name)):
                raise ValueError(f"{name}={getattr(self, name)} must be a power of two")
        page_offset_bits = _log2(self.page_bytes)
        if self.address_bits <= page_offset_bits:
            raise ValueError("address space must be larger than one page")
        if self.line_bytes > self.page_bytes:
            raise ValueError("cache lines cannot exceed the page size")
        if self.subblock_bytes > self.line_bytes:
            raise ValueError("sub-blocks cannot exceed the line size")
        if self.l1_capacity_bytes % (self.line_bytes * self.l1_associativity * self.l1_banks):
            raise ValueError("L1 capacity must divide evenly into banks, sets and ways")

        # ------------------------------------------------------------------
        # Derived widths, masks and caches.  The dataclass is frozen, so the
        # geometry can never change after construction; precomputing every
        # shift/mask here keeps the per-access field extractors branch-free.
        # (`object.__setattr__` is required because the instance is frozen.)
        # ------------------------------------------------------------------
        store = lambda name, value: object.__setattr__(self, name, value)  # noqa: E731
        store("page_offset_bits", page_offset_bits)
        store("page_id_bits", self.address_bits - page_offset_bits)
        store("line_offset_bits", _log2(self.line_bytes))
        store("lines_per_page", self.page_bytes // self.line_bytes)
        store("line_in_page_bits", _log2(self.lines_per_page))
        store("subblocks_per_line", self.line_bytes // self.subblock_bytes)
        store("l1_total_lines", self.l1_capacity_bytes // self.line_bytes)
        store("l1_total_sets", self.l1_total_lines // self.l1_associativity)
        store("l1_sets_per_bank", self.l1_total_sets // self.l1_banks)
        store("bank_bits", _log2(self.l1_banks))
        store("set_bits", _log2(self.l1_sets_per_bank))
        store(
            "tag_bits",
            self.address_bits - self.line_offset_bits - self.bank_bits - self.set_bits,
        )
        store("max_address", (1 << self.address_bits) - 1)
        store(
            "arbitration_comparator_bits",
            self.address_bits - self.page_id_bits - self.line_offset_bits,
        )
        store("_page_offset_mask", self.page_bytes - 1)
        store("_line_offset_mask", self.line_bytes - 1)
        store("_line_in_page_mask", self.lines_per_page - 1)
        store("_bank_mask", self.l1_banks - 1)
        store("_set_mask", self.l1_sets_per_bank - 1)
        store("_set_shift", self.line_offset_bits + self.bank_bits)
        store("_tag_shift", self.line_offset_bits + self.bank_bits + self.set_bits)
        store("_subblock_shift", _log2(self.subblock_bytes))
        store("_decompose_cache", {})

    #: soft cap on the decomposition memo; long-lived processes sweeping many
    #: traces through one shared layout reset the cache instead of growing it
    #: without bound (a reset only costs re-decomposition, never correctness).
    #: 2^18 entries keep worst-case retention in the tens of MB while still
    #: covering every trace footprint the repository generates.
    _DECOMPOSE_CACHE_LIMIT = 1 << 18

    def __getstate__(self) -> dict:
        """Pickle without the decomposition memo (workers rebuild their own)."""
        state = dict(self.__dict__)
        state["_decompose_cache"] = {}
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    # ------------------------------------------------------------------
    # Field extraction
    # ------------------------------------------------------------------
    def check(self, address: int) -> int:
        """Validate that ``address`` fits the address space and return it."""
        if address < 0 or address > self.max_address:
            raise ValueError(
                f"address {address:#x} outside {self.address_bits}-bit address space"
            )
        return address

    def page_id(self, address: int) -> int:
        """Page identifier (virtual or physical, depending on the address)."""
        if address < 0 or address > self.max_address:
            self.check(address)
        return address >> self.page_offset_bits

    def page_offset(self, address: int) -> int:
        """Byte offset within the page."""
        if address < 0 or address > self.max_address:
            self.check(address)
        return address & self._page_offset_mask

    def page_base(self, address: int) -> int:
        """Address of the first byte of the containing page."""
        if address < 0 or address > self.max_address:
            self.check(address)
        return address & ~self._page_offset_mask

    def line_address(self, address: int) -> int:
        """Line-granular address (address with the line offset cleared)."""
        if address < 0 or address > self.max_address:
            self.check(address)
        return address & ~self._line_offset_mask

    def line_number(self, address: int) -> int:
        """Global line index: address divided by the line size."""
        if address < 0 or address > self.max_address:
            self.check(address)
        return address >> self.line_offset_bits

    def line_offset(self, address: int) -> int:
        """Byte offset within the cache line."""
        if address < 0 or address > self.max_address:
            self.check(address)
        return address & self._line_offset_mask

    def line_in_page(self, address: int) -> int:
        """Index of the line inside its page (0..lines_per_page-1)."""
        return self.line_number(address) & self._line_in_page_mask

    def subblock_in_line(self, address: int) -> int:
        """Index of the 128-bit sub-block inside the line."""
        return self.line_offset(address) >> self._subblock_shift

    def bank_index(self, address: int) -> int:
        """L1 bank servicing this address (line-interleaved)."""
        return self.line_number(address) & self._bank_mask

    def set_index(self, address: int) -> int:
        """Set index within the bank."""
        if address < 0 or address > self.max_address:
            self.check(address)
        return (address >> self._set_shift) & self._set_mask

    def tag(self, address: int) -> int:
        """L1 tag for this address."""
        if address < 0 or address > self.max_address:
            self.check(address)
        return address >> self._tag_shift

    def decompose(self, address: int) -> AddressParts:
        """Complete field split of ``address``, memoised per layout.

        Every distinct address is decomposed exactly once per layout
        instance; requests, interfaces and way-determination structures all
        read the same cached :class:`AddressParts`, and traces can pre-warm
        the cache (:meth:`repro.workloads.trace.MemoryTrace.precompute_decompositions`)
        so the simulation itself never decomposes an address it has seen.
        """
        cache = self._decompose_cache
        parts = cache.get(address)
        if parts is None:
            if address < 0 or address > self.max_address:
                self.check(address)
            if len(cache) >= self._DECOMPOSE_CACHE_LIMIT:
                cache.clear()
            line_number = address >> self.line_offset_bits
            parts = AddressParts(
                page_id=address >> self.page_offset_bits,
                page_offset=address & self._page_offset_mask,
                line_number=line_number,
                line_in_page=line_number & self._line_in_page_mask,
                subblock_in_line=(address & self._line_offset_mask)
                >> self._subblock_shift,
                bank_index=line_number & self._bank_mask,
                set_index=(address >> self._set_shift) & self._set_mask,
                tag=address >> self._tag_shift,
            )
            self._decompose_cache[address] = parts
        return parts

    # ------------------------------------------------------------------
    # Field composition
    # ------------------------------------------------------------------
    def compose(self, page_id: int, page_offset: int = 0) -> int:
        """Build an address from a page id and an offset within the page."""
        if page_offset < 0 or page_offset >= self.page_bytes:
            raise ValueError(f"page offset {page_offset} outside the page")
        if page_id < 0 or page_id >= (1 << self.page_id_bits):
            raise ValueError(f"page id {page_id:#x} outside the address space")
        return (page_id << self.page_offset_bits) | page_offset

    def compose_line(self, page_id: int, line_in_page: int, line_offset: int = 0) -> int:
        """Build an address from page id, line-in-page index and byte offset."""
        if line_in_page < 0 or line_in_page >= self.lines_per_page:
            raise ValueError(f"line index {line_in_page} outside the page")
        if line_offset < 0 or line_offset >= self.line_bytes:
            raise ValueError(f"line offset {line_offset} outside the line")
        offset = line_in_page * self.line_bytes + line_offset
        return self.compose(page_id, offset)

    def address_of_line(self, line_number: int) -> int:
        """Inverse of :meth:`line_number`."""
        return self.check(line_number << self.line_offset_bits)

    def same_page(self, a: int, b: int) -> bool:
        """True if both addresses fall within the same page."""
        return self.page_id(a) == self.page_id(b)

    def same_line(self, a: int, b: int) -> bool:
        """True if both addresses fall within the same cache line."""
        return self.line_number(a) == self.line_number(b)

    def same_subblock_pair(self, a: int, b: int) -> bool:
        """True if both addresses fall within the same aligned pair of sub-blocks.

        MALEC expects sub-blocked data arrays to return two adjacent
        sub-blocks per read (Sec. IV), doubling the probability that two loads
        can share one data-array access.  Two addresses can share such a read
        when they sit in the same line and in the same aligned sub-block pair.
        """
        if not self.same_line(a, b):
            return False
        return (self.subblock_in_line(a) >> 1) == (self.subblock_in_line(b) >> 1)


#: Default geometry used throughout the reproduction (Table II of the paper).
DEFAULT_LAYOUT = AddressLayout()
