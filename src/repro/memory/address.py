"""Address-space geometry shared by every component of the MALEC model.

The paper (Table II) assumes a 32-bit address space, 4 KByte pages, a 32 KByte
4-way set-associative L1 data cache with 64-byte lines split across four
independent banks, and 128-bit sub-blocks inside each line.  Every structure
in the reproduction (TLBs, way tables, cache banks, store/merge buffers,
arbitration logic) slices addresses into the same fields, so the geometry is
centralised here in :class:`AddressLayout`.

Address fields (for the default layout)::

    31                      12 11          6 5      4 3        0
    +-------------------------+-------------+--------+---------+
    |        page id (20)     | line-in-page | sub-   | byte in |
    |                         |     (6)      | block  | sub-blk |
    +-------------------------+-------------+--------+---------+
                              |<------- page offset (12) ------>|

The cache sees the same address as ``tag | set | bank | line offset``; the
bank is selected by the low bits of the line address so that consecutive
lines map to different banks (the interleaving the paper relies on to service
several loads per cycle).
"""

from __future__ import annotations

from dataclasses import dataclass, field


def _is_power_of_two(value: int) -> bool:
    """Return ``True`` if ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def _log2(value: int) -> int:
    """Exact integer log2 of a power of two."""
    if not _is_power_of_two(value):
        raise ValueError(f"{value} is not a power of two")
    return value.bit_length() - 1


def align_down(address: int, granule: int) -> int:
    """Align ``address`` downwards to a multiple of ``granule``."""
    if not _is_power_of_two(granule):
        raise ValueError(f"granule {granule} must be a power of two")
    return address & ~(granule - 1)


def align_up(address: int, granule: int) -> int:
    """Align ``address`` upwards to a multiple of ``granule``."""
    if not _is_power_of_two(granule):
        raise ValueError(f"granule {granule} must be a power of two")
    return (address + granule - 1) & ~(granule - 1)


@dataclass(frozen=True)
class AddressLayout:
    """Geometry of the simulated address space and L1 data cache.

    Parameters mirror Table II of the paper.  All sizes are in bytes and must
    be powers of two; consistency is validated at construction time.

    Attributes
    ----------
    address_bits:
        Width of virtual and physical addresses (the paper uses 32).
    page_bytes:
        Page size; 4 KByte in the paper.
    line_bytes:
        L1 cache line size; 64 bytes in the paper.
    l1_capacity_bytes:
        Total L1 data capacity; 32 KByte in the paper.
    l1_associativity:
        L1 set associativity; 4 in the paper.
    l1_banks:
        Number of independent single-ported L1 banks; 4 in the paper.
    subblock_bytes:
        Width of a data-array sub-block; 16 bytes (128 bit) in the paper.
    """

    address_bits: int = 32
    page_bytes: int = 4096
    line_bytes: int = 64
    l1_capacity_bytes: int = 32 * 1024
    l1_associativity: int = 4
    l1_banks: int = 4
    subblock_bytes: int = 16

    def __post_init__(self) -> None:
        for name in (
            "page_bytes",
            "line_bytes",
            "l1_capacity_bytes",
            "l1_associativity",
            "l1_banks",
            "subblock_bytes",
        ):
            if not _is_power_of_two(getattr(self, name)):
                raise ValueError(f"{name}={getattr(self, name)} must be a power of two")
        if self.address_bits <= self.page_offset_bits:
            raise ValueError("address space must be larger than one page")
        if self.line_bytes > self.page_bytes:
            raise ValueError("cache lines cannot exceed the page size")
        if self.subblock_bytes > self.line_bytes:
            raise ValueError("sub-blocks cannot exceed the line size")
        if self.l1_capacity_bytes % (self.line_bytes * self.l1_associativity * self.l1_banks):
            raise ValueError("L1 capacity must divide evenly into banks, sets and ways")

    # ------------------------------------------------------------------
    # Derived widths
    # ------------------------------------------------------------------
    @property
    def page_offset_bits(self) -> int:
        """Number of bits addressing a byte within a page (12 for 4 KByte)."""
        return _log2(self.page_bytes)

    @property
    def page_id_bits(self) -> int:
        """Width of a page identifier (20 for 32-bit addresses, 4 KByte pages)."""
        return self.address_bits - self.page_offset_bits

    @property
    def line_offset_bits(self) -> int:
        """Number of bits addressing a byte within a cache line (6)."""
        return _log2(self.line_bytes)

    @property
    def lines_per_page(self) -> int:
        """Cache lines per page (64 for 4 KByte pages, 64-byte lines)."""
        return self.page_bytes // self.line_bytes

    @property
    def line_in_page_bits(self) -> int:
        """Bits selecting the line within a page (6)."""
        return _log2(self.lines_per_page)

    @property
    def subblocks_per_line(self) -> int:
        """Sub-blocks in one cache line (4 for 64-byte lines, 128-bit blocks)."""
        return self.line_bytes // self.subblock_bytes

    @property
    def l1_total_lines(self) -> int:
        """Total number of lines held by the L1."""
        return self.l1_capacity_bytes // self.line_bytes

    @property
    def l1_total_sets(self) -> int:
        """Total number of L1 sets across all banks (128 in the paper)."""
        return self.l1_total_lines // self.l1_associativity

    @property
    def l1_sets_per_bank(self) -> int:
        """Sets per bank (32 in the paper)."""
        return self.l1_total_sets // self.l1_banks

    @property
    def bank_bits(self) -> int:
        """Bits selecting the bank from the line address."""
        return _log2(self.l1_banks)

    @property
    def set_bits(self) -> int:
        """Bits selecting the set within a bank."""
        return _log2(self.l1_sets_per_bank)

    @property
    def tag_bits(self) -> int:
        """Width of an L1 tag."""
        return self.address_bits - self.line_offset_bits - self.bank_bits - self.set_bits

    @property
    def max_address(self) -> int:
        """Largest representable address."""
        return (1 << self.address_bits) - 1

    # ------------------------------------------------------------------
    # Field extraction
    # ------------------------------------------------------------------
    def check(self, address: int) -> int:
        """Validate that ``address`` fits the address space and return it."""
        if address < 0 or address > self.max_address:
            raise ValueError(
                f"address {address:#x} outside {self.address_bits}-bit address space"
            )
        return address

    def page_id(self, address: int) -> int:
        """Page identifier (virtual or physical, depending on the address)."""
        return self.check(address) >> self.page_offset_bits

    def page_offset(self, address: int) -> int:
        """Byte offset within the page."""
        return self.check(address) & (self.page_bytes - 1)

    def page_base(self, address: int) -> int:
        """Address of the first byte of the containing page."""
        return align_down(self.check(address), self.page_bytes)

    def line_address(self, address: int) -> int:
        """Line-granular address (address with the line offset cleared)."""
        return align_down(self.check(address), self.line_bytes)

    def line_number(self, address: int) -> int:
        """Global line index: address divided by the line size."""
        return self.check(address) >> self.line_offset_bits

    def line_offset(self, address: int) -> int:
        """Byte offset within the cache line."""
        return self.check(address) & (self.line_bytes - 1)

    def line_in_page(self, address: int) -> int:
        """Index of the line inside its page (0..lines_per_page-1)."""
        return self.line_number(address) & (self.lines_per_page - 1)

    def subblock_in_line(self, address: int) -> int:
        """Index of the 128-bit sub-block inside the line."""
        return self.line_offset(address) // self.subblock_bytes

    def bank_index(self, address: int) -> int:
        """L1 bank servicing this address (line-interleaved)."""
        return self.line_number(address) & (self.l1_banks - 1)

    def set_index(self, address: int) -> int:
        """Set index within the bank."""
        return (self.line_number(address) >> self.bank_bits) & (self.l1_sets_per_bank - 1)

    def tag(self, address: int) -> int:
        """L1 tag for this address."""
        return self.line_number(address) >> (self.bank_bits + self.set_bits)

    # ------------------------------------------------------------------
    # Field composition
    # ------------------------------------------------------------------
    def compose(self, page_id: int, page_offset: int = 0) -> int:
        """Build an address from a page id and an offset within the page."""
        if page_offset < 0 or page_offset >= self.page_bytes:
            raise ValueError(f"page offset {page_offset} outside the page")
        if page_id < 0 or page_id >= (1 << self.page_id_bits):
            raise ValueError(f"page id {page_id:#x} outside the address space")
        return (page_id << self.page_offset_bits) | page_offset

    def compose_line(self, page_id: int, line_in_page: int, line_offset: int = 0) -> int:
        """Build an address from page id, line-in-page index and byte offset."""
        if line_in_page < 0 or line_in_page >= self.lines_per_page:
            raise ValueError(f"line index {line_in_page} outside the page")
        if line_offset < 0 or line_offset >= self.line_bytes:
            raise ValueError(f"line offset {line_offset} outside the line")
        offset = line_in_page * self.line_bytes + line_offset
        return self.compose(page_id, offset)

    def address_of_line(self, line_number: int) -> int:
        """Inverse of :meth:`line_number`."""
        return self.check(line_number << self.line_offset_bits)

    def same_page(self, a: int, b: int) -> bool:
        """True if both addresses fall within the same page."""
        return self.page_id(a) == self.page_id(b)

    def same_line(self, a: int, b: int) -> bool:
        """True if both addresses fall within the same cache line."""
        return self.line_number(a) == self.line_number(b)

    def same_subblock_pair(self, a: int, b: int) -> bool:
        """True if both addresses fall within the same aligned pair of sub-blocks.

        MALEC expects sub-blocked data arrays to return two adjacent
        sub-blocks per read (Sec. IV), doubling the probability that two loads
        can share one data-array access.  Two addresses can share such a read
        when they sit in the same line and in the same aligned sub-block pair.
        """
        if not self.same_line(a, b):
            return False
        return (self.subblock_in_line(a) >> 1) == (self.subblock_in_line(b) >> 1)

    # ------------------------------------------------------------------
    # Narrow comparator width used by the Arbitration Unit (Sec. IV)
    # ------------------------------------------------------------------
    @property
    def arbitration_comparator_bits(self) -> int:
        """Width of the narrow same-line comparators in the Arbitration Unit.

        The paper gives ``comparator_bits = address_bits - page_id_bits -
        line_offset_bits`` because all candidates are already known to share
        the page id, so only the line-in-page field needs comparing.
        """
        return self.address_bits - self.page_id_bits - self.line_offset_bits


#: Default geometry used throughout the reproduction (Table II of the paper).
DEFAULT_LAYOUT = AddressLayout()
