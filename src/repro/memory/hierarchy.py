"""Container wiring the full data-memory hierarchy together.

:class:`MemoryHierarchy` builds the L1 data cache, the unified L2 and the
DRAM model from a handful of parameters and a shared statistics object, so
interface models and the simulator only have to deal with one object.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cache.l1_cache import L1DataCache
from repro.cache.l2_cache import L2Cache
from repro.memory.address import AddressLayout, DEFAULT_LAYOUT
from repro.memory.dram import DRAMModel
from repro.stats import StatCounters


@dataclass
class MemoryHierarchy:
    """L1 + L2 + DRAM, built from Table II defaults.

    Parameters
    ----------
    layout:
        Shared address geometry.
    l1_hit_latency / l2_latency / dram_latency:
        Access latencies in cycles (Table II: 2, 12 and 54).
    l1_read_ports:
        Read ports per L1 bank — 1 for Base1ldst and MALEC, 2 for Base2ld1st.
    restrict_way_allocation:
        Forwarded to the L1; see :class:`repro.cache.cache_bank.CacheBank`.
    stats:
        Shared statistics collection; one is created if omitted.
    """

    layout: AddressLayout = DEFAULT_LAYOUT
    l1_hit_latency: int = 2
    l2_latency: int = 12
    dram_latency: int = 54
    l1_read_ports: int = 1
    l1_write_ports: int = 1
    restrict_way_allocation: bool = False
    seed: int = 0
    stats: Optional[StatCounters] = None
    dram: DRAMModel = field(init=False)
    l2: L2Cache = field(init=False)
    l1: L1DataCache = field(init=False)

    def __post_init__(self) -> None:
        if self.stats is None:
            self.stats = StatCounters()
        self.dram = DRAMModel(
            latency_cycles=self.dram_latency, layout=self.layout, stats=self.stats
        )
        self.l2 = L2Cache(
            latency_cycles=self.l2_latency,
            layout=self.layout,
            dram=self.dram,
            stats=self.stats,
            seed=self.seed,
        )
        self.l1 = L1DataCache(
            layout=self.layout,
            hit_latency=self.l1_hit_latency,
            read_ports_per_bank=self.l1_read_ports,
            write_ports_per_bank=self.l1_write_ports,
            restrict_way_allocation=self.restrict_way_allocation,
            l2=self.l2,
            stats=self.stats,
            seed=self.seed,
        )

    def reset_stats(self) -> None:
        """Clear all counters (structures keep their contents)."""
        self.stats.clear()
