"""Fixed-latency DRAM model.

The paper's Table II models main memory as a 256 MByte DRAM with a flat
54-cycle access latency.  MALEC does not change the number of DRAM accesses
(Sec. VI-A), so a simple fixed-latency, capacity-checked model is sufficient:
it provides the latency that L2 misses see and counts accesses so experiments
can confirm that the different L1 interfaces leave DRAM traffic unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.memory.address import AddressLayout, DEFAULT_LAYOUT
from repro.stats import StatCounters


@dataclass
class DRAMModel:
    """Flat-latency main-memory model (Table II: 256 MByte, 54 cycles).

    Parameters
    ----------
    capacity_bytes:
        Total capacity; accesses beyond it raise ``ValueError`` because they
        indicate a broken address generator rather than a legal access.
    latency_cycles:
        Latency added to every access.
    layout:
        Address geometry (used only for validation).
    stats:
        Shared counter collection; ``dram.read`` / ``dram.write`` are counted.
    """

    capacity_bytes: int = 256 * 1024 * 1024
    latency_cycles: int = 54
    layout: AddressLayout = DEFAULT_LAYOUT
    stats: Optional[StatCounters] = None

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ValueError("DRAM capacity must be positive")
        if self.latency_cycles < 0:
            raise ValueError("DRAM latency cannot be negative")
        if self.stats is None:
            self.stats = StatCounters()

    def _check(self, address: int) -> None:
        self.layout.check(address)
        if address >= self.capacity_bytes:
            raise ValueError(
                f"address {address:#x} beyond DRAM capacity {self.capacity_bytes:#x}"
            )

    def read(self, address: int) -> int:
        """Read the line containing ``address``; returns the access latency."""
        self._check(address)
        self.stats.add("dram.read")
        return self.latency_cycles

    def write(self, address: int) -> int:
        """Write the line containing ``address``; returns the access latency."""
        self._check(address)
        self.stats.add("dram.write")
        return self.latency_cycles

    @property
    def accesses(self) -> int:
        """Total number of reads and writes serviced so far."""
        return int(self.stats.get("dram.read") + self.stats.get("dram.write"))
