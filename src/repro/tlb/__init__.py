"""Address translation: page table, TLB and micro-TLB.

The paper's L1 interface performs serialized address translation and data
access (PIPT cache).  The translation path consists of a 16-entry uTLB backed
by a 64-entry TLB (Table II).  Both are fully associative and — because the
cache performs line fills and evictions with *physical* tags — support
reverse lookups by physical page id in addition to the usual virtual-page
lookups (Sec. V).  The uTLB uses second-chance replacement, the TLB random
replacement, as chosen by the paper to limit uWT/WT entry transfers.
"""

from repro.tlb.page_table import PageTable
from repro.tlb.tlb import TLB, TLBEntry, TLBHierarchy, TranslationResult

__all__ = [
    "PageTable",
    "TLB",
    "TLBEntry",
    "TLBHierarchy",
    "TranslationResult",
]
