"""Deterministic page table providing virtual-to-physical mappings.

The reproduction does not model an operating system, so the page table simply
allocates physical frames on first touch.  Frames are assigned by a
deterministic permutation of the allocation order so that physically-indexed
structures (the PIPT L1) see realistic, non-identity mappings while every
simulation run remains reproducible.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.memory.address import AddressLayout, DEFAULT_LAYOUT
from repro.stats import StatCounters


class PageTable:
    """Allocate-on-first-touch virtual to physical page mapping.

    Parameters
    ----------
    layout:
        Address geometry; determines page size and the number of frames.
    physical_pages:
        Number of physical frames available.  Defaults to enough frames for a
        256 MByte DRAM (Table II).  The reproduction never swaps; running out
        of frames raises, as it indicates an unrealistically large synthetic
        footprint.
    seed:
        Perturbs the frame-assignment permutation.
    """

    #: Large odd multiplier used to scatter frame numbers (Knuth's MMIX LCG).
    _MULTIPLIER = 6364136223846793005

    def __init__(
        self,
        layout: AddressLayout = DEFAULT_LAYOUT,
        physical_pages: Optional[int] = None,
        seed: int = 0,
        stats: Optional[StatCounters] = None,
    ) -> None:
        self.layout = layout
        if physical_pages is None:
            physical_pages = (256 * 1024 * 1024) // layout.page_bytes
        if physical_pages <= 0:
            raise ValueError("need at least one physical page")
        self.physical_pages = physical_pages
        self.seed = seed
        self.stats = stats if stats is not None else StatCounters()
        self._vpage_to_ppage: Dict[int, int] = {}
        self._used_frames: set[int] = set()
        self._next_index = 0
        # Per-walk counters resolved to integer slots once (hot path).
        self._h_allocation = self.stats.handle("page_table.allocation")
        self._h_walk = self.stats.handle("page_table.walk")

    # ------------------------------------------------------------------
    def _allocate_frame(self) -> int:
        """Pick the next free frame following a deterministic permutation."""
        if len(self._used_frames) >= self.physical_pages:
            raise RuntimeError("page table ran out of physical frames")
        while True:
            candidate = (
                (self._next_index * self._MULTIPLIER + self.seed) % self.physical_pages
            )
            self._next_index += 1
            if candidate not in self._used_frames:
                self._used_frames.add(candidate)
                return candidate

    def translate_page(self, virtual_page: int) -> int:
        """Return the physical page id for ``virtual_page``, allocating if new."""
        if virtual_page < 0 or virtual_page >= (1 << self.layout.page_id_bits):
            raise ValueError(f"virtual page {virtual_page:#x} outside the address space")
        ppage = self._vpage_to_ppage.get(virtual_page)
        if ppage is None:
            ppage = self._allocate_frame()
            self._vpage_to_ppage[virtual_page] = ppage
            self.stats.bump(self._h_allocation)
        self.stats.bump(self._h_walk)
        return ppage

    def translate(self, virtual_address: int) -> int:
        """Translate a full virtual address to a physical address."""
        vpage = self.layout.page_id(virtual_address)
        offset = self.layout.page_offset(virtual_address)
        return self.layout.compose(self.translate_page(vpage), offset)

    def reverse_translate_page(self, physical_page: int) -> Optional[int]:
        """Virtual page currently mapped to ``physical_page`` (or ``None``)."""
        for vpage, ppage in self._vpage_to_ppage.items():
            if ppage == physical_page:
                return vpage
        return None

    @property
    def mapped_pages(self) -> int:
        """Number of virtual pages mapped so far (the workload footprint)."""
        return len(self._vpage_to_ppage)

    def is_mapped(self, virtual_page: int) -> bool:
        """True if ``virtual_page`` has already been touched."""
        return virtual_page in self._vpage_to_ppage
