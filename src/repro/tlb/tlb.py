"""Fully-associative TLB and micro-TLB with reverse (physical) lookups.

Sec. V of the paper requires the uTLB and TLB to be searchable by physical
page id as well as by virtual page id, because the cache performs line fills
and evictions with physical tags and the way tables attached to each TLB
level must be located from those physical addresses.  The energy methodology
(Sec. VI-A) therefore treats each TLB as *two* fully-associative tag arrays
(a virtual one and a physical one) in front of the shared WT data array;
this module counts the corresponding events separately.

Replacement follows the paper: second chance for the uTLB (to limit the
number of full uWT→WT entry transfers) and random for the TLB.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.cache.replacement import make_replacement_policy
from repro.memory.address import AddressLayout, DEFAULT_LAYOUT
from repro.stats import StatCounters
from repro.tlb.page_table import PageTable


class TLBEntry:
    """One translation held by a TLB (slotted: one per TLB slot)."""

    __slots__ = ("valid", "virtual_page", "physical_page")

    def __init__(
        self, valid: bool = False, virtual_page: int = 0, physical_page: int = 0
    ) -> None:
        self.valid = valid
        self.virtual_page = virtual_page
        self.physical_page = physical_page


class TranslationResult:
    """Outcome of a full address translation through the TLB hierarchy."""

    __slots__ = (
        "virtual_page",
        "physical_page",
        "physical_address",
        "utlb_hit",
        "tlb_hit",
        "latency",
    )

    def __init__(
        self,
        virtual_page: int,
        physical_page: int,
        physical_address: int,
        utlb_hit: bool,
        tlb_hit: bool,
        latency: int,
    ) -> None:
        self.virtual_page = virtual_page
        self.physical_page = physical_page
        self.physical_address = physical_address
        self.utlb_hit = utlb_hit
        self.tlb_hit = tlb_hit
        self.latency = latency


#: Callback fired when a TLB slot is replaced: (slot_index, old_entry, new_entry)
EvictionCallback = Callable[[int, TLBEntry, TLBEntry], None]


class TLB:
    """A fully-associative translation buffer of ``entries`` slots.

    The class is used for both the 64-entry main TLB and the 16-entry uTLB
    (Table II); only the size and the replacement policy differ.  Way tables
    index their entries by TLB slot, so the slot index is part of every
    lookup result and the eviction callback reports which slot was recycled.
    """

    def __init__(
        self,
        entries: int,
        name: str = "tlb",
        replacement: str = "random",
        layout: AddressLayout = DEFAULT_LAYOUT,
        stats: Optional[StatCounters] = None,
        seed: int = 0,
    ) -> None:
        if entries <= 0:
            raise ValueError("a TLB needs at least one entry")
        self.name = name
        self.layout = layout
        self.entries = entries
        self.stats = stats if stats is not None else StatCounters()
        self._slots: List[TLBEntry] = [TLBEntry() for _ in range(entries)]
        self._policy = make_replacement_policy(replacement, entries, seed=seed)
        self._by_vpage: Dict[int, int] = {}
        self._by_ppage: Dict[int, int] = {}
        self._valid_count = 0
        self._eviction_callbacks: List[EvictionCallback] = []
        # Per-access counters resolved to integer slots once (hot path); the
        # f-string name construction otherwise runs on every lookup.
        self._h_lookup = self.stats.handle(f"{name}.lookup")
        self._h_miss = self.stats.handle(f"{name}.miss")
        self._h_hit = self.stats.handle(f"{name}.hit")
        self._h_reverse_lookup = self.stats.handle(f"{name}.reverse_lookup")
        self._h_reverse_miss = self.stats.handle(f"{name}.reverse_miss")
        self._h_reverse_hit = self.stats.handle(f"{name}.reverse_hit")
        self._h_eviction = self.stats.handle(f"{name}.eviction")
        self._h_fill = self.stats.handle(f"{name}.fill")
        # Fixed per-lookup counter patterns, flushed with one bump_many call.
        self._combo_hit = ((self._h_lookup, 1), (self._h_hit, 1))
        self._combo_miss = ((self._h_lookup, 1), (self._h_miss, 1))

    # ------------------------------------------------------------------
    def add_eviction_callback(self, callback: EvictionCallback) -> None:
        """Register a callback fired when a slot's translation is replaced."""
        self._eviction_callbacks.append(callback)

    def slot(self, index: int) -> TLBEntry:
        """Direct access to slot ``index`` (used by way tables and tests)."""
        return self._slots[index]

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def lookup(self, virtual_page: int, count_event: bool = True) -> Optional[int]:
        """Return the slot index holding ``virtual_page`` or ``None``.

        ``count_event`` distinguishes real (energy-consuming) lookups from
        bookkeeping probes issued by the model itself.
        """
        slot = self._by_vpage.get(virtual_page)
        if slot is None:
            if count_event:
                self.stats.bump_many(self._combo_miss)
            return None
        if count_event:
            self.stats.bump_many(self._combo_hit)
        self._policy.touch(slot)
        return slot

    def reverse_lookup(self, physical_page: int, count_event: bool = True) -> Optional[int]:
        """Slot index holding the translation *to* ``physical_page`` (or ``None``).

        Used on cache line fills/evictions, which know only physical tags.
        """
        if count_event:
            self.stats.bump(self._h_reverse_lookup)
        slot = self._by_ppage.get(physical_page)
        if slot is None:
            if count_event:
                self.stats.bump(self._h_reverse_miss)
            return None
        if count_event:
            self.stats.bump(self._h_reverse_hit)
        return slot

    def translation(self, virtual_page: int) -> Optional[int]:
        """Physical page for ``virtual_page`` if resident (no event counted)."""
        slot = self._by_vpage.get(virtual_page)
        if slot is None:
            return None
        return self._slots[slot].physical_page

    @property
    def occupancy(self) -> int:
        """Number of valid translations currently held."""
        return sum(1 for entry in self._slots if entry.valid)

    def resident_virtual_pages(self) -> List[int]:
        """Virtual pages currently covered (helper for invariants)."""
        return sorted(self._by_vpage)

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def insert(self, virtual_page: int, physical_page: int) -> int:
        """Install a translation and return the slot index used.

        If the virtual page is already resident its slot is refreshed.  A
        full TLB evicts a victim chosen by the replacement policy and informs
        the registered eviction callbacks (which the way tables use to write
        back / invalidate their per-slot entries).
        """
        existing = self._by_vpage.get(virtual_page)
        if existing is not None:
            entry = self._slots[existing]
            if entry.physical_page != physical_page:
                self._by_ppage.pop(entry.physical_page, None)
                entry.physical_page = physical_page
                self._by_ppage[physical_page] = existing
            self._policy.touch(existing)
            return existing

        if self._valid_count >= self.entries:
            # Steady state: every slot valid, skip building the mask.
            slot = self._policy.victim_full()
        else:
            slot = self._policy.victim([entry.valid for entry in self._slots])
        old = self._slots[slot]
        new = TLBEntry(valid=True, virtual_page=virtual_page, physical_page=physical_page)
        if old.valid:
            self.stats.bump(self._h_eviction)
            self._by_vpage.pop(old.virtual_page, None)
            self._by_ppage.pop(old.physical_page, None)
        else:
            self._valid_count += 1
        for callback in self._eviction_callbacks:
            callback(slot, old, new)
        self._slots[slot] = new
        self._by_vpage[virtual_page] = slot
        self._by_ppage[physical_page] = slot
        self._policy.touch(slot)
        self.stats.bump(self._h_fill)
        return slot

    def invalidate_all(self) -> None:
        """Drop every translation (no callbacks; used for context switches)."""
        self._slots = [TLBEntry() for _ in range(self.entries)]
        self._by_vpage.clear()
        self._by_ppage.clear()
        self._valid_count = 0


class TLBHierarchy:
    """uTLB + TLB + page table, the translation path of Fig. 2a.

    Parameters follow Table II: a 16-entry uTLB with second-chance
    replacement in front of a 64-entry TLB with random replacement.  A uTLB
    miss that hits in the TLB refills the uTLB; a TLB miss walks the page
    table (``walk_latency`` cycles) and refills both levels.
    """

    def __init__(
        self,
        layout: AddressLayout = DEFAULT_LAYOUT,
        utlb_entries: int = 16,
        tlb_entries: int = 64,
        walk_latency: int = 30,
        page_table: Optional[PageTable] = None,
        stats: Optional[StatCounters] = None,
        seed: int = 0,
    ) -> None:
        self.layout = layout
        self.walk_latency = walk_latency
        self.stats = stats if stats is not None else StatCounters()
        self.page_table = page_table if page_table is not None else PageTable(
            layout=layout, seed=seed, stats=self.stats
        )
        self.utlb = TLB(
            utlb_entries,
            name="utlb",
            replacement="second_chance",
            layout=layout,
            stats=self.stats,
            seed=seed,
        )
        self.tlb = TLB(
            tlb_entries,
            name="tlb",
            replacement="random",
            layout=layout,
            stats=self.stats,
            seed=seed + 1,
        )
        self._h_walk = self.stats.handle("tlb.walk")
        self._page_shift = layout.page_offset_bits

    def translate(self, virtual_address: int) -> TranslationResult:
        """Translate ``virtual_address``; refills uTLB/TLB as needed.

        The returned latency is the *additional* translation latency beyond
        the pipelined uTLB access: 0 for a uTLB hit, 1 cycle for a TLB hit,
        ``walk_latency`` cycles for a page walk.
        """
        parts = self.layout.decompose(virtual_address)
        vpage = parts.page_id
        offset = parts.page_offset

        # Inlined uTLB hit path (the overwhelmingly common case): one dict
        # probe, the hit-counter combo and the second-chance reference bit —
        # exactly what utlb.lookup() + slot() would do, without the calls.
        utlb = self.utlb
        slot = utlb._by_vpage.get(vpage)
        if slot is not None:
            self.stats.bump_many(utlb._combo_hit)
            utlb._policy.touch(slot)
            ppage = utlb._slots[slot].physical_page
            return TranslationResult(
                virtual_page=vpage,
                physical_page=ppage,
                physical_address=(ppage << self._page_shift) | offset,
                utlb_hit=True,
                tlb_hit=True,
                latency=0,
            )
        self.stats.bump_many(utlb._combo_miss)

        tlb_slot = self.tlb.lookup(vpage)
        if tlb_slot is not None:
            ppage = self.tlb.slot(tlb_slot).physical_page
            self.utlb.insert(vpage, ppage)
            return TranslationResult(
                virtual_page=vpage,
                physical_page=ppage,
                physical_address=(ppage << self._page_shift) | offset,
                utlb_hit=False,
                tlb_hit=True,
                latency=1,
            )

        ppage = self.page_table.translate_page(vpage)
        self.stats.bump(self._h_walk)
        self.tlb.insert(vpage, ppage)
        self.utlb.insert(vpage, ppage)
        return TranslationResult(
            virtual_page=vpage,
            physical_page=ppage,
            physical_address=(ppage << self._page_shift) | offset,
            utlb_hit=False,
            tlb_hit=False,
            latency=self.walk_latency,
        )

    def translate_pair(self, virtual_address: int):
        """Translate, returning only ``(physical_address, latency)``.

        Identical state changes and statistics to :meth:`translate`, without
        the :class:`TranslationResult` allocation — the per-load path of the
        interface models only consumes these two fields.
        """
        parts = self.layout.decompose(virtual_address)
        vpage = parts.page_id
        offset = parts.page_offset
        utlb = self.utlb
        slot = utlb._by_vpage.get(vpage)
        if slot is not None:
            self.stats.bump_many(utlb._combo_hit)
            utlb._policy.touch(slot)
            return ((utlb._slots[slot].physical_page << self._page_shift) | offset, 0)
        self.stats.bump_many(utlb._combo_miss)
        tlb_slot = self.tlb.lookup(vpage)
        if tlb_slot is not None:
            ppage = self.tlb.slot(tlb_slot).physical_page
            self.utlb.insert(vpage, ppage)
            return ((ppage << self._page_shift) | offset, 1)
        ppage = self.page_table.translate_page(vpage)
        self.stats.bump(self._h_walk)
        self.tlb.insert(vpage, ppage)
        self.utlb.insert(vpage, ppage)
        return ((ppage << self._page_shift) | offset, self.walk_latency)

    def translate_page_pair(self, virtual_page: int):
        """Translate a bare page id, returning ``(physical_page, latency)``.

        The MALEC interface translates once per page group and only needs
        the physical page id and the added latency.
        """
        utlb = self.utlb
        slot = utlb._by_vpage.get(virtual_page)
        if slot is not None:
            self.stats.bump_many(utlb._combo_hit)
            utlb._policy.touch(slot)
            return (utlb._slots[slot].physical_page, 0)
        self.stats.bump_many(utlb._combo_miss)
        tlb_slot = self.tlb.lookup(virtual_page)
        if tlb_slot is not None:
            ppage = self.tlb.slot(tlb_slot).physical_page
            self.utlb.insert(virtual_page, ppage)
            return (ppage, 1)
        ppage = self.page_table.translate_page(virtual_page)
        self.stats.bump(self._h_walk)
        self.tlb.insert(virtual_page, ppage)
        self.utlb.insert(virtual_page, ppage)
        return (ppage, self.walk_latency)

    def translate_probe(self, virtual_address: int) -> None:
        """Perform a translation purely for its side effects.

        Identical state changes and statistics to :meth:`translate` (uTLB/TLB
        refills, walks, counters) without building a
        :class:`TranslationResult`.  The baselines use this for stores, whose
        translation result is discarded — one fewer allocation per store.
        """
        vpage = self.layout.decompose(virtual_address).page_id
        utlb = self.utlb
        slot = utlb._by_vpage.get(vpage)
        if slot is not None:
            self.stats.bump_many(utlb._combo_hit)
            utlb._policy.touch(slot)
            return
        self.stats.bump_many(utlb._combo_miss)
        tlb_slot = self.tlb.lookup(vpage)
        if tlb_slot is not None:
            ppage = self.tlb.slot(tlb_slot).physical_page
            self.utlb.insert(vpage, ppage)
            return
        ppage = self.page_table.translate_page(vpage)
        self.stats.bump(self._h_walk)
        self.tlb.insert(vpage, ppage)
        self.utlb.insert(vpage, ppage)

    def translate_page(self, virtual_page: int) -> TranslationResult:
        """Translate a bare virtual page id (offset 0)."""
        return self.translate(self.layout.compose(virtual_page, 0))
