"""Generic set-associative storage array.

:class:`SetAssociativeArray` implements the bookkeeping shared by the L1
banks, the L2 cache and (as a degenerate fully-associative case) the TLBs:
tag match, fill with victim selection, eviction and explicit invalidation.
It stores *metadata only* — the reproduction is a timing/energy model, so no
actual data bytes are kept, only tags, validity, dirtiness and an optional
opaque payload (used e.g. by the TLB to hold translations).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.cache.replacement import ReplacementPolicy, make_replacement_policy


class CacheLineState:
    """State of a single way within a set (slotted: one per resident line)."""

    __slots__ = ("valid", "dirty", "tag", "payload")

    def __init__(
        self,
        valid: bool = False,
        dirty: bool = False,
        tag: int = 0,
        payload: Any = None,
    ) -> None:
        self.valid = valid
        self.dirty = dirty
        self.tag = tag
        self.payload = payload

    def reset(self) -> None:
        """Invalidate the line and clear its payload."""
        self.valid = False
        self.dirty = False
        self.tag = 0
        self.payload = None


class LookupResult:
    """Outcome of a tag lookup in one set (slotted: one per lookup)."""

    __slots__ = ("hit", "way", "line")

    def __init__(
        self,
        hit: bool,
        way: Optional[int] = None,
        line: Optional[CacheLineState] = None,
    ) -> None:
        self.hit = hit
        self.way = way
        self.line = line


@dataclass
class EvictionRecord:
    """Description of a line displaced by a fill."""

    set_index: int
    way: int
    tag: int
    dirty: bool
    payload: Any = None


class SetAssociativeArray:
    """A set-associative array of ``num_sets`` sets with ``ways`` ways each.

    Parameters
    ----------
    num_sets:
        Number of sets (1 gives a fully-associative structure).
    ways:
        Associativity.
    replacement:
        Replacement policy name understood by
        :func:`repro.cache.replacement.make_replacement_policy`.
    seed:
        Seed forwarded to stochastic replacement policies.
    on_evict:
        Optional callback invoked with an :class:`EvictionRecord` whenever a
        valid line is displaced or invalidated.  The L1 uses it to keep the
        way tables coherent (Sec. V: validity bits are reset on evictions).
    """

    def __init__(
        self,
        num_sets: int,
        ways: int,
        replacement: str = "lru",
        seed: int = 0,
        on_evict: Optional[Callable[[EvictionRecord], None]] = None,
    ) -> None:
        if num_sets <= 0:
            raise ValueError("num_sets must be positive")
        if ways <= 0:
            raise ValueError("ways must be positive")
        self.num_sets = num_sets
        self.ways = ways
        self.on_evict = on_evict
        self._replacement = replacement
        self._seed = seed
        # Sets are materialised lazily on first touch: a 1 MByte L2 would
        # otherwise allocate 16 K line-state objects and 1 K policies per
        # simulator even though short runs touch a fraction of them.  Each
        # set's replacement policy is still seeded ``seed + set_index``, so
        # lazy construction is bit-identical to the eager one.
        self._sets: Dict[int, List[CacheLineState]] = {}
        self._policies: Dict[int, ReplacementPolicy] = {}
        # Per-set tag -> way index, kept coherent by every mutator; lookups
        # are a dict probe instead of an O(ways) scan over line objects.
        # (All line-state mutation flows through fill/mark_dirty/invalidate*,
        # so the index can never go stale.)  len(tags) doubles as the set's
        # valid count, so the steady-state fill path skips mask building.
        self._tags: Dict[int, Dict[int, int]] = {}
        # Validate the policy name eagerly (and keep the error site here):
        make_replacement_policy(replacement, ways, seed=seed)

    # ------------------------------------------------------------------
    # Lazy set materialisation
    # ------------------------------------------------------------------
    def _lines(self, set_index: int) -> List[CacheLineState]:
        """The ways of ``set_index``, materialising the set on first touch."""
        lines = self._sets.get(set_index)
        if lines is None:
            lines = self._sets[set_index] = [CacheLineState() for _ in range(self.ways)]
            self._tags[set_index] = {}
        return lines

    def _policy(self, set_index: int) -> ReplacementPolicy:
        """The replacement policy of ``set_index`` (lazily constructed)."""
        policy = self._policies.get(set_index)
        if policy is None:
            policy = self._policies[set_index] = make_replacement_policy(
                self._replacement, self.ways, seed=self._seed + set_index
            )
        return policy

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _check_set(self, set_index: int) -> None:
        if set_index < 0 or set_index >= self.num_sets:
            raise ValueError(f"set index {set_index} outside 0..{self.num_sets - 1}")

    def lookup(self, set_index: int, tag: int, update_replacement: bool = True) -> LookupResult:
        """Search ``set_index`` for ``tag``; optionally record the use."""
        self._check_set(set_index)
        tags = self._tags.get(set_index)
        way = tags.get(tag) if tags is not None else None
        if way is None:
            return LookupResult(hit=False)
        if update_replacement:
            self._policy(set_index).touch(way)
        return LookupResult(hit=True, way=way, line=self._sets[set_index][way])

    def find_way(self, set_index: int, tag: int, update_replacement: bool = True):
        """Way index holding ``tag`` or ``None`` — :meth:`lookup` without the
        result object, for callers on the per-access hot path."""
        self._check_set(set_index)
        tags = self._tags.get(set_index)
        way = tags.get(tag) if tags is not None else None
        if way is None:
            return None
        if update_replacement:
            self._policy(set_index).touch(way)
        return way

    def probe(self, set_index: int, tag: int) -> LookupResult:
        """Lookup without disturbing replacement state (used by tests/tools)."""
        return self.lookup(set_index, tag, update_replacement=False)

    def line(self, set_index: int, way: int) -> CacheLineState:
        """Direct access to the state of one way."""
        self._check_set(set_index)
        if way < 0 or way >= self.ways:
            raise ValueError(f"way {way} outside 0..{self.ways - 1}")
        return self._lines(set_index)[way]

    def valid_mask(self, set_index: int) -> List[bool]:
        """Validity of each way in ``set_index``."""
        self._check_set(set_index)
        lines = self._sets.get(set_index)
        if lines is None:
            return [False] * self.ways
        return [line.valid for line in lines]

    def occupancy(self) -> int:
        """Total number of valid lines across the whole array."""
        return sum(
            1 for ways in self._sets.values() for line in ways if line.valid
        )

    def valid_tags(self, set_index: int) -> List[int]:
        """Tags of all valid lines in a set (helper for invariants in tests)."""
        self._check_set(set_index)
        lines = self._sets.get(set_index)
        if lines is None:
            return []
        return [line.tag for line in lines if line.valid]

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def fill(
        self,
        set_index: int,
        tag: int,
        payload: Any = None,
        dirty: bool = False,
        excluded_way: Optional[int] = None,
        preferred_way: Optional[int] = None,
    ) -> tuple[int, Optional[EvictionRecord]]:
        """Insert ``tag`` into ``set_index`` and return ``(way, eviction)``.

        If the tag is already present its payload/dirtiness are refreshed in
        place.  Otherwise a victim is chosen (honouring ``excluded_way`` and
        ``preferred_way``) and, if it held a valid line, an
        :class:`EvictionRecord` is produced and the ``on_evict`` callback
        fired.
        """
        self._check_set(set_index)
        lines = self._lines(set_index)
        tags = self._tags[set_index]
        existing_way = tags.get(tag)
        if existing_way is not None:
            self._policy(set_index).touch(existing_way)
            line = lines[existing_way]
            line.payload = payload if payload is not None else line.payload
            line.dirty = line.dirty or dirty
            return existing_way, None

        policy = self._policy(set_index)
        if preferred_way is not None:
            if preferred_way == excluded_way:
                raise ValueError("preferred way conflicts with excluded way")
            way = preferred_way
        elif excluded_way is None and len(tags) == self.ways:
            # Steady state (every way valid, nothing excluded): skip the mask.
            way = policy.victim_full()
        else:
            way = policy.victim([line.valid for line in lines], excluded_way=excluded_way)
        line = lines[way]

        eviction: Optional[EvictionRecord] = None
        if line.valid:
            eviction = EvictionRecord(
                set_index=set_index,
                way=way,
                tag=line.tag,
                dirty=line.dirty,
                payload=line.payload,
            )
            del tags[line.tag]
            if self.on_evict is not None:
                self.on_evict(eviction)

        line.valid = True
        line.tag = tag
        line.dirty = dirty
        line.payload = payload
        tags[tag] = way
        policy.touch(way)
        return way, eviction

    def mark_dirty(self, set_index: int, way: int) -> None:
        """Set the dirty bit of an existing valid line."""
        line = self.line(set_index, way)
        if not line.valid:
            raise ValueError("cannot mark an invalid line dirty")
        line.dirty = True

    def invalidate(self, set_index: int, tag: int) -> bool:
        """Invalidate ``tag`` if present; returns ``True`` when a line was dropped."""
        result = self.lookup(set_index, tag, update_replacement=False)
        if not result.hit:
            return False
        line = result.line
        record = EvictionRecord(
            set_index=set_index,
            way=result.way,
            tag=line.tag,
            dirty=line.dirty,
            payload=line.payload,
        )
        del self._tags[set_index][line.tag]
        line.reset()
        if self.on_evict is not None:
            self.on_evict(record)
        return True

    def invalidate_all(self) -> None:
        """Invalidate every line without firing eviction callbacks."""
        for ways in self._sets.values():
            for line in ways:
                line.reset()
        for tags in self._tags.values():
            tags.clear()
