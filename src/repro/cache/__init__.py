"""Cache substrate: generic set-associative arrays, L1 banks, L2 and misses.

The L1 data cache matches the configuration of Table II in the paper:
32 KByte, 4-way set-associative, 64-byte lines, physically indexed and
physically tagged, split into four independent single-ported banks with
128-bit sub-blocked data arrays.  The unified L2 (1 MByte, 16-way, 12-cycle)
and the DRAM model back it.

Two access modes are exposed, mirroring Sec. V of the paper:

* *conventional* — all tag arrays and all data arrays of the selected bank are
  probed in parallel;
* *reduced* — the way is known and valid (supplied by a way table or a WDU),
  the tag arrays are bypassed and only the one selected data array is read.
"""

from repro.cache.replacement import (
    LRUReplacement,
    RandomReplacement,
    ReplacementPolicy,
    SecondChanceReplacement,
    TreePLRUReplacement,
    make_replacement_policy,
)
from repro.cache.set_assoc import CacheLineState, LookupResult, SetAssociativeArray
from repro.cache.cache_bank import BankAccessResult, CacheBank
from repro.cache.l1_cache import L1AccessOutcome, L1DataCache
from repro.cache.l2_cache import L2Cache

__all__ = [
    "ReplacementPolicy",
    "LRUReplacement",
    "RandomReplacement",
    "SecondChanceReplacement",
    "TreePLRUReplacement",
    "make_replacement_policy",
    "CacheLineState",
    "LookupResult",
    "SetAssociativeArray",
    "BankAccessResult",
    "CacheBank",
    "L1AccessOutcome",
    "L1DataCache",
    "L2Cache",
]
