"""Banked L1 data cache.

The L1 data cache of Table II: 32 KByte, 4-way set-associative, 64-byte
lines, physically indexed / physically tagged, four independent single-ported
banks with 128-bit sub-blocked data arrays, 2-cycle access latency (1- and
3-cycle variants are explored in Sec. VI).

The cache itself is deliberately unmodified by MALEC ("to allow the re-use of
existing, highly optimized designs"); the interface in front of it decides
which accesses reach which bank in a given cycle and whether they carry way
hints.  Misses are serviced by the L2/DRAM hierarchy; line fills and
evictions invoke registered listeners so that way tables (and the WDU) can
keep their validity bits coherent, exactly as Sec. V requires.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.cache.cache_bank import CacheBank
from repro.cache.l2_cache import L2Cache
from repro.memory.address import AddressLayout, DEFAULT_LAYOUT
from repro.stats import StatCounters

#: Signature of fill/evict listeners: (line_physical_address, way)
LineListener = Callable[[int, int], None]


class L1AccessOutcome:
    """Result of a complete L1 access, including miss handling (slotted).

    Attributes
    ----------
    hit:
        True when the access hit in the L1.
    way:
        Way holding the line after the access (filled way on a miss).
    latency:
        Total latency in cycles, including L2/DRAM time on a miss.
    reduced:
        True when the access used the reduced (tag-bypassed) mode.
    bank:
        Bank index that serviced the access.
    way_hint_wrong:
        True when a supplied hint turned out to be wrong (never for WTs).
    """

    __slots__ = ("hit", "way", "latency", "reduced", "bank", "way_hint_wrong")

    def __init__(
        self,
        hit: bool,
        way: Optional[int],
        latency: int,
        reduced: bool,
        bank: int,
        way_hint_wrong: bool = False,
    ) -> None:
        self.hit = hit
        self.way = way
        self.latency = latency
        self.reduced = reduced
        self.bank = bank
        self.way_hint_wrong = way_hint_wrong


class L1DataCache:
    """Four-bank L1 data cache with miss handling and fill/evict listeners."""

    def __init__(
        self,
        layout: AddressLayout = DEFAULT_LAYOUT,
        hit_latency: int = 2,
        read_ports_per_bank: int = 1,
        write_ports_per_bank: int = 1,
        replacement: str = "lru",
        restrict_way_allocation: bool = False,
        l2: Optional[L2Cache] = None,
        stats: Optional[StatCounters] = None,
        seed: int = 0,
    ) -> None:
        self.layout = layout
        self.hit_latency = hit_latency
        self.stats = stats if stats is not None else StatCounters()
        self.l2 = l2 if l2 is not None else L2Cache(layout=layout, stats=self.stats, seed=seed)
        self._fill_listeners: List[LineListener] = []
        self._evict_listeners: List[LineListener] = []
        self.banks: List[CacheBank] = [
            CacheBank(
                bank_index=index,
                layout=layout,
                read_ports=read_ports_per_bank,
                write_ports=write_ports_per_bank,
                replacement=replacement,
                seed=seed + index,
                stats=self.stats,
                restrict_way_allocation=restrict_way_allocation,
                on_evict=self._notify_evict,
                on_fill=self._notify_fill,
            )
            for index in range(layout.l1_banks)
        ]
        # Per-access counters resolved to integer slots once (hot path).
        self._h_load = self.stats.handle("l1.load")
        self._h_load_hit = self.stats.handle("l1.load_hit")
        self._h_load_miss = self.stats.handle("l1.load_miss")
        self._h_store = self.stats.handle("l1.store")
        self._h_store_hit = self.stats.handle("l1.store_hit")
        self._h_store_miss = self.stats.handle("l1.store_miss")
        self._h_data_write = self.stats.handle("l1.data_write")
        self._combo_load_hit = ((self._h_load, 1), (self._h_load_hit, 1))
        self._combo_load_miss = ((self._h_load, 1), (self._h_load_miss, 1))
        self._combo_store_hit = ((self._h_store, 1), (self._h_store_hit, 1))
        self._combo_store_miss = ((self._h_store, 1), (self._h_store_miss, 1))

    # ------------------------------------------------------------------
    # Listener plumbing (keeps way tables / WDU coherent with the cache)
    # ------------------------------------------------------------------
    def add_fill_listener(self, listener: LineListener) -> None:
        """Register a callback invoked as ``listener(line_address, way)`` on fills."""
        self._fill_listeners.append(listener)

    def add_evict_listener(self, listener: LineListener) -> None:
        """Register a callback invoked as ``listener(line_address, way)`` on evictions."""
        self._evict_listeners.append(listener)

    def _notify_fill(self, line_address: int, way: int) -> None:
        for listener in self._fill_listeners:
            listener(line_address, way)

    def _notify_evict(self, line_address: int, way: int) -> None:
        for listener in self._evict_listeners:
            listener(line_address, way)

    # ------------------------------------------------------------------
    # Accesses
    # ------------------------------------------------------------------
    def bank_for(self, physical_address: int) -> CacheBank:
        """Bank that owns ``physical_address``."""
        return self.banks[self.layout.decompose(physical_address).bank_index]

    def load(
        self,
        physical_address: int,
        way_hint: Optional[int] = None,
        allocate_on_miss: bool = True,
    ) -> L1AccessOutcome:
        """Service a load, handling the miss path through L2/DRAM."""
        hit, way, latency, reduced, bank_index, hint_wrong = self.load_parts(
            physical_address, way_hint, allocate_on_miss
        )
        return L1AccessOutcome(
            hit=hit,
            way=way,
            latency=latency,
            reduced=reduced,
            bank=bank_index,
            way_hint_wrong=hint_wrong,
        )

    def load_parts(
        self,
        physical_address: int,
        way_hint: Optional[int] = None,
        allocate_on_miss: bool = True,
    ):
        """Allocation-free core of :meth:`load` for per-access hot paths.

        Returns ``(hit, way, latency, reduced, bank_index, way_hint_wrong)``.
        """
        parts = self.layout.decompose(physical_address)
        bank_index = parts.bank_index
        bank = self.banks[bank_index]
        hit, way, reduced, hint_wrong = bank.read_parts(
            parts.set_index, parts.tag, way_hint
        )
        if hit:
            self.stats.bump_many(self._combo_load_hit)
            return True, way, self.hit_latency, reduced, bank_index, hint_wrong

        self.stats.bump_many(self._combo_load_miss)
        miss_latency = self.l2.access(physical_address, is_write=False)
        way = None
        if allocate_on_miss:
            way, evicted_address, evicted_dirty = bank.fill_parts(
                physical_address, parts.set_index, parts.tag, False
            )
            if evicted_dirty:
                self.l2.access(evicted_address, is_write=True)
        return False, way, self.hit_latency + miss_latency, False, bank_index, hint_wrong

    def store(
        self,
        physical_address: int,
        way_hint: Optional[int] = None,
        allocate_on_miss: bool = True,
    ) -> L1AccessOutcome:
        """Service a store (write-allocate, write-back)."""
        hit, way, latency, reduced, bank_index = self.store_parts(
            physical_address, way_hint, allocate_on_miss
        )
        return L1AccessOutcome(
            hit=hit,
            way=way,
            latency=latency,
            reduced=reduced,
            bank=bank_index,
            way_hint_wrong=False,
        )

    def store_parts(
        self,
        physical_address: int,
        way_hint: Optional[int] = None,
        allocate_on_miss: bool = True,
    ):
        """Allocation-free core of :meth:`store` for per-access hot paths.

        Returns ``(hit, way, latency, reduced, bank_index)``.
        """
        parts = self.layout.decompose(physical_address)
        bank_index = parts.bank_index
        bank = self.banks[bank_index]
        hit, way, reduced = bank.write_parts(parts.set_index, parts.tag, way_hint)
        if hit:
            self.stats.bump_many(self._combo_store_hit)
            return True, way, self.hit_latency, reduced, bank_index

        self.stats.bump_many(self._combo_store_miss)
        miss_latency = self.l2.access(physical_address, is_write=False)
        way = None
        if allocate_on_miss:
            way, evicted_address, evicted_dirty = bank.fill_parts(
                physical_address, parts.set_index, parts.tag, True
            )
            self.stats.bump(self._h_data_write, 1)
            if evicted_dirty:
                self.l2.access(evicted_address, is_write=True)
        return False, way, self.hit_latency + miss_latency, False, bank_index

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def contains(self, physical_address: int) -> bool:
        """True if the line is resident in the L1."""
        return self.bank_for(physical_address).contains(physical_address)

    def way_of(self, physical_address: int) -> Optional[int]:
        """Way currently holding the line, or ``None``."""
        return self.bank_for(physical_address).way_of(physical_address)

    def occupancy(self) -> int:
        """Number of valid lines across all banks."""
        return sum(bank.occupancy() for bank in self.banks)

    @property
    def load_miss_rate(self) -> float:
        """Fraction of loads that missed so far."""
        return self.stats.ratio("l1.load_miss", "l1.load")

    @property
    def miss_rate(self) -> float:
        """Fraction of all L1 accesses (loads and stores) that missed so far."""
        misses = self.stats.total("l1.load_miss", "l1.store_miss")
        accesses = self.stats.total("l1.load", "l1.store")
        return misses / accesses if accesses else 0.0
