"""Unified L2 cache model.

Table II configures a 1 MByte, 16-way set-associative L2 with a 12-cycle
access latency.  The paper excludes the L2 from the energy accounting (MALEC
changes the *timing* of L2 accesses but not their number), so this model only
needs to provide hit/miss behaviour and latency, and to count accesses so the
invariance of L2 traffic across interfaces can be verified.
"""

from __future__ import annotations

from typing import Optional

from repro.cache.set_assoc import SetAssociativeArray
from repro.memory.address import AddressLayout, DEFAULT_LAYOUT
from repro.memory.dram import DRAMModel
from repro.stats import StatCounters


class L2Cache:
    """Single-array unified L2 backed by a DRAM model.

    Parameters
    ----------
    capacity_bytes / associativity / latency_cycles:
        Table II values by default (1 MByte, 16-way, 12 cycles).
    dram:
        Backing store; a default :class:`~repro.memory.dram.DRAMModel` is
        created when omitted.
    """

    def __init__(
        self,
        capacity_bytes: int = 1024 * 1024,
        associativity: int = 16,
        latency_cycles: int = 12,
        layout: AddressLayout = DEFAULT_LAYOUT,
        dram: Optional[DRAMModel] = None,
        replacement: str = "lru",
        stats: Optional[StatCounters] = None,
        seed: int = 0,
    ) -> None:
        if capacity_bytes % (associativity * layout.line_bytes):
            raise ValueError("L2 capacity must divide into ways and lines")
        self.layout = layout
        self.latency_cycles = latency_cycles
        self.stats = stats if stats is not None else StatCounters()
        self.dram = dram if dram is not None else DRAMModel(layout=layout, stats=self.stats)
        self.num_sets = capacity_bytes // (associativity * layout.line_bytes)
        self.associativity = associativity
        # Power-of-two set counts (the default geometry) split with masks.
        if self.num_sets & (self.num_sets - 1) == 0:
            self._set_mask = self.num_sets - 1
            self._set_bits = self.num_sets.bit_length() - 1
        else:
            self._set_mask = None
            self._set_bits = 0
        self.array = SetAssociativeArray(
            num_sets=self.num_sets,
            ways=associativity,
            replacement=replacement,
            seed=seed,
        )
        # Per-access counters resolved to integer slots once (hot path).
        self._h_access = self.stats.handle("l2.access")
        self._h_hit = self.stats.handle("l2.hit")
        self._h_miss = self.stats.handle("l2.miss")
        self._h_writeback = self.stats.handle("l2.writeback")
        # Fixed per-access counter patterns, flushed with one bump_many call.
        self._combo_hit = ((self._h_access, 1), (self._h_hit, 1))
        self._combo_miss = ((self._h_access, 1), (self._h_miss, 1))

    # ------------------------------------------------------------------
    def _set_and_tag(self, physical_address: int) -> tuple[int, int]:
        line = self.layout.line_number(physical_address)
        if self._set_mask is not None:
            return line & self._set_mask, line >> self._set_bits
        return line % self.num_sets, line // self.num_sets

    def access(self, physical_address: int, is_write: bool = False) -> int:
        """Access the L2 for a line; returns the total latency in cycles.

        On a miss the line is fetched from DRAM and installed; dirty victims
        are written back (counted, latency not added — write-backs are off the
        critical path).
        """
        set_index, tag = self._set_and_tag(physical_address)
        way = self.array.find_way(set_index, tag)
        if way is not None:
            self.stats.bump_many(self._combo_hit)
            if is_write:
                self.array.mark_dirty(set_index, way)
            return self.latency_cycles

        self.stats.bump_many(self._combo_miss)
        dram_latency = self.dram.read(physical_address)
        _, eviction = self.array.fill(set_index, tag, dirty=is_write)
        if eviction is not None and eviction.dirty:
            self.stats.bump(self._h_writeback)
            self.dram.write(physical_address)
        return self.latency_cycles + dram_latency

    def contains(self, physical_address: int) -> bool:
        """True when the line is resident in the L2."""
        set_index, tag = self._set_and_tag(physical_address)
        return self.array.lookup(set_index, tag, update_replacement=False).hit

    @property
    def miss_rate(self) -> float:
        """Fraction of L2 accesses that missed so far."""
        return self.stats.ratio("l2.miss", "l2.access")
