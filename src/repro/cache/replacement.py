"""Replacement policies for set-associative structures.

The reproduction needs several policies:

* **LRU** for the L1 data cache and L2 (a common, deterministic default).
* **Tree-PLRU** as a cheaper alternative used in ablations.
* **Random** for the main TLB (Sec. V: "random replacement for the TLB").
* **Second chance** for the uTLB (Sec. V chooses it specifically to reduce
  the number of full uWT→WT entry transfers on eviction).

All policies operate on way indices of a single set and are owned by that
set's container; they do not know about addresses.  The L1 additionally
supports *excluded ways*: Page-Based Way Determination encodes way+validity
in 2 bits by declaring one specific way per line group "unknown" (Sec. V), so
the cache may be asked to avoid allocating a line into its excluded way.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import List, Optional, Sequence


class ReplacementPolicy(ABC):
    """Victim selection and usage tracking for one set of ``ways`` ways."""

    def __init__(self, ways: int) -> None:
        if ways <= 0:
            raise ValueError("a set needs at least one way")
        self.ways = ways

    @abstractmethod
    def touch(self, way: int) -> None:
        """Record a hit/use of ``way``."""

    @abstractmethod
    def victim(self, valid_mask: Sequence[bool], excluded_way: Optional[int] = None) -> int:
        """Choose a way to evict/fill.

        Parameters
        ----------
        valid_mask:
            ``valid_mask[w]`` is ``True`` when way ``w`` currently holds a
            valid line.  Invalid ways are always preferred as victims.
        excluded_way:
            Optional way that must not be chosen (used by the 2-bit way-table
            encoding restriction).  If every allowed way is invalid-free and
            only the excluded way would remain, the exclusion is honoured by
            picking an allowed valid way instead.
        """

    def _check_way(self, way: int) -> None:
        if way < 0 or way >= self.ways:
            raise ValueError(f"way {way} outside 0..{self.ways - 1}")

    def victim_full(self) -> int:
        """Victim when every way is valid and nothing is excluded.

        Semantically identical to ``victim([True] * ways)``; containers that
        track their valid count call this to skip building the mask (and, in
        subclasses with a dedicated override, the candidate filtering) on the
        steady-state fill path.
        """
        mask = getattr(self, "_full_mask", None)
        if mask is None:
            mask = self._full_mask = [True] * self.ways
        return self.victim(mask)

    def _candidates(
        self, valid_mask: Sequence[bool], excluded_way: Optional[int]
    ) -> List[int]:
        """Ways eligible for victimisation, preferring invalid ways."""
        if len(valid_mask) != self.ways:
            raise ValueError("valid_mask length must equal the number of ways")
        allowed = [w for w in range(self.ways) if w != excluded_way]
        if not allowed:
            raise ValueError("cannot exclude every way of a set")
        invalid = [w for w in allowed if not valid_mask[w]]
        return invalid if invalid else allowed


class LRUReplacement(ReplacementPolicy):
    """True least-recently-used replacement using an explicit recency stack."""

    def __init__(self, ways: int) -> None:
        super().__init__(ways)
        # Most-recently-used first.
        self._stack: List[int] = list(range(ways))

    def touch(self, way: int) -> None:
        if way < 0 or way >= self.ways:
            self._check_way(way)
        stack = self._stack
        if stack[0] != way:  # temporal locality: most touches re-hit the MRU way
            stack.remove(way)
            stack.insert(0, way)

    def victim_full(self) -> int:
        return self._stack[-1]

    def victim(self, valid_mask: Sequence[bool], excluded_way: Optional[int] = None) -> int:
        if len(valid_mask) != self.ways:
            raise ValueError("valid_mask length must equal the number of ways")
        # Fast path for the overwhelmingly common steady-state case: every
        # way valid and nothing excluded — the victim is simply the LRU way.
        if excluded_way is None:
            if all(valid_mask):
                return self._stack[-1]
            # Invalid ways are preferred; picking the least-recently-used
            # invalid way is exactly "first candidate on the reversed stack"
            # with candidates = the invalid ways — no list/set allocations.
            for way in reversed(self._stack):
                if not valid_mask[way]:
                    return way
            raise RuntimeError("LRU stack lost track of ways")  # pragma: no cover
        # Excluded way present: same walk, preferring invalid allowed ways,
        # falling back to any allowed way (identical to the _candidates()
        # selection, allocation-free).
        if self.ways == 1 and excluded_way == 0:
            raise ValueError("cannot exclude every way of a set")
        for way in reversed(self._stack):
            if way != excluded_way and not valid_mask[way]:
                return way
        for way in reversed(self._stack):
            if way != excluded_way:
                return way
        raise RuntimeError("LRU stack lost track of ways")  # pragma: no cover


class TreePLRUReplacement(ReplacementPolicy):
    """Tree pseudo-LRU (binary decision tree), the classic low-cost policy."""

    def __init__(self, ways: int) -> None:
        super().__init__(ways)
        if ways & (ways - 1):
            raise ValueError("tree-PLRU requires a power-of-two number of ways")
        self._bits = [False] * max(ways - 1, 1)

    def touch(self, way: int) -> None:
        self._check_way(way)
        node = 0
        size = self.ways
        while size > 1:
            half = size // 2
            go_right = way >= half
            # Point the bit away from the touched way.
            self._bits[node] = not go_right
            node = 2 * node + (2 if go_right else 1)
            way -= half if go_right else 0
            size = half

    def victim(self, valid_mask: Sequence[bool], excluded_way: Optional[int] = None) -> int:
        candidates = self._candidates(valid_mask, excluded_way)
        if len(candidates) == 1:
            return candidates[0]
        # Follow the tree; if the pointed-to way is not a candidate fall back
        # to the lowest-numbered candidate (keeps the policy deterministic).
        node = 0
        base = 0
        size = self.ways
        while size > 1:
            half = size // 2
            go_right = self._bits[node]
            node = 2 * node + (2 if go_right else 1)
            base += half if go_right else 0
            size = half
        return base if base in candidates else candidates[0]


class RandomReplacement(ReplacementPolicy):
    """Uniformly random victim selection with a private, seedable RNG."""

    def __init__(self, ways: int, seed: int = 0) -> None:
        super().__init__(ways)
        self._rng = random.Random(seed)

    def touch(self, way: int) -> None:
        self._check_way(way)

    def victim_full(self) -> int:
        # choice() over the full way list consumes the RNG exactly as
        # choice(_candidates(all-valid, None)) would — same list contents.
        all_ways = getattr(self, "_all_ways", None)
        if all_ways is None:
            all_ways = self._all_ways = list(range(self.ways))
        return self._rng.choice(all_ways)

    def victim(self, valid_mask: Sequence[bool], excluded_way: Optional[int] = None) -> int:
        return self._rng.choice(self._candidates(valid_mask, excluded_way))


class SecondChanceReplacement(ReplacementPolicy):
    """Second-chance (clock) replacement.

    Each way carries a reference bit which is set on use.  The clock hand
    sweeps the ways; a way with its bit set gets a second chance (bit cleared,
    hand advances), the first way found with a clear bit is evicted.  The
    paper uses this for the uTLB because it tends to keep recently re-used
    pages resident, which limits the number of uWT/WT entry transfers.
    """

    def __init__(self, ways: int) -> None:
        super().__init__(ways)
        self._referenced = [False] * ways
        self._hand = 0

    def touch(self, way: int) -> None:
        if way < 0 or way >= self.ways:
            self._check_way(way)
        self._referenced[way] = True

    def victim_full(self) -> int:
        # Every way is a candidate: the clock sweep needs no membership test
        # and no invalid-way scan (identical selection to victim(all-valid)).
        referenced = self._referenced
        for _ in range(2 * self.ways):
            way = self._hand
            self._hand = (self._hand + 1) % self.ways
            if referenced[way]:
                referenced[way] = False
                continue
            return way
        return self._hand  # pragma: no cover - unreachable, bits were cleared

    def victim(self, valid_mask: Sequence[bool], excluded_way: Optional[int] = None) -> int:
        candidates = set(self._candidates(valid_mask, excluded_way))
        # Invalid candidates need no sweep.
        for way in sorted(candidates):
            if not valid_mask[way]:
                return way
        # Sweep at most two full revolutions: one to clear bits, one to pick.
        for _ in range(2 * self.ways):
            way = self._hand
            self._hand = (self._hand + 1) % self.ways
            if way not in candidates:
                continue
            if self._referenced[way]:
                self._referenced[way] = False
                continue
            return way
        # All candidates were repeatedly referenced; fall back to clock order.
        for way in range(self.ways):  # pragma: no cover - defensive
            candidate = (self._hand + way) % self.ways
            if candidate in candidates:
                return candidate
        raise RuntimeError("no victim found")  # pragma: no cover


_POLICIES = {
    "lru": LRUReplacement,
    "plru": TreePLRUReplacement,
    "random": RandomReplacement,
    "second_chance": SecondChanceReplacement,
}


def make_replacement_policy(name: str, ways: int, seed: int = 0) -> ReplacementPolicy:
    """Factory used by configuration code.

    ``name`` is one of ``lru``, ``plru``, ``random`` or ``second_chance``.
    """
    try:
        cls = _POLICIES[name]
    except KeyError as exc:
        raise ValueError(
            f"unknown replacement policy {name!r}; choose from {sorted(_POLICIES)}"
        ) from exc
    if cls is RandomReplacement:
        return cls(ways, seed=seed)
    return cls(ways)
