"""A single L1 data-cache bank.

The L1 of the paper consists of four independent, single-ported, 4-way
set-associative banks; consecutive cache lines are interleaved across banks
so that a group of accesses to one page usually spreads over several banks
and can be serviced in the same cycle.

A bank exposes the two access modes of Sec. V:

* ``conventional`` — all four tag arrays and all four data arrays are read in
  parallel and the matching way's data is selected;
* ``reduced`` — the requester already knows the way (from a way table or a
  WDU) so the tag arrays are bypassed and exactly one data array is read.

The bank counts the array-level events (``tag_read``, ``data_read``,
``data_write`` …) that the energy model converts into joules, and tracks how
many ports were used each cycle so that the single-ported restriction can be
enforced by the interface models.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.cache.set_assoc import EvictionRecord, SetAssociativeArray
from repro.memory.address import AddressLayout, DEFAULT_LAYOUT
from repro.stats import StatCounters


class BankAccessResult:
    """Outcome of a bank access (slotted: one per access).

    Attributes
    ----------
    hit:
        Whether the line was present.
    way:
        Way that hit (or that was filled on a miss, once the fill happened).
    reduced:
        True when the access bypassed the tag arrays (way known and valid).
    way_hint_wrong:
        True when a supplied way hint did not match reality.  Page-Based Way
        Determination guarantees hints are valid-or-unknown, so this should
        stay zero for way tables; the counter exists to validate that claim
        and to model less precise predictors.
    evicted_line_address:
        Line-granular physical address displaced by a fill, if any.
    """

    __slots__ = (
        "hit",
        "way",
        "reduced",
        "way_hint_wrong",
        "evicted_line_address",
        "evicted_dirty",
    )

    def __init__(
        self,
        hit: bool,
        way: Optional[int] = None,
        reduced: bool = False,
        way_hint_wrong: bool = False,
        evicted_line_address: Optional[int] = None,
        evicted_dirty: bool = False,
    ) -> None:
        self.hit = hit
        self.way = way
        self.reduced = reduced
        self.way_hint_wrong = way_hint_wrong
        self.evicted_line_address = evicted_line_address
        self.evicted_dirty = evicted_dirty


class CacheBank:
    """One single-ported, set-associative L1 bank.

    Parameters
    ----------
    bank_index:
        Position of this bank in the L1 (0..banks-1); used only for stats
        naming and address reconstruction.
    layout:
        Shared address geometry.
    read_ports / write_ports:
        Number of read and write ports.  The MALEC and Base1ldst
        configurations use 1 read/write port; Base2ld1st adds one read port
        (Table I).  Port usage is tracked per cycle by the interface models.
    stats:
        Shared counters; events are prefixed with ``l1.``.
    restrict_way_allocation:
        When True, line fills avoid the "excluded" way of the 2-bit way-table
        encoding (Sec. V) so every resident line is representable by the WT.
    """

    def __init__(
        self,
        bank_index: int,
        layout: AddressLayout = DEFAULT_LAYOUT,
        read_ports: int = 1,
        write_ports: int = 1,
        replacement: str = "lru",
        seed: int = 0,
        stats: Optional[StatCounters] = None,
        restrict_way_allocation: bool = False,
        on_evict: Optional[Callable[[int, int], None]] = None,
        on_fill: Optional[Callable[[int, int], None]] = None,
    ) -> None:
        self.bank_index = bank_index
        self.layout = layout
        self.read_ports = read_ports
        self.write_ports = write_ports
        self.stats = stats if stats is not None else StatCounters()
        self.restrict_way_allocation = restrict_way_allocation
        self._on_evict = on_evict
        self._on_fill = on_fill
        self.array = SetAssociativeArray(
            num_sets=layout.l1_sets_per_bank,
            ways=layout.l1_associativity,
            replacement=replacement,
            seed=seed,
            on_evict=self._handle_eviction,
        )
        # Per-access counters resolved to integer slots once (hot path).
        stats = self.stats
        self._h_eviction = stats.handle("l1.eviction")
        self._h_writeback = stats.handle("l1.writeback")
        self._h_ctrl = stats.handle("l1.ctrl")
        self._h_tag_read = stats.handle("l1.tag_read")
        self._h_data_read = stats.handle("l1.data_read")
        self._h_data_write = stats.handle("l1.data_write")
        self._h_tag_write = stats.handle("l1.tag_write")
        self._h_reduced_access = stats.handle("l1.reduced_access")
        self._h_conventional_access = stats.handle("l1.conventional_access")
        self._h_subblock_pair_read = stats.handle("l1.subblock_pair_read")
        self._h_way_hint_wrong = stats.handle("l1.way_hint_wrong")
        self._h_fill = stats.handle("l1.fill")
        # Fixed per-access counter patterns, flushed with one bump_many call.
        ways = layout.l1_associativity
        self._combo_conv_read = (
            (self._h_ctrl, 1),
            (self._h_tag_read, ways),
            (self._h_data_read, ways),
            (self._h_conventional_access, 1),
        )
        self._combo_reduced_read = (
            (self._h_ctrl, 1),
            (self._h_data_read, 1),
            (self._h_reduced_access, 1),
        )
        self._combo_conv_write = (
            (self._h_ctrl, 1),
            (self._h_tag_read, ways),
            (self._h_conventional_access, 1),
        )
        self._combo_fill = (
            (self._h_ctrl, 1),
            (self._h_fill, 1),
            (self._h_data_write, 1),
            (self._h_tag_write, 1),
        )

    # ------------------------------------------------------------------
    # Address helpers
    # ------------------------------------------------------------------
    def _check_bank(self, physical_address: int) -> None:
        if self.layout.decompose(physical_address).bank_index != self.bank_index:
            raise ValueError(
                f"address {physical_address:#x} belongs to bank "
                f"{self.layout.bank_index(physical_address)}, not {self.bank_index}"
            )

    def _line_address_from(self, set_index: int, tag: int) -> int:
        """Rebuild the line-granular physical address of a stored line."""
        line_number = (
            (tag << (self.layout.bank_bits + self.layout.set_bits))
            | (set_index << self.layout.bank_bits)
            | self.bank_index
        )
        return self.layout.address_of_line(line_number)

    def excluded_way_for(self, physical_address: int) -> Optional[int]:
        """Way that the 2-bit way-table format cannot express for this line.

        Sec. V: lines 0..3 of a page treat way 0 as "unknown", lines 4..7 way
        1, and so on — i.e. the excluded way rotates with the line-in-page
        index divided by the number of banks.
        """
        if not self.restrict_way_allocation:
            return None
        line_in_page = self.layout.line_in_page(physical_address)
        return (line_in_page // self.layout.l1_banks) % self.layout.l1_associativity

    # ------------------------------------------------------------------
    # Accesses
    # ------------------------------------------------------------------
    def _handle_eviction(self, record: EvictionRecord) -> None:
        address = self._line_address_from(record.set_index, record.tag)
        self.stats.bump(self._h_eviction)
        if record.dirty:
            self.stats.bump(self._h_writeback)
        if self._on_evict is not None:
            self._on_evict(address, record.way)

    def lookup(self, physical_address: int, update_replacement: bool = True):
        """Tag lookup only (no energy events); used by fills and tests."""
        self._check_bank(physical_address)
        parts = self.layout.decompose(physical_address)
        return self.array.lookup(
            parts.set_index, parts.tag, update_replacement=update_replacement
        )

    def read(
        self,
        physical_address: int,
        way_hint: Optional[int] = None,
        paired_subblock: bool = True,
    ) -> BankAccessResult:
        """Service a load.

        ``way_hint`` is the way supplied by a way table or WDU; ``None`` means
        unknown and forces a conventional access.  ``paired_subblock`` records
        whether the data arrays return two adjacent sub-blocks (the MALEC
        assumption that doubles merge opportunities); it only affects event
        accounting, not hit/miss behaviour.
        """
        parts = self.layout.decompose(physical_address)
        if parts.bank_index != self.bank_index:
            self._check_bank(physical_address)
        hit, way, reduced, hint_wrong = self.read_parts(
            parts.set_index, parts.tag, way_hint, paired_subblock
        )
        return BankAccessResult(
            hit=hit, way=way, reduced=reduced, way_hint_wrong=hint_wrong
        )

    def read_parts(
        self,
        set_index: int,
        tag: int,
        way_hint: Optional[int],
        paired_subblock: bool = True,
    ):
        """Allocation-free core of :meth:`read` for pre-decomposed callers.

        Returns ``(hit, way, reduced, way_hint_wrong)``.
        """
        stats = self.stats
        if way_hint is not None:
            # Reduced access: tag arrays bypassed, single data array read.
            # (Direct set access: way hints come from way tables/WDU and are
            # in range by construction; the set exists because a hint implies
            # an earlier fill touched it.)
            line = self.array._lines(set_index)[way_hint]
            stats.bump_many(self._combo_reduced_read)
            if paired_subblock:
                stats.bump(self._h_subblock_pair_read)
            if line.valid and line.tag == tag:
                self.array.find_way(set_index, tag)  # refresh replacement state
                return True, way_hint, True, False
            # A wrong hint requires a second, conventional access; way tables
            # never produce this (validity is tracked), but WDU-style
            # predictors might.
            stats.bump(self._h_way_hint_wrong)
            hit, way, reduced, _ = self.read_parts(
                set_index, tag, None, paired_subblock
            )
            return hit, way, reduced, True

        # Conventional access: all tag arrays and all data arrays probed.
        stats.bump_many(self._combo_conv_read)
        if paired_subblock:
            stats.bump(self._h_subblock_pair_read)
        way = self.array.find_way(set_index, tag)
        if way is not None:
            return True, way, False, False
        return False, None, False, False

    def write(self, physical_address: int, way_hint: Optional[int] = None) -> BankAccessResult:
        """Service a store (or merge-buffer eviction) that writes the cache.

        Stores always need to know the correct way before writing; without a
        hint the tag arrays are probed first, with a valid hint the probe is
        skipped (reduced store).
        """
        parts = self.layout.decompose(physical_address)
        if parts.bank_index != self.bank_index:
            self._check_bank(physical_address)
        hit, way, reduced = self.write_parts(parts.set_index, parts.tag, way_hint)
        return BankAccessResult(hit=hit, way=way, reduced=reduced)

    def write_parts(self, set_index: int, tag: int, way_hint: Optional[int]):
        """Allocation-free core of :meth:`write` for pre-decomposed callers.

        Returns ``(hit, way, reduced)``.
        """
        stats = self.stats
        if way_hint is not None:
            line = self.array._lines(set_index)[way_hint]
            if line.valid and line.tag == tag:
                stats.bump(self._h_ctrl)
                stats.bump(self._h_data_write, 1)
                stats.bump(self._h_reduced_access)
                self.array.mark_dirty(set_index, way_hint)
                self.array.find_way(set_index, tag)
                return True, way_hint, True
            stats.bump(self._h_way_hint_wrong)

        stats.bump_many(self._combo_conv_write)
        way = self.array.find_way(set_index, tag)
        if way is not None:
            stats.bump(self._h_data_write, 1)
            self.array.mark_dirty(set_index, way)
            return True, way, False
        return False, None, False

    def fill(self, physical_address: int, dirty: bool = False) -> BankAccessResult:
        """Install the line containing ``physical_address`` after a miss."""
        parts = self.layout.decompose(physical_address)
        if parts.bank_index != self.bank_index:
            self._check_bank(physical_address)
        way, evicted_address, evicted_dirty = self.fill_parts(
            physical_address, parts.set_index, parts.tag, dirty
        )
        return BankAccessResult(
            hit=True,
            way=way,
            reduced=False,
            evicted_line_address=evicted_address,
            evicted_dirty=evicted_dirty,
        )

    def fill_parts(self, physical_address: int, set_index: int, tag: int, dirty: bool):
        """Allocation-free core of :meth:`fill` for pre-decomposed callers.

        Returns ``(way, evicted_line_address, evicted_dirty)``.
        """
        excluded = self.excluded_way_for(physical_address)
        evicted_address: Optional[int] = None
        evicted_dirty = False
        way, eviction = self.array.fill(
            set_index, tag, dirty=dirty, excluded_way=excluded
        )
        if eviction is not None:
            evicted_address = self._line_address_from(eviction.set_index, eviction.tag)
            evicted_dirty = eviction.dirty
        self.stats.bump_many(self._combo_fill)
        if self._on_fill is not None:
            self._on_fill(self.layout.line_address(physical_address), way)
        return way, evicted_address, evicted_dirty

    def contains(self, physical_address: int) -> bool:
        """True if the line holding ``physical_address`` is resident."""
        return self.lookup(physical_address, update_replacement=False).hit

    def way_of(self, physical_address: int) -> Optional[int]:
        """Way currently holding ``physical_address`` or ``None``."""
        result = self.lookup(physical_address, update_replacement=False)
        return result.way if result.hit else None

    def occupancy(self) -> int:
        """Number of valid lines in this bank."""
        return self.array.occupancy()
