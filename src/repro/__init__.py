"""repro: a reproduction of "MALEC: A Multiple Access Low Energy Cache".

MALEC (Boettcher, Gabrielli, Al-Hashimi, Kershaw — DATE 2013) is an L1 data
cache interface for out-of-order superscalar processors that restricts the
data memory subsystem to one page per cycle, shares address translations
among all accesses of that page, merges loads to the same cache line, and
determines cache ways through per-page way tables so that most accesses
bypass the tag arrays.

This package implements the complete system in Python:

* :mod:`repro.core` — the paper's contribution: Input Buffer, Arbitration
  Unit, way tables (uWT/WT) and the prior-art WDU;
* :mod:`repro.cache`, :mod:`repro.tlb`, :mod:`repro.buffers`,
  :mod:`repro.memory` — the substrates (banked L1, L2, DRAM, uTLB/TLB, page
  table, load/store/merge buffers);
* :mod:`repro.interfaces` — the three Table I configurations (Base1ldst,
  Base2ld1st, MALEC);
* :mod:`repro.cpu` — a cycle-level out-of-order memory pipeline;
* :mod:`repro.energy` — a CACTI-like analytic energy model;
* :mod:`repro.workloads` — synthetic SPEC CPU2000 / MediaBench2 stand-ins;
* :mod:`repro.sim` and :mod:`repro.analysis` — the simulator, experiment
  runner and locality analyses behind every figure and table of the paper;
* :mod:`repro.campaign` and :mod:`repro.dse` — the scale layers: parallel,
  resumable sweep campaigns and design-space exploration with Pareto
  frontiers over the energy/performance plane.

Quick start::

    from repro import SimulationConfig, run_configuration
    from repro.workloads import benchmark_profile, generate_trace

    trace = generate_trace(benchmark_profile("gzip"), instructions=5000)
    base = run_configuration(SimulationConfig.base_1ldst(), trace)
    malec = run_configuration(SimulationConfig.malec(), trace)
    print(malec.cycles / base.cycles)          # normalized execution time
    print(malec.energy.total_pj / base.energy.total_pj)
"""

from repro.api import RunOptions
from repro.memory.address import AddressLayout, DEFAULT_LAYOUT
from repro.sim.config import (
    CacheParameters,
    InterfaceKind,
    MalecParameters,
    PipelineParameters,
    SimulationConfig,
    TLBParameters,
)
from repro.sim.simulator import SimulationResult, Simulator, run_configuration
from repro.stats import StatCounters
from repro.analysis.experiments import ExperimentRunner, ExperimentResults
from repro.analysis.locality import PageLocalityAnalyzer
from repro.campaign import (
    CampaignCell,
    CampaignSpec,
    ParallelExecutor,
    ResultStore,
    campaign_preset,
    results_from_store,
    summarize_store,
)
from repro.dse import DseResult, SearchSpace, run_dse, space_preset

__version__ = "1.0.0"

__all__ = [
    "AddressLayout",
    "DEFAULT_LAYOUT",
    "CacheParameters",
    "InterfaceKind",
    "MalecParameters",
    "PipelineParameters",
    "SimulationConfig",
    "TLBParameters",
    "RunOptions",
    "SimulationResult",
    "Simulator",
    "run_configuration",
    "StatCounters",
    "ExperimentRunner",
    "ExperimentResults",
    "PageLocalityAnalyzer",
    "CampaignCell",
    "CampaignSpec",
    "ParallelExecutor",
    "ResultStore",
    "campaign_preset",
    "results_from_store",
    "summarize_store",
    "__version__",
]
