"""Simplified CACTI-like analytic SRAM energy model.

CACTI derives per-access dynamic energy and leakage power from a detailed
circuit model.  For a reproduction that only needs *relative* energies, a
much simpler analytic model suffices, built from three observations that also
hold in CACTI's output:

* dynamic read/write energy grows with the square root of the array capacity
  (bitline/wordline lengths grow with the array's linear dimensions) plus a
  term proportional to the number of bits actually read out (sense amps and
  output drivers);
* CAM searches (fully-associative tags, as in TLBs) pay for charging every
  match line, i.e. a term proportional to ``rows * tag_bits``;
* leakage power is proportional to the number of bit cells;

with multi-porting scaling both: an additional port adds wordlines, bitlines
and larger cells.  The default scaling factors reproduce the paper's
statement that one extra read port raises L1 leakage by roughly 80 %, and
yield the reported ~42 % dynamic-energy increase of the triple-ported
Base2ld1st translation/cache path.

All energies are reported in picojoules and leakage powers in milliwatts for
a 1 GHz clock (Table II); the absolute scale is arbitrary but consistent.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class CactiParameters:
    """Technology/fit parameters of the analytic model.

    The defaults model a 32 nm low-operating-power process (the paper's CACTI
    configuration: low-standby-power cells, high-performance peripherals).

    Attributes
    ----------
    dynamic_alpha_pj:
        Coefficient of the sqrt(capacity-in-bits) term of a read access.
    dynamic_beta_pj_per_bit:
        Energy per bit actually driven out of the array.
    dynamic_write_factor:
        Write energy relative to read energy for the same array.
    cam_gamma_pj_per_bit:
        Energy per searched tag bit of a CAM (fully-associative) lookup.
    leakage_nw_per_bit:
        Leakage power per bit cell in nanowatts.  The default is calibrated
        so that leakage contributes roughly half of the Base1ldst L1
        interface energy, which is the split the paper's normalized results
        imply (Sec. VI-C: the extra read port's +80 % L1 leakage outweighs
        Base2ld1st's shorter computation time, and MALEC's uWT/WT leakage
        shrinks its 33 % dynamic saving to 22 % overall); the paper's CACTI
        configuration ("low dynamic power" objective with low-standby-power
        cells) similarly trades very low dynamic energy against a comparable
        leakage component.
    dynamic_port_factor:
        Additional dynamic energy per extra port (fractional, per port);
        0.38 reproduces the ~42 % dynamic increase of the triple-ported
        Base2ld1st translation/cache path.
    leakage_port_factor:
        Additional leakage per extra port (fractional, per port);
        0.8 reproduces the "+80 % L1 leakage per extra read port" statement.
    peripheral_overhead_pj:
        Fixed per-access decoder/control overhead.
    l1_control_energy_pj:
        Energy of the L1 control logic (decode, bank/way selection, output
        alignment) charged once per bank access regardless of access mode.
        The paper's methodology explicitly includes "control logic" in the L1
        energy; charging it per access means reduced (tag-bypassed) accesses
        save the array energy but not the control overhead, which keeps the
        MALEC dynamic saving in the range the paper reports.
    """

    dynamic_alpha_pj: float = 0.012
    dynamic_beta_pj_per_bit: float = 0.018
    dynamic_write_factor: float = 1.1
    cam_gamma_pj_per_bit: float = 0.004
    leakage_nw_per_bit: float = 85.0
    dynamic_port_factor: float = 0.38
    leakage_port_factor: float = 0.80
    peripheral_overhead_pj: float = 0.6
    l1_control_energy_pj: float = 9.0

    def dynamic_port_scale(self, ports: int) -> float:
        """Dynamic-energy multiplier for an array with ``ports`` ports."""
        if ports < 1:
            raise ValueError("an array needs at least one port")
        return 1.0 + self.dynamic_port_factor * (ports - 1)

    def leakage_port_scale(self, ports: int) -> float:
        """Leakage multiplier for an array with ``ports`` ports."""
        if ports < 1:
            raise ValueError("an array needs at least one port")
        return 1.0 + self.leakage_port_factor * (ports - 1)


@dataclass(frozen=True)
class SRAMArraySpec:
    """Geometry of one SRAM/CAM array.

    Attributes
    ----------
    name:
        Identifier used in reports (e.g. ``l1.data``, ``tlb.vtag``).
    rows:
        Number of rows (sets x ways for caches, entries for TLBs).
    row_bits:
        Bits stored per row.
    output_bits:
        Bits driven out per read access (e.g. one 256-bit sub-block pair for
        an L1 data read, one 128-bit entry for a way table read).
    ports:
        Total number of ports (read + read/write), used for port scaling.
    is_cam:
        True for content-addressable (fully-associative search) arrays; reads
        then model a search across ``rows * search_bits`` match bits.
    search_bits:
        Width of the searched key for CAM arrays (e.g. a 20-bit page id).
    """

    name: str
    rows: int
    row_bits: int
    output_bits: int
    ports: int = 1
    is_cam: bool = False
    search_bits: int = 0

    @property
    def total_bits(self) -> int:
        """Total storage capacity of the array in bits."""
        return self.rows * self.row_bits


class SRAMEnergyModel:
    """Computes per-access energies and leakage for :class:`SRAMArraySpec`.

    The model is deterministic and purely analytic; it exposes the individual
    energy components so that tests can check monotonicity properties
    (bigger arrays cost more, more ports cost more, CAM searches cost more
    than RAM reads of the same geometry, and so on).
    """

    def __init__(self, parameters: CactiParameters = CactiParameters()) -> None:
        self.parameters = parameters

    # ------------------------------------------------------------------
    def read_energy_pj(self, spec: SRAMArraySpec) -> float:
        """Dynamic energy of one read (or CAM search + read) access."""
        p = self.parameters
        energy = p.peripheral_overhead_pj
        energy += p.dynamic_alpha_pj * math.sqrt(max(spec.total_bits, 1))
        energy += p.dynamic_beta_pj_per_bit * spec.output_bits
        if spec.is_cam:
            energy += p.cam_gamma_pj_per_bit * spec.rows * max(spec.search_bits, 1)
        return energy * p.dynamic_port_scale(spec.ports)

    def write_energy_pj(self, spec: SRAMArraySpec) -> float:
        """Dynamic energy of one write access."""
        p = self.parameters
        energy = p.peripheral_overhead_pj
        energy += p.dynamic_alpha_pj * math.sqrt(max(spec.total_bits, 1))
        energy += p.dynamic_beta_pj_per_bit * spec.output_bits * p.dynamic_write_factor
        return energy * p.dynamic_port_scale(spec.ports)

    def leakage_mw(self, spec: SRAMArraySpec) -> float:
        """Static (leakage) power of the array in milliwatts."""
        p = self.parameters
        leakage_nw = p.leakage_nw_per_bit * spec.total_bits
        return leakage_nw * 1e-6 * p.leakage_port_scale(spec.ports)

    def leakage_energy_pj(self, spec: SRAMArraySpec, cycles: int, cycle_time_ns: float = 1.0) -> float:
        """Leakage energy over ``cycles`` cycles of ``cycle_time_ns`` each.

        1 mW over 1 ns is exactly 1 pJ, which keeps the unit conversion
        trivial for the paper's 1 GHz clock.
        """
        if cycles < 0:
            raise ValueError("cycle count cannot be negative")
        return self.leakage_mw(spec) * cycles * cycle_time_ns
