"""Mapping from simulation event counters to SRAM array accesses.

The paper's methodology (Sec. VI-A) combines access statistics from the
cycle-level simulation with per-access energies from CACTI for the following
structures: the L1 data cache (tag and data arrays plus control logic), the
uTLB+uWT and the TLB+WT.  To account for reverse (physical) lookups, each TLB
is treated as two fully-associative tag arrays — a virtual and a physical one
— in front of the shared WT data array.  The LQ, SB and MB are excluded (they
are near-identical across configurations), as are the lower memory levels.

:class:`InterfaceEnergyModel` owns the list of array specifications of one
configuration (ports differ between Base1ldst, Base2ld1st and MALEC) together
with the mapping from event-counter names (produced by the hardware models)
to (array, access-kind) pairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.energy.cacti import CactiParameters, SRAMArraySpec, SRAMEnergyModel
from repro.memory.address import AddressLayout, DEFAULT_LAYOUT
from repro.stats import StatCounters

#: status bits per cache tag (valid + dirty)
_TAG_STATUS_BITS = 2


@dataclass
class EnergyModelConfig:
    """Structural description of one configuration's L1 data subsystem.

    Attributes
    ----------
    l1_ports:
        Ports on every L1 tag/data array (1 for Base1ldst and MALEC,
        2 for Base2ld1st's additional read port).
    tlb_ports:
        Ports on the uTLB/TLB arrays (1 for Base1ldst and MALEC, 3 for
        Base2ld1st: 1 read/write + 2 read, Table I).
    has_way_tables:
        Whether the uWT/WT data arrays exist (MALEC only).
    wdu_entries:
        Entries of a line-based WDU, 0 when no WDU is present.
    wdu_ports:
        Lookup ports of the WDU (4 for the evaluated MALEC configuration).
    include_buffers:
        Include SB/MB lookup energy (off by default, as in the paper).
    utlb_entries / tlb_entries:
        Sizes of the translation structures (Table II).
    """

    l1_ports: int = 1
    tlb_ports: int = 1
    has_way_tables: bool = False
    wdu_entries: int = 0
    wdu_ports: int = 4
    include_buffers: bool = False
    utlb_entries: int = 16
    tlb_entries: int = 64
    sb_entries: int = 24
    mb_entries: int = 4
    layout: AddressLayout = DEFAULT_LAYOUT


#: (structure name, access kind) — kind is "read" or "write"
EventTarget = Tuple[str, str, float]


class InterfaceEnergyModel:
    """Per-configuration array specs plus the event → access mapping."""

    def __init__(
        self,
        config: EnergyModelConfig,
        parameters: CactiParameters = CactiParameters(),
    ) -> None:
        self.config = config
        self.sram = SRAMEnergyModel(parameters)
        self.specs: Dict[str, SRAMArraySpec] = {}
        self.event_map: Dict[str, List[EventTarget]] = {}
        self._access_energy_cache: Dict = {}
        self._leakage_cache: Optional[Dict[str, float]] = None
        self._build_specs()
        self._build_event_map()

    # ------------------------------------------------------------------
    # Array construction
    # ------------------------------------------------------------------
    def _add_spec(self, spec: SRAMArraySpec) -> None:
        self.specs[spec.name] = spec

    def _build_specs(self) -> None:
        cfg = self.config
        layout = cfg.layout
        tag_bits = layout.tag_bits + _TAG_STATUS_BITS
        line_bits = layout.line_bytes * 8
        subblock_pair_bits = 2 * layout.subblock_bytes * 8
        page_id_bits = layout.page_id_bits

        # One way's tag array of one bank; the event counters already count
        # per-way, per-bank accesses so the spec granularity matches.
        self._add_spec(
            SRAMArraySpec(
                name="l1.tag",
                rows=layout.l1_sets_per_bank,
                row_bits=tag_bits,
                output_bits=tag_bits,
                ports=cfg.l1_ports,
            )
        )
        # One way's data array of one bank; reads drive out a sub-block pair.
        self._add_spec(
            SRAMArraySpec(
                name="l1.data",
                rows=layout.l1_sets_per_bank,
                row_bits=line_bits,
                output_bits=subblock_pair_bits,
                ports=cfg.l1_ports,
            )
        )
        # uTLB / TLB: virtual and physical CAM tag arrays + translation data.
        for name, entries in (("utlb", cfg.utlb_entries), ("tlb", cfg.tlb_entries)):
            self._add_spec(
                SRAMArraySpec(
                    name=f"{name}.vtag",
                    rows=entries,
                    row_bits=page_id_bits,
                    output_bits=page_id_bits,
                    ports=cfg.tlb_ports,
                    is_cam=True,
                    search_bits=page_id_bits,
                )
            )
            self._add_spec(
                SRAMArraySpec(
                    name=f"{name}.ptag",
                    rows=entries,
                    row_bits=page_id_bits,
                    output_bits=page_id_bits,
                    ports=1,
                    is_cam=True,
                    search_bits=page_id_bits,
                )
            )
        if cfg.has_way_tables:
            entry_bits = 2 * layout.lines_per_page
            self._add_spec(
                SRAMArraySpec(
                    name="uwt",
                    rows=cfg.utlb_entries,
                    row_bits=entry_bits,
                    output_bits=entry_bits,
                    ports=1,
                )
            )
            self._add_spec(
                SRAMArraySpec(
                    name="wt",
                    rows=cfg.tlb_entries,
                    row_bits=entry_bits,
                    output_bits=entry_bits,
                    ports=1,
                )
            )
        if cfg.wdu_entries:
            line_tag_bits = layout.address_bits - layout.line_offset_bits
            way_bits = max(1, (layout.l1_associativity - 1).bit_length())
            self._add_spec(
                SRAMArraySpec(
                    name="wdu",
                    rows=cfg.wdu_entries,
                    row_bits=line_tag_bits + way_bits + 1,
                    output_bits=way_bits + 1,
                    ports=cfg.wdu_ports,
                    is_cam=True,
                    search_bits=line_tag_bits,
                )
            )
        if cfg.include_buffers:
            self._add_spec(
                SRAMArraySpec(
                    name="sb",
                    rows=cfg.sb_entries,
                    row_bits=layout.address_bits + 32,
                    output_bits=32,
                    ports=1,
                    is_cam=True,
                    search_bits=layout.address_bits,
                )
            )
            self._add_spec(
                SRAMArraySpec(
                    name="mb",
                    rows=cfg.mb_entries,
                    row_bits=layout.address_bits + layout.line_bytes * 8,
                    output_bits=layout.line_bytes * 8,
                    ports=1,
                    is_cam=True,
                    search_bits=layout.address_bits,
                )
            )

    # ------------------------------------------------------------------
    # Event mapping
    # ------------------------------------------------------------------
    def _map(self, event: str, structure: str, kind: str, scale: float = 1.0) -> None:
        if structure not in self.specs:
            return
        self.event_map.setdefault(event, []).append((structure, kind, scale))

    def _build_event_map(self) -> None:
        cfg = self.config
        layout = cfg.layout
        # L1 arrays.
        self._map("l1.tag_read", "l1.tag", "read")
        self._map("l1.tag_write", "l1.tag", "write")
        self._map("l1.data_read", "l1.data", "read")
        self._map("l1.data_write", "l1.data", "write")
        # Translation path: each lookup searches the virtual CAM and reads the
        # translation; reverse lookups search the physical CAM.
        for name in ("utlb", "tlb"):
            self._map(f"{name}.lookup", f"{name}.vtag", "read")
            self._map(f"{name}.reverse_lookup", f"{name}.ptag", "read")
            self._map(f"{name}.fill", f"{name}.vtag", "write")
            self._map(f"{name}.fill", f"{name}.ptag", "write")
        # Way tables.
        if cfg.has_way_tables:
            for name in ("uwt", "wt"):
                self._map(f"{name}.read", name, "read")
                self._map(f"{name}.update", name, "write")
                self._map(f"{name}.entry_transfer", name, "write")
                self._map(f"{name}.clear", name, "write")
        # WDU.
        if cfg.wdu_entries:
            self._map("wdu.lookup", "wdu", "read")
            self._map("wdu.update", "wdu", "write")
        # Store/merge buffer lookups (excluded from the paper's numbers).
        if cfg.include_buffers:
            self._map("sb.lookup_full", "sb", "read")
            self._map("sb.lookup_offset", "sb", "read", scale=0.35)
            self._map("sb.lookup_page_shared", "sb", "read", scale=0.5)
            self._map("sb.insert", "sb", "write")
            self._map("mb.lookup_full", "mb", "read")
            self._map("mb.lookup_offset", "mb", "read", scale=0.35)
            self._map("mb.lookup_page_shared", "mb", "read", scale=0.5)
            self._map("mb.allocate", "mb", "write")
            self._map("mb.merged_store", "mb", "write")

    # ------------------------------------------------------------------
    # Energy computation
    # ------------------------------------------------------------------
    def access_energy_pj(self, structure: str, kind: str) -> float:
        """Per-access dynamic energy of ``structure`` for ``kind`` accesses.

        Memoised per (structure, kind): the value is a pure function of the
        static array specs, and the report path queries it for every event
        of every cell of a sweep.
        """
        key = (structure, kind)
        cached = self._access_energy_cache.get(key)
        if cached is not None:
            return cached
        spec = self.specs[structure]
        if kind == "read":
            energy = self.sram.read_energy_pj(spec)
        elif kind == "write":
            energy = self.sram.write_energy_pj(spec)
        else:
            raise ValueError(f"unknown access kind {kind!r}")
        self._access_energy_cache[key] = energy
        return energy

    def dynamic_energy_pj(self, stats: StatCounters) -> Dict[str, float]:
        """Dynamic energy per structure from the event counters."""
        totals: Dict[str, float] = {name: 0.0 for name in self.specs}
        for event, targets in self.event_map.items():
            count = stats.get(event)
            if not count:
                continue
            for structure, kind, scale in targets:
                totals[structure] += count * scale * self.access_energy_pj(structure, kind)
        # L1 control logic: a fixed energy per bank access (any mode), scaled
        # with the bank's port count like the arrays it steers.
        parameters = self.sram.parameters
        totals["l1.control"] = (
            stats.get("l1.ctrl")
            * parameters.l1_control_energy_pj
            * parameters.dynamic_port_scale(self.config.l1_ports)
        )
        return totals

    def leakage_power_mw(self) -> Dict[str, float]:
        """Leakage power per structure.

        Array multiplicities are applied here: there are ``banks x ways``
        L1 tag/data arrays but only one uTLB/TLB/uWT/WT instance each.
        """
        if self._leakage_cache is not None:
            return self._leakage_cache
        layout = self.config.layout
        multipliers = {
            "l1.tag": layout.l1_banks * layout.l1_associativity,
            "l1.data": layout.l1_banks * layout.l1_associativity,
        }
        self._leakage_cache = {
            name: self.sram.leakage_mw(spec) * multipliers.get(name, 1)
            for name, spec in self.specs.items()
        }
        return self._leakage_cache


def build_energy_model(
    config: EnergyModelConfig, parameters: Optional[CactiParameters] = None
) -> InterfaceEnergyModel:
    """Convenience factory mirroring the other packages' ``build_*`` helpers."""
    if parameters is None:
        parameters = CactiParameters()
    return InterfaceEnergyModel(config, parameters)
