"""Energy accounting: turning counters + cycles into an energy report.

The :class:`EnergyAccountant` combines the dynamic per-structure energies
computed by an :class:`~repro.energy.energy_model.InterfaceEnergyModel` with
leakage energy accumulated over the simulated execution time, producing an
:class:`EnergyReport` that mirrors the breakdown of Fig. 4b (dynamic vs
leakage, per structure and total).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.energy.energy_model import InterfaceEnergyModel
from repro.stats import StatCounters


@dataclass
class StructureEnergy:
    """Energy of one structure, split into dynamic and leakage parts (pJ)."""

    dynamic_pj: float = 0.0
    leakage_pj: float = 0.0

    @property
    def total_pj(self) -> float:
        """Dynamic plus leakage energy."""
        return self.dynamic_pj + self.leakage_pj


@dataclass
class EnergyReport:
    """Complete energy breakdown of one simulation run."""

    cycles: int
    structures: Dict[str, StructureEnergy] = field(default_factory=dict)

    @property
    def dynamic_pj(self) -> float:
        """Total dynamic energy."""
        return sum(item.dynamic_pj for item in self.structures.values())

    @property
    def leakage_pj(self) -> float:
        """Total leakage energy."""
        return sum(item.leakage_pj for item in self.structures.values())

    @property
    def total_pj(self) -> float:
        """Total (dynamic + leakage) energy."""
        return self.dynamic_pj + self.leakage_pj

    @property
    def leakage_share(self) -> float:
        """Fraction of the total energy that is leakage."""
        total = self.total_pj
        return self.leakage_pj / total if total else 0.0

    def normalized_to(self, baseline: "EnergyReport") -> Dict[str, float]:
        """Dynamic/leakage/total relative to a baseline report (Fig. 4b style)."""
        reference = baseline.total_pj
        if reference == 0:
            raise ValueError("baseline report has zero energy")
        return {
            "dynamic": self.dynamic_pj / reference,
            "leakage": self.leakage_pj / reference,
            "total": self.total_pj / reference,
        }

    def summary(self) -> str:
        """Human-readable per-structure table."""
        lines = [f"{'structure':<12s} {'dynamic [pJ]':>16s} {'leakage [pJ]':>16s} {'total [pJ]':>16s}"]
        for name in sorted(self.structures):
            item = self.structures[name]
            lines.append(
                f"{name:<12s} {item.dynamic_pj:>16.1f} {item.leakage_pj:>16.1f} {item.total_pj:>16.1f}"
            )
        lines.append(
            f"{'TOTAL':<12s} {self.dynamic_pj:>16.1f} {self.leakage_pj:>16.1f} {self.total_pj:>16.1f}"
        )
        return "\n".join(lines)


class EnergyAccountant:
    """Computes :class:`EnergyReport` objects for one configuration."""

    def __init__(self, model: InterfaceEnergyModel, cycle_time_ns: float = 1.0) -> None:
        self.model = model
        self.cycle_time_ns = cycle_time_ns

    def report(self, stats: StatCounters, cycles: int) -> EnergyReport:
        """Build the energy report for a finished simulation.

        Parameters
        ----------
        stats:
            Event counters accumulated during the run.
        cycles:
            Total execution time in cycles; leakage scales linearly with it
            (this is why the faster configurations recover part of their
            higher dynamic energy in Fig. 4b).
        """
        if cycles < 0:
            raise ValueError("cycle count cannot be negative")
        report = EnergyReport(cycles=cycles)
        dynamic = self.model.dynamic_energy_pj(stats)
        leakage_power = self.model.leakage_power_mw()
        for name in sorted(set(dynamic) | set(leakage_power)):
            report.structures[name] = StructureEnergy(
                dynamic_pj=dynamic.get(name, 0.0),
                leakage_pj=leakage_power.get(name, 0.0) * cycles * self.cycle_time_ns,
            )
        return report
