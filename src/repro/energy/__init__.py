"""Energy modelling: a CACTI-like analytic SRAM model and event accounting.

The paper combines gem5 access statistics with CACTI 6.5 energy estimates
(32 nm, low-dynamic-power design objective, low-standby-power cells for the
arrays and high-performance peripherals).  CACTI itself is not available
offline, so :mod:`repro.energy.cacti` rebuilds a simplified analytic model:
per-access dynamic energy and leakage power are derived from array geometry
(rows, bits, output width) and scaled with the number of ports.  Absolute
joules differ from CACTI, but the *ratios* between structures — which is all
the normalized results of Fig. 4b depend on — follow the same size and port
scaling, including the paper's observation that one additional read port
raises L1 leakage by roughly 80 %.

:mod:`repro.energy.energy_model` describes which SRAM arrays each
configuration instantiates and how the event counters produced during
simulation map onto array accesses; :mod:`repro.energy.accounting` turns a
:class:`~repro.sim.stats.StatCounters` snapshot plus a cycle count into a
structured :class:`~repro.energy.accounting.EnergyReport`.
"""

from repro.energy.cacti import CactiParameters, SRAMArraySpec, SRAMEnergyModel
from repro.energy.energy_model import (
    EnergyModelConfig,
    InterfaceEnergyModel,
    build_energy_model,
)
from repro.energy.accounting import EnergyAccountant, EnergyReport, StructureEnergy

__all__ = [
    "CactiParameters",
    "SRAMArraySpec",
    "SRAMEnergyModel",
    "EnergyModelConfig",
    "InterfaceEnergyModel",
    "build_energy_model",
    "EnergyAccountant",
    "EnergyReport",
    "StructureEnergy",
]
