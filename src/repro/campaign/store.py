"""Persistent campaign result store: one JSON record per simulated cell.

Layout of a campaign directory::

    <root>/
        campaign.json          # manifest of the spec that (last) ran here
        cells/
            <key>.json         # one record per completed cell

Every record carries the cell identity (benchmark, suite, full configuration
fingerprint, trace length, warm-up, seed), its deterministic key and the
complete :class:`~repro.sim.simulator.SimulationResult` — counters, derived
stats and the per-structure energy report — so analyses can be rebuilt from
the directory alone, without re-running any simulation.

Records are written atomically (temp file + ``os.replace``), so an
interrupted sweep never leaves a truncated record behind and a re-run simply
resumes from the cells that finished.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Iterator, List, Optional, Union

from repro.campaign.spec import CampaignCell, CampaignSpec, config_to_dict
from repro.energy.accounting import EnergyReport, StructureEnergy
from repro.sim.simulator import SimulationResult
from repro.workloads.registry import workload_suite


# ----------------------------------------------------------------------
# Result (de)serialization
# ----------------------------------------------------------------------
def result_to_dict(result: SimulationResult) -> dict:
    """JSON-able dictionary capturing a complete :class:`SimulationResult`."""
    return {
        "config_name": result.config_name,
        "cycles": result.cycles,
        "instructions": result.instructions,
        "loads": result.loads,
        "stores": result.stores,
        "stats": dict(result.stats),
        "energy": {
            "cycles": result.energy.cycles,
            "structures": {
                name: {"dynamic_pj": item.dynamic_pj, "leakage_pj": item.leakage_pj}
                for name, item in result.energy.structures.items()
            },
        },
    }


def result_from_dict(data: dict) -> SimulationResult:
    """Rebuild a :class:`SimulationResult` from :func:`result_to_dict` output."""
    energy = EnergyReport(
        cycles=data["energy"]["cycles"],
        structures={
            name: StructureEnergy(
                dynamic_pj=item["dynamic_pj"], leakage_pj=item["leakage_pj"]
            )
            for name, item in data["energy"]["structures"].items()
        },
    )
    return SimulationResult(
        config_name=data["config_name"],
        cycles=data["cycles"],
        instructions=data["instructions"],
        loads=data["loads"],
        stores=data["stores"],
        energy=energy,
        stats=dict(data["stats"]),
    )


# ----------------------------------------------------------------------
# The store
# ----------------------------------------------------------------------
class ResultStore:
    """Directory-backed store of campaign cell results, keyed by content hash.

    The store is safe to share between the worker processes of one sweep and
    between successive sweeps: keys are pure functions of the cell content,
    writes are atomic, and :meth:`get` reads straight from disk.
    """

    MANIFEST = "campaign.json"
    CELL_DIR = "cells"
    #: append-only telemetry journal written next to the manifest (see
    #: :mod:`repro.obs.telemetry`); operational history, never results
    TELEMETRY = "telemetry.jsonl"

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.cell_dir = self.root / self.CELL_DIR
        self.cell_dir.mkdir(parents=True, exist_ok=True)

    @property
    def telemetry_path(self) -> Path:
        """Where this store's telemetry journal lives (may not exist yet)."""
        return self.root / self.TELEMETRY

    # ------------------------------------------------------------------
    def _cell_path(self, key: str) -> Path:
        return self.cell_dir / f"{key}.json"

    def _atomic_write(self, path: Path, payload: dict) -> None:
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(payload, indent=1, sort_keys=True))
        os.replace(tmp, path)

    # ------------------------------------------------------------------
    def contains(self, cell: CampaignCell) -> bool:
        """True if this cell's result has already been persisted."""
        return self._cell_path(cell.key()).exists()

    __contains__ = contains

    def put(self, cell: CampaignCell, result: SimulationResult) -> str:
        """Persist one cell result; returns the cell key."""
        key = cell.key()
        record = {
            "key": key,
            "benchmark": cell.benchmark,
            "suite": workload_suite(cell.benchmark),
            "config_name": cell.config.name,
            "config": config_to_dict(cell.config),
            "instructions": cell.instructions,
            "warmup_fraction": cell.warmup_fraction,
            "seed": cell.seed,
            "result": result_to_dict(result),
        }
        if cell.trace_hash:
            record["trace_hash"] = cell.trace_hash
        self._atomic_write(self._cell_path(key), record)
        return key

    def get(self, cell: CampaignCell) -> Optional[SimulationResult]:
        """The stored result of ``cell``, or ``None`` if it has not run yet."""
        path = self._cell_path(cell.key())
        if not path.exists():
            return None
        return result_from_dict(json.loads(path.read_text())["result"])

    # ------------------------------------------------------------------
    def keys(self) -> List[str]:
        """Keys of all persisted cells (sorted for determinism)."""
        return sorted(path.stem for path in self.cell_dir.glob("*.json"))

    def __len__(self) -> int:
        return len(self.keys())

    def records(self) -> Iterator[dict]:
        """Iterate over all persisted records, in key order."""
        for key in self.keys():
            yield json.loads(self._cell_path(key).read_text())

    # ------------------------------------------------------------------
    def write_manifest(self, spec: CampaignSpec) -> None:
        """Record the campaign spec that produced (or extended) this store."""
        self._atomic_write(self.root / self.MANIFEST, spec.describe())

    def manifest(self) -> Optional[dict]:
        """The stored campaign manifest, or ``None`` for a bare cell store."""
        path = self.root / self.MANIFEST
        if not path.exists():
            return None
        return json.loads(path.read_text())
