"""Persistent campaign result store: one JSON record per simulated cell.

:class:`ResultStore` is the cell-level API the campaign engine talks to —
``contains / put / get / records`` in terms of :class:`CampaignCell` and
:class:`~repro.sim.simulator.SimulationResult`.  Storage itself lives behind
the pluggable :class:`~repro.campaign.backends.StoreBackend` interface,
selected by store URL:

``json:path/to/dir`` (or a bare path)
    The original directory layout — ``campaign.json`` manifest plus one
    ``cells/<key>.json`` file per completed cell, written atomically
    (temp file + ``os.replace``).  Unchanged on disk, so stores written
    before the backend interface existed keep resuming.
``sqlite:path/to/db``
    A single SQLite database in WAL mode, safe for concurrent writers
    from multiple processes.

Every record carries the cell identity (benchmark, suite, full configuration
fingerprint, trace length, warm-up, seed), its deterministic key and the
complete :class:`~repro.sim.simulator.SimulationResult` — counters, derived
stats and the per-structure energy report — so analyses can be rebuilt from
the store alone, without re-running any simulation.  Keys are pure functions
of the cell content and puts are atomic + idempotent, so the store is safe
to share between the worker processes of one sweep and between successive
sweeps: a re-run simply resumes from the cells that finished.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator, List, Optional, Union

from repro.campaign.backends import (
    StoreBackend,
    StoreConflictError,
    StoreURLError,
    backend_for_url,
)
from repro.campaign.spec import CampaignCell, CampaignSpec, config_to_dict
from repro.energy.accounting import EnergyReport, StructureEnergy
from repro.sim.simulator import SimulationResult
from repro.workloads.registry import workload_suite

__all__ = [
    "ResultStore",
    "StoreBackend",
    "StoreConflictError",
    "StoreURLError",
    "open_store",
    "result_from_dict",
    "result_to_dict",
]


# ----------------------------------------------------------------------
# Result (de)serialization
# ----------------------------------------------------------------------
def result_to_dict(result: SimulationResult) -> dict:
    """JSON-able dictionary capturing a complete :class:`SimulationResult`."""
    return {
        "config_name": result.config_name,
        "cycles": result.cycles,
        "instructions": result.instructions,
        "loads": result.loads,
        "stores": result.stores,
        "stats": dict(result.stats),
        "energy": {
            "cycles": result.energy.cycles,
            "structures": {
                name: {"dynamic_pj": item.dynamic_pj, "leakage_pj": item.leakage_pj}
                for name, item in result.energy.structures.items()
            },
        },
    }


def result_from_dict(data: dict) -> SimulationResult:
    """Rebuild a :class:`SimulationResult` from :func:`result_to_dict` output."""
    energy = EnergyReport(
        cycles=data["energy"]["cycles"],
        structures={
            name: StructureEnergy(
                dynamic_pj=item["dynamic_pj"], leakage_pj=item["leakage_pj"]
            )
            for name, item in data["energy"]["structures"].items()
        },
    )
    return SimulationResult(
        config_name=data["config_name"],
        cycles=data["cycles"],
        instructions=data["instructions"],
        loads=data["loads"],
        stores=data["stores"],
        energy=energy,
        stats=dict(data["stats"]),
    )


# ----------------------------------------------------------------------
# The store
# ----------------------------------------------------------------------
class ResultStore:
    """Cell-level store of campaign results, keyed by content hash.

    Construct from a store URL (``json:dir``, ``sqlite:db``), a bare
    directory path (historical behaviour: a JSON campaign directory), or a
    ready-made :class:`StoreBackend`.
    """

    MANIFEST = "campaign.json"
    CELL_DIR = "cells"
    #: append-only telemetry journal written next to the results (see
    #: :mod:`repro.obs.telemetry`); operational history, never results
    TELEMETRY = "telemetry.jsonl"

    def __init__(self, root: Union[str, Path, StoreBackend]) -> None:
        if isinstance(root, StoreBackend):
            self.backend = root
        else:
            self.backend = backend_for_url(root)

    # ------------------------------------------------------------------
    @property
    def url(self) -> str:
        """The canonical store URL addressing this store's backend."""
        return self.backend.url

    @property
    def root(self) -> Path:
        """Directory sidecar artifacts live in (the store directory for
        ``json:``, the database's parent directory for ``sqlite:``)."""
        return self.backend.artifact_dir

    @property
    def cell_dir(self) -> Path:
        """The per-cell JSON directory (``json:`` backend only)."""
        cell_dir = getattr(self.backend, "cell_dir", None)
        if cell_dir is None:
            raise AttributeError(
                f"store backend {self.backend.scheme}: keeps no cell directory"
            )
        return cell_dir

    @property
    def telemetry_path(self) -> Path:
        """Where this store's telemetry journal lives (may not exist yet)."""
        return self.backend.telemetry_path

    # ------------------------------------------------------------------
    def contains(self, cell: CampaignCell) -> bool:
        """True if this cell's result has already been persisted."""
        return self.backend.has(cell.key())

    __contains__ = contains

    def put(self, cell: CampaignCell, result: SimulationResult) -> str:
        """Persist one cell result; returns the cell key."""
        key = cell.key()
        record = {
            "key": key,
            "benchmark": cell.benchmark,
            "suite": workload_suite(cell.benchmark),
            "config_name": cell.config.name,
            "config": config_to_dict(cell.config),
            "instructions": cell.instructions,
            "warmup_fraction": cell.warmup_fraction,
            "seed": cell.seed,
            "result": result_to_dict(result),
        }
        if cell.trace_hash:
            record["trace_hash"] = cell.trace_hash
        self.backend.put(key, record)
        return key

    def get(self, cell: CampaignCell) -> Optional[SimulationResult]:
        """The stored result of ``cell``, or ``None`` if it has not run yet."""
        record = self.backend.get(cell.key())
        if record is None:
            return None
        return result_from_dict(record["result"])

    # ------------------------------------------------------------------
    def keys(self) -> List[str]:
        """Keys of all persisted cells (sorted for determinism)."""
        return self.backend.keys()

    def __len__(self) -> int:
        return len(self.backend)

    def records(self) -> Iterator[dict]:
        """Iterate over all persisted records, in key order."""
        return self.backend.iterate()

    def record(self, key: str) -> Optional[dict]:
        """The full stored record of ``key``, or ``None`` (serve fetch-cell)."""
        return self.backend.get(key)

    # ------------------------------------------------------------------
    def write_manifest(self, spec: CampaignSpec) -> None:
        """Record the campaign spec that produced (or extended) this store."""
        self.backend.write_manifest(spec.describe())

    def manifest(self) -> Optional[dict]:
        """The stored campaign manifest, or ``None`` for a bare cell store."""
        return self.backend.manifest()

    def check_manifest(self) -> None:
        """Fail loudly if a concurrent sweep clobbered this store's manifest."""
        self.backend.check_manifest()

    def close(self) -> None:
        """Release backend resources (connections); safe to call twice."""
        self.backend.close()


def open_store(
    store: Union[None, str, Path, StoreBackend, ResultStore],
) -> Optional[ResultStore]:
    """Coerce any ``store=`` value into a live :class:`ResultStore`.

    ``None`` passes through (no persistence), an existing :class:`ResultStore`
    is returned as-is, and strings/paths are parsed as store URLs — so every
    ``--store`` flag and ``store=`` kwarg accepts the same spellings.
    Raises :class:`StoreURLError` for an unsupported scheme.
    """
    if store is None:
        return None
    if isinstance(store, ResultStore):
        return store
    return ResultStore(store)
