"""Sweep campaign engine: declarative grids, parallel execution, persistence.

The campaign subsystem scales the paper's sweeps (Fig. 4, Sec. VI-D) beyond
one process and one session:

* :mod:`repro.campaign.spec` — declarative :class:`CampaignSpec` grids with
  named presets and deterministic per-cell content hashes;
* :mod:`repro.campaign.store` — :class:`ResultStore`, one atomic JSON record
  per completed cell under a campaign directory;
* :mod:`repro.campaign.executor` — :class:`ParallelExecutor`, process-pool
  fan-out with per-worker trace caches, store-based resume and serial
  fallback;
* :mod:`repro.campaign.aggregate` — rebuild
  :class:`~repro.analysis.experiments.ExperimentResults` views from a store
  without re-running anything.

Quick start::

    from repro.campaign import CampaignSpec, ParallelExecutor, ResultStore
    from repro.campaign import campaign_preset, results_from_store

    store = ResultStore("results/fig4")
    executor = ParallelExecutor(jobs=4, store=store)
    executor.run(campaign_preset("fig4"))       # resumable: re-runs skip cells
    print(results_from_store(store).geomean_normalized_cycles("Base1ldst"))
"""

from repro.campaign.aggregate import (
    results_from_store,
    summarize_results,
    summarize_store,
)
from repro.campaign.executor import ParallelExecutor
from repro.campaign.spec import (
    PRESET_NAMES,
    CampaignCell,
    CampaignSpec,
    campaign_preset,
    cell_key,
    config_from_dict,
    config_to_dict,
)
from repro.campaign.store import (
    ResultStore,
    StoreBackend,
    StoreConflictError,
    StoreURLError,
    open_store,
    result_from_dict,
    result_to_dict,
)

__all__ = [
    "CampaignCell",
    "CampaignSpec",
    "ParallelExecutor",
    "ResultStore",
    "StoreBackend",
    "StoreConflictError",
    "StoreURLError",
    "open_store",
    "PRESET_NAMES",
    "campaign_preset",
    "cell_key",
    "config_from_dict",
    "config_to_dict",
    "result_from_dict",
    "result_to_dict",
    "results_from_store",
    "summarize_results",
    "summarize_store",
]
