"""Campaign execution: fan a sweep out over a process pool, resume from a store.

:class:`ParallelExecutor` turns a :class:`~repro.campaign.spec.CampaignSpec`
into an :class:`~repro.analysis.experiments.ExperimentResults`:

* cells already present in the attached :class:`~repro.campaign.store.ResultStore`
  are loaded instead of re-simulated (incremental resume);
* pending cells run either serially in-process or on a
  ``concurrent.futures.ProcessPoolExecutor`` (``jobs > 1``), with graceful
  fallback to the serial path when the platform cannot spawn worker
  processes (restricted sandboxes) or the pool breaks mid-sweep;
* every worker regenerates traces locally — traces are pure functions of
  ``(benchmark profile, instruction count, seed)``, so nothing large crosses
  the process boundary — and caches them per process, so a worker that
  simulates several configurations of one benchmark generates its trace once;
* simulation itself is deterministic (seeded RNGs everywhere), so serial and
  parallel sweeps of the same spec produce bit-identical results.

Progress is reported through an optional callback
``progress(event, cell, done, total)`` with ``event`` one of ``"skipped"``
(loaded from the store), ``"completed"`` (freshly simulated).
"""

from __future__ import annotations

from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Callable, Dict, List, Optional, Tuple

from repro.analysis.experiments import BenchmarkRun, ExperimentResults
from repro.campaign.spec import CampaignCell, CampaignSpec
from repro.campaign.store import ResultStore, result_from_dict, result_to_dict
from repro.sim.simulator import SimulationResult, run_configuration
from repro.workloads.suites import benchmark_profile
from repro.workloads.synthetic import generate_trace
from repro.workloads.trace import MemoryTrace

#: (benchmark, instructions, trace seed) -> generated trace
TraceCache = Dict[Tuple[str, int, int], MemoryTrace]

ProgressCallback = Callable[[str, CampaignCell, int, int], None]

#: per-process trace cache used by pool workers (module-level so it survives
#: across the many cells one worker executes)
_WORKER_TRACES: TraceCache = {}


def _cached_trace(cell: CampaignCell, cache: TraceCache) -> MemoryTrace:
    """Generate (or fetch) the deterministic trace of ``cell``."""
    key = (cell.benchmark, cell.instructions, cell.trace_seed())
    if key not in cache:
        profile = benchmark_profile(cell.benchmark)
        cache[key] = generate_trace(
            profile, instructions=cell.instructions, seed=cell.trace_seed()
        )
    return cache[key]


def _execute_cell(cell: CampaignCell, cache: TraceCache) -> SimulationResult:
    """Run one cell's simulation using ``cache`` for trace reuse."""
    trace = _cached_trace(cell, cache)
    return run_configuration(cell.config, trace, warmup_fraction=cell.warmup_fraction)


def _pool_worker(cells: List[CampaignCell]) -> List[Tuple[str, dict]]:
    """Process-pool entry point: simulate one benchmark's batch of cells.

    Each task is the group of pending cells sharing one trace, so the trace
    is generated exactly once per group regardless of which worker picks the
    task up.  Results cross the process boundary as plain dictionaries (the
    store's JSON shape) rather than live objects, keeping the pickled
    payload small and identical to what lands on disk.
    """
    return [
        (cell.key(), result_to_dict(_execute_cell(cell, _WORKER_TRACES)))
        for cell in cells
    ]


class ParallelExecutor:
    """Executes campaign specs; the one engine behind runner, CLI and tests.

    Parameters
    ----------
    jobs:
        Worker process count; ``1`` (default) runs serially in-process.
    store:
        Optional :class:`ResultStore`. When given, completed cells are
        persisted as they finish and already-stored cells are skipped.
    progress:
        Optional ``progress(event, cell, done, total)`` callback.
    trace_cache:
        Optional externally-owned trace cache used by the serial path, so a
        caller running several sweeps (e.g. :class:`ExperimentRunner`) reuses
        generated traces across runs.
    """

    def __init__(
        self,
        jobs: int = 1,
        store: Optional[ResultStore] = None,
        progress: Optional[ProgressCallback] = None,
        trace_cache: Optional[TraceCache] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self.store = store
        self.progress = progress
        self.trace_cache: TraceCache = trace_cache if trace_cache is not None else {}
        #: cells loaded from the store / freshly simulated by the last run()
        self.skipped_cells: List[CampaignCell] = []
        self.completed_cells: List[CampaignCell] = []
        #: True if the last run() actually used a process pool
        self.used_pool = False

    # ------------------------------------------------------------------
    def run(self, spec: CampaignSpec) -> ExperimentResults:
        """Execute ``spec`` and return the assembled sweep results."""
        self.skipped_cells = []
        self.completed_cells = []
        self.used_pool = False
        if self.store is not None:
            self.store.write_manifest(spec)

        cells = spec.cells()
        total = len(cells)
        done = 0
        results: Dict[str, SimulationResult] = {}

        pending: List[CampaignCell] = []
        for cell in cells:
            stored = self.store.get(cell) if self.store is not None else None
            if stored is not None:
                results[cell.key()] = stored
                self.skipped_cells.append(cell)
                done += 1
                self._report("skipped", cell, done, total)
            else:
                pending.append(cell)

        if pending:
            if self.jobs > 1 and len(pending) > 1:
                done = self._run_pool(pending, results, done, total)
            # Any cells a broken pool failed to deliver fall through to the
            # serial path, which always finishes the sweep.
            remaining = [cell for cell in pending if cell.key() not in results]
            for cell in remaining:
                result = _execute_cell(cell, self.trace_cache)
                done = self._record(cell, result, results, done, total)

        return self._assemble(spec, results)

    # ------------------------------------------------------------------
    def _report(self, event: str, cell: CampaignCell, done: int, total: int) -> None:
        if self.progress is not None:
            self.progress(event, cell, done, total)

    def _record(
        self,
        cell: CampaignCell,
        result: SimulationResult,
        results: Dict[str, SimulationResult],
        done: int,
        total: int,
    ) -> int:
        results[cell.key()] = result
        if self.store is not None:
            self.store.put(cell, result)
        self.completed_cells.append(cell)
        done += 1
        self._report("completed", cell, done, total)
        return done

    def _run_pool(
        self,
        pending: List[CampaignCell],
        results: Dict[str, SimulationResult],
        done: int,
        total: int,
    ) -> int:
        """Run ``pending`` on a process pool; returns the updated done count.

        Pool failures (platforms without working multiprocessing, workers
        killed mid-sweep) are swallowed: whatever cells did not complete stay
        absent from ``results`` and the caller re-runs them serially.
        """
        by_key = {cell.key(): cell for cell in pending}
        # One task per trace group (benchmark at one length/seed): whichever
        # worker picks a task up generates that group's trace exactly once.
        groups: Dict[Tuple[str, int, int], List[CampaignCell]] = {}
        for cell in pending:
            groups.setdefault(
                (cell.benchmark, cell.instructions, cell.trace_seed()), []
            ).append(cell)
        try:
            with ProcessPoolExecutor(max_workers=self.jobs) as pool:
                futures = {
                    pool.submit(_pool_worker, batch) for batch in groups.values()
                }
                self.used_pool = True
                while futures:
                    finished, futures = wait(futures, return_when=FIRST_COMPLETED)
                    for future in finished:
                        for key, payload in future.result():
                            done = self._record(
                                by_key[key],
                                result_from_dict(payload),
                                results,
                                done,
                                total,
                            )
        except (OSError, PermissionError, RuntimeError):
            # BrokenProcessPool is a RuntimeError subclass; treat every pool
            # breakage the same — finish serially.
            pass
        return done

    # ------------------------------------------------------------------
    def _assemble(
        self, spec: CampaignSpec, results: Dict[str, SimulationResult]
    ) -> ExperimentResults:
        experiment = ExperimentResults(configurations=spec.configuration_names())
        for benchmark in spec.benchmarks:
            run = BenchmarkRun(
                benchmark=benchmark, suite=benchmark_profile(benchmark).suite
            )
            for config in spec.configurations:
                cell = CampaignCell(
                    benchmark=benchmark,
                    config=config,
                    instructions=spec.instructions,
                    warmup_fraction=spec.warmup_fraction,
                    seed=spec.seed,
                )
                run.results[config.name] = results[cell.key()]
            experiment.runs.append(run)
        return experiment
