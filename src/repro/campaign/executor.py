"""Campaign execution: fan a sweep out over a process pool, resume from a store.

:class:`ParallelExecutor` turns a :class:`~repro.campaign.spec.CampaignSpec`
into an :class:`~repro.analysis.experiments.ExperimentResults`:

* cells already present in the attached :class:`~repro.campaign.store.ResultStore`
  are loaded instead of re-simulated (incremental resume);
* pending cells run either serially in-process or on a
  ``multiprocessing`` pool (``jobs > 1``), with graceful fallback to the
  serial path when the platform cannot spawn worker processes (restricted
  sandboxes) or the pool breaks mid-sweep;
* every workload trace — synthetic *or* ingested — is resolved **once in the
  parent**, serialized to compact ``.rtrc`` bytes
  (:meth:`~repro.workloads.trace.MemoryTrace.to_bytes`, the binary codec of
  :mod:`repro.workloads.binfmt`) and shipped to the workers through the pool
  initializer — workers decode each trace at most once per process through
  one ``struct.iter_unpack`` pass instead of regenerating (or re-parsing)
  it per task;
* cells are dispatched with chunked ``imap_unordered``, so scheduling
  overhead is one pickled batch per chunk rather than one round-trip per
  cell, and results stream back as they finish;
* the serial path shares one process-wide trace cache (the same cache the
  workers use), so repeated sweeps in one process — the perf harness's
  best-of-N runs, an interactive session re-running presets — never
  regenerate a trace;
* simulation itself is deterministic (seeded RNGs everywhere), so serial and
  parallel sweeps of the same spec produce bit-identical results.

Progress is reported through an optional callback
``progress(event, cell, done, total)`` with ``event`` one of ``"skipped"``
(loaded from the store), ``"completed"`` (freshly simulated).
"""

from __future__ import annotations

import multiprocessing
import os
import time
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.analysis.experiments import BenchmarkRun, ExperimentResults
from repro.api import RunOptions
from repro.campaign.spec import CampaignCell, CampaignSpec
from repro.campaign.store import ResultStore, result_from_dict, result_to_dict
from repro.obs import metrics as obs_metrics
from repro.obs.logs import get_logger
from repro.obs.telemetry import TelemetryJournal
from repro.sim.kernels import content_hash, prewarm
from repro.sim.simulator import SimulationResult, Simulator
from repro.workloads.columnar import ColumnarTrace
from repro.workloads.registry import registered_trace, workload_suite
from repro.workloads.suites import benchmark_profile
from repro.workloads.synthetic import generate_trace
from repro.workloads.trace import MemoryTrace

logger = get_logger(__name__)

#: (benchmark, instructions, trace seed, trace hash) -> resolved trace; the
#: hash is empty for synthetic workloads and pins the content of ingested
#: ones, so a name re-registered with different trace bytes never hits a
#: stale cache entry.  Values are either :class:`MemoryTrace` (synthetic /
#: ingested resolution) or :class:`ColumnarTrace` (pool workers decoding
#: shipped bytes under the columnar frontend); the simulator accepts both.
TraceCache = Dict[Tuple[str, int, int, str], Union[MemoryTrace, ColumnarTrace]]

#: key shape of the trace caches
TraceKey = Tuple[str, int, int, str]

ProgressCallback = Callable[[str, CampaignCell, int, int], None]

#: process-wide trace cache: used by the serial path of every executor in
#: this process and by pool workers (one decode per trace per process)
_PROCESS_TRACES: TraceCache = {}

#: serialized traces installed by the pool initializer (worker side)
_WORKER_TRACE_BYTES: Dict[TraceKey, bytes] = {}

#: resolved ``(frontend, kernel, scheduler)`` names installed by the pool
#: initializer — the parent resolves its :class:`RunOptions` exactly once
#: and ships the strings, so workers never consult the (deprecated)
#: environment themselves
_WORKER_RUN_OPTIONS: Optional[Tuple[str, str, str]] = None


def _default_run_options() -> Tuple[str, str, str]:
    """Resolved ``(frontend, kernel, scheduler)`` for bare calls.

    Pool workers use the tuple their initializer installed; anything else
    (the serial path without an executor, tests poking the helpers) falls
    back to a fresh :meth:`RunOptions.from_env` resolution — the same
    defaults-plus-deprecated-environment rule as everywhere else.
    """
    if _WORKER_RUN_OPTIONS is not None:
        return _WORKER_RUN_OPTIONS
    options = RunOptions.from_env()
    return (
        options.resolved_frontend(),
        options.resolved_kernel(),
        options.resolved_scheduler(),
    )


#: soft cap on cached traces; a long-lived process sweeping many distinct
#: (benchmark, length, seed) shapes resets the cache instead of growing it
#: without bound (a reset only costs regeneration, never correctness)
_TRACE_CACHE_LIMIT = 256


def _cached_trace(cell: CampaignCell, cache: TraceCache, frontend: Optional[str] = None):
    """Resolve (or fetch) the deterministic trace of ``cell``.

    Resolution order: the per-process cache, the ``.rtrc`` bytes a pool
    parent shipped, the ingested-trace registry (truncated to the cell's
    instruction budget), and finally synthetic generation from the benchmark
    profile.  ``frontend`` decides how shipped bytes are decoded; ``None``
    falls back to :func:`_default_run_options`.
    """
    key = (cell.benchmark, cell.instructions, cell.trace_seed(), cell.trace_hash)
    trace = cache.get(key)
    if obs_metrics.enabled():
        obs_metrics.registry.counter(
            "trace.cache.hit" if trace is not None else "trace.cache.miss"
        ).inc()
    if trace is None:
        if len(cache) >= _TRACE_CACHE_LIMIT:
            cache.clear()
        payload = _WORKER_TRACE_BYTES.get(key)
        if payload is not None:
            # Pool worker: decode the bytes the parent shipped (cheaper than
            # regenerating, and the resolution cost was paid exactly once).
            # Under the columnar frontend the bytes go straight into columns
            # — a handful of strided slices instead of one Instruction per
            # record — and the view (plus its cached pipeline arrays) is
            # reused by every cell of this trace in the worker.
            if frontend is None:
                frontend = _default_run_options()[0]
            if frontend == "columnar":
                trace = ColumnarTrace.from_rtrc_bytes(payload)
            else:
                trace = MemoryTrace.from_bytes(payload)
        else:
            ingested = registered_trace(cell.benchmark)
            if ingested is not None:
                trace = (
                    ingested
                    if len(ingested) <= cell.instructions
                    else ingested.head(cell.instructions)
                )
            else:
                profile = benchmark_profile(cell.benchmark)
                trace = generate_trace(
                    profile, instructions=cell.instructions, seed=cell.trace_seed()
                )
        cache[key] = trace
    return trace


def _execute_cell(
    cell: CampaignCell,
    cache: TraceCache,
    run_options: Optional[Tuple[str, str, str]] = None,
) -> Tuple[SimulationResult, Dict[str, object]]:
    """Run one cell's simulation using ``cache`` for trace reuse.

    ``run_options`` is the resolved ``(frontend, kernel, scheduler)`` triple
    the executor threads through (``None`` resolves fresh, see
    :func:`_default_run_options`).  Returns the result plus the execution
    facts the telemetry journal records per cell: which kernel was
    requested, whether it actually ran (and why not), and the
    scheduler/frontend the run went through.
    """
    frontend, kernel, scheduler = (
        run_options if run_options is not None else _default_run_options()
    )
    trace = _cached_trace(cell, cache, frontend)
    simulator = Simulator(cell.config)
    result = simulator.run(
        trace,
        warmup_fraction=cell.warmup_fraction,
        options=RunOptions(frontend=frontend, kernel=kernel, scheduler=scheduler),
    )
    info: Dict[str, object] = {
        "kernel": simulator.kernel_requested,
        "kernel_used": simulator.kernel_used,
        "kernel_fallback_reason": simulator.kernel_fallback_reason or "",
        "scheduler": scheduler,
        "frontend": frontend,
    }
    return result, info


def _init_worker(
    trace_bytes: Dict[TraceKey, bytes],
    configs=(),
    metrics_on: bool = False,
    run_options: Optional[Tuple[str, str, str]] = None,
) -> None:
    """Pool initializer: install the parent's serialized traces and resolved
    run options, compile the campaign's specialized simulation kernels up
    front, and reset metrics.

    Kernels are cached per config content-hash (see :mod:`repro.sim.kernels`),
    so each worker pays generation+compile once per distinct configuration
    shape here instead of on its first cell of each shape.

    A forked worker inherits the parent's already-populated metrics registry;
    counting on top of it would double every parent-side value once the
    parent merges the worker dumps back, so the registry starts from a clean
    slate either way, and the enabled flag is set explicitly from the
    parent's state (fork inherits it, spawn would not).
    """
    global _WORKER_RUN_OPTIONS
    _WORKER_TRACE_BYTES.update(trace_bytes)
    if run_options is not None:
        _WORKER_RUN_OPTIONS = tuple(run_options)
    obs_metrics.registry.clear()
    if metrics_on:
        obs_metrics.enable()
    else:
        obs_metrics.disable()
    if configs and _default_run_options()[1] == "specialized":
        prewarm(configs)


def _dump_total(dump: Dict[str, dict]) -> float:
    """Total event count in a registry dump — a monotonic progress measure.

    A worker's cumulative dump only ever grows, so the dump with the largest
    total is its most recent one regardless of the order chunked pool
    results arrived in.
    """
    total = 0.0
    for entry in dump.values():
        kind = entry.get("kind")
        if kind == "counter":
            total += float(entry["value"])
        elif kind == "histogram":
            total += float(entry["count"])
    return total


def _pool_cell(cell: CampaignCell):
    """Process-pool task: simulate one cell.

    The worker finds the cell's trace in its per-process cache (decoded once
    from the initializer's bytes).  Results cross the process boundary as
    plain dictionaries (the store's JSON shape) rather than live objects,
    keeping the pickled payload small and identical to what lands on disk.
    The remaining elements are observation payloads: the ``(worker pid,
    start, end)`` epoch timing (two clock reads per multi-millisecond cell,
    so it rides along unconditionally), the execution-facts dict for the
    telemetry journal, and — only with metrics on — a cumulative dump of
    this worker's registry, which the parent merges so a ``jobs=4`` metrics
    snapshot finally includes worker-side counters.
    """
    start = time.time()
    result, info = _execute_cell(cell, _PROCESS_TRACES)
    payload = result_to_dict(result)
    dump = obs_metrics.registry.dump() if obs_metrics.enabled() else None
    return cell.key(), payload, (os.getpid(), start, time.time()), info, dump


class ParallelExecutor:
    """Executes campaign specs; the one engine behind runner, CLI and tests.

    Parameters
    ----------
    jobs:
        Worker process count; ``None`` (default) uses one worker per CPU
        core, ``1`` forces the serial in-process path.  Deprecated fallback
        for ``options=``.
    store:
        Optional store: a live :class:`ResultStore`, a store URL
        (``json:dir`` / ``sqlite:db``) or a bare directory path.  When
        given, completed cells are persisted as they finish and
        already-stored cells are skipped.  Deprecated fallback for
        ``options=``.
    options:
        A :class:`repro.api.RunOptions` — the preferred way to configure
        execution (frontend, kernel, scheduler, jobs, store URL).  The
        selections are resolved exactly once here and threaded through the
        serial path and the pool initializer, so worker processes never
        consult the deprecated environment variables themselves.  Mixing
        ``options=`` with the legacy ``jobs=``/``store=`` keywords raises
        ``ValueError``.
    progress:
        Optional ``progress(event, cell, done, total)`` callback.
    trace_cache:
        Optional externally-owned trace cache used by the serial path, so a
        caller running several sweeps (e.g. :class:`ExperimentRunner`) reuses
        generated traces across runs.  Defaults to the process-wide cache.
    trace_log:
        Optional :class:`repro.obs.traceevent.TraceEventLog` (duck-typed).
        When given, every executed cell is recorded as a wall-clock span on
        its worker's track (serial cells on the parent's), viewable in
        Perfetto / ``chrome://tracing``.
    journal:
        Telemetry journal destination.  ``None`` (default) auto-enables the
        journal next to the attached store (``telemetry.jsonl``) when
        metrics are on, and stays silent otherwise; a path writes there
        regardless of the metrics switch; a live
        :class:`~repro.obs.telemetry.TelemetryJournal` is used as-is (note
        its run id is fixed — pass a path when calling ``run`` repeatedly).
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        store: Optional[Union[str, ResultStore]] = None,
        progress: Optional[ProgressCallback] = None,
        trace_cache: Optional[TraceCache] = None,
        trace_log=None,
        journal=None,
        options: Optional[RunOptions] = None,
    ) -> None:
        if options is not None:
            if jobs is not None or store is not None:
                raise ValueError(
                    "pass options= or the legacy jobs=/store= keywords, not both"
                )
        else:
            options = RunOptions.from_env(jobs=jobs, store=store)
        if options.collector is not None:
            raise ValueError(
                "campaign execution does not support collectors; attach one "
                "through Simulator.run instead"
            )
        self.options = options
        #: resolved (frontend, kernel, scheduler) — computed once, threaded
        #: through the serial path and shipped to pool workers
        self._run_options: Tuple[str, str, str] = (
            options.resolved_frontend(),
            options.resolved_kernel(),
            options.resolved_scheduler(),
        )
        jobs = options.jobs
        if jobs is None:
            jobs = os.cpu_count() or 1
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self.store = options.open_store()
        self.progress = progress
        self.trace_cache: TraceCache = (
            trace_cache if trace_cache is not None else _PROCESS_TRACES
        )
        self.trace_log = trace_log
        self.journal = journal
        #: the journal the last run() wrote to (None when telemetry was off)
        self.active_journal: Optional[TelemetryJournal] = None
        #: cells loaded from the store / freshly simulated by the last run()
        self.skipped_cells: List[CampaignCell] = []
        self.completed_cells: List[CampaignCell] = []
        #: (cell, worker pid, start, end) epoch timings of executed cells
        self.cell_timings: List[Tuple[CampaignCell, int, float, float]] = []
        #: kernel fallback reason -> count across the last run()
        self.kernel_fallbacks: Dict[str, int] = {}
        #: True if the last run() actually used a process pool
        self.used_pool = False

    # ------------------------------------------------------------------
    def run(self, spec: CampaignSpec) -> ExperimentResults:
        """Execute ``spec`` and return the assembled sweep results."""
        self.skipped_cells = []
        self.completed_cells = []
        self.cell_timings = []
        self.kernel_fallbacks = {}
        self.used_pool = False
        self.active_journal = self._resolve_journal()
        if self.store is not None:
            self.store.write_manifest(spec)

        cells = spec.cells()
        total = len(cells)
        done = 0
        started = time.perf_counter()
        results: Dict[str, SimulationResult] = {}
        if self.active_journal is not None:
            self.active_journal.run_start(spec.name, total, self.jobs)

        pending: List[CampaignCell] = []
        parent_pid = os.getpid()
        for cell in cells:
            stored = self.store.get(cell) if self.store is not None else None
            if stored is not None:
                results[cell.key()] = stored
                self.skipped_cells.append(cell)
                self._journal_cell(cell, "store", 0.0, parent_pid)
                done += 1
                self._report("skipped", cell, done, total)
            else:
                pending.append(cell)

        logger.debug(
            "campaign: %d cells (%d stored, %d pending), jobs=%d",
            total,
            len(self.skipped_cells),
            len(pending),
            self.jobs,
        )
        if pending:
            if self.jobs > 1 and len(pending) > 1:
                done = self._run_pool(pending, results, done, total)
            # Any cells a broken pool failed to deliver fall through to the
            # serial path, which always finishes the sweep.
            remaining = [cell for cell in pending if cell.key() not in results]
            if remaining and self._run_options[1] == "specialized":
                # Mirror the pool initializer's prewarm so the kernel cache
                # hit/miss counters are invariant across job counts: prewarm
                # compiles are uncounted, per-cell probes all hit.
                prewarm(
                    {cell.config.with_name("kernel-prewarm"): None for cell in remaining}
                )
            for cell in remaining:
                start = time.time()
                result, info = _execute_cell(cell, self.trace_cache, self._run_options)
                end = time.time()
                self._observe_cell(cell, parent_pid, start, end)
                self._journal_cell(cell, "computed", end - start, parent_pid, info)
                done = self._record(cell, result, results, done, total)

        elapsed = time.perf_counter() - started
        self._flush_run_observations(elapsed)
        if self.store is not None:
            # Fail loudly if a concurrent sweep of a *different* campaign
            # clobbered this store's manifest while we ran (json: backend;
            # the sqlite: backend never loses manifest writes).
            self.store.check_manifest()
        if self.active_journal is not None:
            self.active_journal.run_end(
                cells_computed=len(self.completed_cells),
                cells_skipped=len(self.skipped_cells),
                elapsed_seconds=elapsed,
                kernel_fallbacks=self.kernel_fallbacks or None,
                metrics=(
                    obs_metrics.registry.dump() if obs_metrics.enabled() else None
                ),
            )
        return self._assemble(spec, results)

    # ------------------------------------------------------------------
    def _resolve_journal(self) -> Optional[TelemetryJournal]:
        """The journal this run writes to, or ``None`` when telemetry is off.

        A fresh :class:`TelemetryJournal` (fresh run id) is built per run
        unless the caller handed in a live instance.
        """
        journal = self.journal
        if journal is None:
            if self.store is not None and obs_metrics.enabled():
                return TelemetryJournal(self.store.telemetry_path)
            return None
        if isinstance(journal, TelemetryJournal):
            return journal
        return TelemetryJournal(journal)

    def _journal_cell(
        self,
        cell: CampaignCell,
        source: str,
        wall_seconds: float,
        pid: int,
        info: Optional[Dict[str, object]] = None,
    ) -> None:
        """Tally kernel fallbacks and append one per-cell journal record."""
        if info is not None:
            reason = str(info.get("kernel_fallback_reason") or "")
            if reason:
                self.kernel_fallbacks[reason] = self.kernel_fallbacks.get(reason, 0) + 1
        if self.active_journal is None:
            return
        record: Dict[str, object] = {
            "key": cell.key(),
            "benchmark": cell.benchmark,
            "config": cell.config.name,
            "config_hash": content_hash(cell.config),
            "trace_hash": cell.trace_hash,
            "instructions": cell.instructions,
            "wall_seconds": max(0.0, wall_seconds),
            "worker_pid": pid,
            "source": source,
        }
        if info is not None:
            record.update(info)
        self.active_journal.cell(**record)

    # ------------------------------------------------------------------
    def _observe_cell(
        self, cell: CampaignCell, pid: int, start: float, end: float
    ) -> None:
        """Record one executed cell's timing (trace span + timing list)."""
        self.cell_timings.append((cell, pid, start, end))
        log = self.trace_log
        if log is not None:
            log.name_process(pid, "repro worker" if pid != os.getpid() else "repro")
            log.add_span(
                f"{cell.benchmark} {cell.config.name}",
                "campaign.cell",
                start * 1e6,
                (end - start) * 1e6,
                pid=pid,
                args={
                    "benchmark": cell.benchmark,
                    "config": cell.config.name,
                    "instructions": cell.instructions,
                },
            )

    def _flush_run_observations(self, elapsed: float) -> None:
        """Flush the run's aggregate metrics (one shot, only when enabled)."""
        if not obs_metrics.enabled():
            return
        registry = obs_metrics.registry
        completed = len(self.completed_cells)
        registry.counter("campaign.cells_completed").inc(completed)
        registry.counter("campaign.cells_skipped").inc(len(self.skipped_cells))
        registry.gauge("campaign.cells_per_sec").set(
            completed / elapsed if elapsed > 0 else 0.0
        )
        durations = registry.histogram("campaign.cell_seconds")
        busy_by_pid: Dict[int, float] = {}
        for _cell, pid, start, end in self.cell_timings:
            durations.observe(end - start)
            busy_by_pid[pid] = busy_by_pid.get(pid, 0.0) + (end - start)
        registry.gauge("campaign.workers").set(len(busy_by_pid))
        for index, pid in enumerate(sorted(busy_by_pid)):
            registry.gauge(f"campaign.worker_utilization.{index}").set(
                busy_by_pid[pid] / elapsed if elapsed > 0 else 0.0
            )

    def _report(self, event: str, cell: CampaignCell, done: int, total: int) -> None:
        if self.progress is not None:
            self.progress(event, cell, done, total)

    def _record(
        self,
        cell: CampaignCell,
        result: SimulationResult,
        results: Dict[str, SimulationResult],
        done: int,
        total: int,
    ) -> int:
        results[cell.key()] = result
        if self.store is not None:
            self.store.put(cell, result)
        self.completed_cells.append(cell)
        done += 1
        self._report("completed", cell, done, total)
        return done

    # ------------------------------------------------------------------
    def _trace_payloads(self, pending: List[CampaignCell]) -> Dict[TraceKey, bytes]:
        """Generate every needed trace once in the parent; return the bytes.

        Generated traces stay in the executor's cache, so the serial
        fallback (and any later serial sweep in this process) reuses them.
        """
        payloads: Dict[TraceKey, bytes] = {}
        for cell in pending:
            key = (cell.benchmark, cell.instructions, cell.trace_seed(), cell.trace_hash)
            if key not in payloads:
                payloads[key] = _cached_trace(
                    cell, self.trace_cache, self._run_options[0]
                ).to_bytes()
        return payloads

    def _run_pool(
        self,
        pending: List[CampaignCell],
        results: Dict[str, SimulationResult],
        done: int,
        total: int,
    ) -> int:
        """Run ``pending`` on a process pool; returns the updated done count.

        Pool failures (platforms without working multiprocessing, workers
        killed mid-sweep) are swallowed: whatever cells did not complete stay
        absent from ``results`` and the caller re-runs them serially.
        """
        by_key = {cell.key(): cell for cell in pending}
        # Most recent cumulative metrics dump per worker pid (largest total
        # wins, see _dump_total); merged after the pool drains so the parent
        # snapshot includes worker-side counters exactly once per worker.
        dumps_by_pid: Dict[int, dict] = {}
        dump_totals: Dict[int, float] = {}
        try:
            payloads = self._trace_payloads(pending)
            workers = min(self.jobs, len(pending))
            # Distinct configuration shapes, deduplicated by identity-relevant
            # fields inside prewarm's content hash; shipped to workers so each
            # compiles its specialized kernels once, up front.
            distinct_configs = tuple(
                {cell.config.with_name("kernel-prewarm"): None for cell in pending}
            )
            # One pickled batch per chunk instead of one round-trip per cell;
            # results stream back in completion order.
            chunksize = max(1, len(pending) // (workers * 4))
            with multiprocessing.Pool(
                processes=workers,
                initializer=_init_worker,
                initargs=(
                    payloads,
                    distinct_configs,
                    obs_metrics.enabled(),
                    self._run_options,
                ),
            ) as pool:
                self.used_pool = True
                for key, payload, (pid, start, end), info, dump in (
                    pool.imap_unordered(_pool_cell, pending, chunksize=chunksize)
                ):
                    cell = by_key[key]
                    self._observe_cell(cell, pid, start, end)
                    self._journal_cell(cell, "computed", end - start, pid, info)
                    if dump is not None and _dump_total(dump) >= dump_totals.get(
                        pid, -1.0
                    ):
                        dumps_by_pid[pid] = dump
                        dump_totals[pid] = _dump_total(dump)
                    done = self._record(
                        cell, result_from_dict(payload), results, done, total
                    )
        except (OSError, PermissionError, RuntimeError, ImportError) as error:
            # BrokenProcessPool/BrokenPipe style failures land here; finish
            # serially with whatever is left.
            logger.warning(
                "campaign: process pool failed (%s: %s); finishing the "
                "remaining cells serially",
                type(error).__name__,
                error,
            )
            if obs_metrics.enabled():
                obs_metrics.registry.counter("campaign.pool_fallbacks").inc()
        if dumps_by_pid and obs_metrics.enabled():
            # Sorted by pid: merge order is deterministic, and merge itself
            # is order-independent (counters sum, gauges max), so any subset
            # of worker dumps yields the same registry regardless of arrival.
            for pid in sorted(dumps_by_pid):
                obs_metrics.registry.merge(dumps_by_pid[pid])
        return done

    # ------------------------------------------------------------------
    def _assemble(
        self, spec: CampaignSpec, results: Dict[str, SimulationResult]
    ) -> ExperimentResults:
        experiment = ExperimentResults(configurations=spec.configuration_names())
        by_benchmark: Dict[str, BenchmarkRun] = {}
        for cell in spec.cells():
            run = by_benchmark.get(cell.benchmark)
            if run is None:
                run = by_benchmark[cell.benchmark] = BenchmarkRun(
                    benchmark=cell.benchmark, suite=workload_suite(cell.benchmark)
                )
                experiment.runs.append(run)
            run.results[cell.config.name] = results[cell.key()]
        return experiment
