"""Rebuild analysis views straight from a persisted campaign store.

Execution and analysis are decoupled: a sweep writes one JSON record per
cell (possibly over several resumed invocations, possibly from many worker
processes), and this module turns a :class:`~repro.campaign.store.ResultStore`
back into the :class:`~repro.analysis.experiments.ExperimentResults` object
every existing geomean/normalization helper operates on — no simulation, no
trace generation, just reading the directory.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.experiments import BenchmarkRun, ExperimentResults
from repro.analysis.reporting import format_table
from repro.campaign.store import ResultStore, result_from_dict
from repro.workloads.suites import ALL_BENCHMARKS


def results_from_store(
    store: ResultStore,
    instructions: Optional[int] = None,
    seed: Optional[int] = None,
    warmup_fraction: Optional[float] = None,
) -> ExperimentResults:
    """Assemble :class:`ExperimentResults` from every matching stored cell.

    ``instructions`` / ``seed`` / ``warmup_fraction`` filter the records
    (useful when one store accumulated sweeps at several trace lengths); by
    default all records are used.  A store holding two records for the same
    (benchmark, configuration) pair after filtering is ambiguous and raises
    ``ValueError`` — pass filters to disambiguate.
    """
    by_benchmark: Dict[str, BenchmarkRun] = {}
    config_order: List[str] = []
    seen: set = set()
    for record in store.records():
        if instructions is not None and record["instructions"] != instructions:
            continue
        if seed is not None and record["seed"] != seed:
            continue
        if warmup_fraction is not None and record["warmup_fraction"] != warmup_fraction:
            continue
        benchmark = record["benchmark"]
        config_name = record["config_name"]
        pair = (benchmark, config_name)
        if pair in seen:
            raise ValueError(
                f"store holds multiple records for {pair}; "
                "filter by instructions/seed to disambiguate"
            )
        seen.add(pair)
        run = by_benchmark.get(benchmark)
        if run is None:
            run = by_benchmark[benchmark] = BenchmarkRun(
                benchmark=benchmark, suite=record["suite"]
            )
        run.results[config_name] = result_from_dict(record["result"])
        if config_name not in config_order:
            config_order.append(config_name)

    manifest = store.manifest()
    if manifest is not None:
        # Present configurations in the order the campaign declared them.
        declared = [config["name"] for config in manifest["configurations"]]
        config_order = [name for name in declared if name in config_order] + [
            name for name in config_order if name not in declared
        ]

    canonical = {name: index for index, name in enumerate(ALL_BENCHMARKS)}
    ordered = sorted(
        by_benchmark.values(),
        key=lambda run: (canonical.get(run.benchmark, len(canonical)), run.benchmark),
    )
    return ExperimentResults(runs=list(ordered), configurations=config_order)


def summarize_results(
    results: ExperimentResults, baseline: Optional[str] = None
) -> str:
    """Human-readable geomean summary of assembled sweep results.

    ``baseline`` defaults to the first configuration.  Benchmarks missing
    the baseline or any configuration are reported as incomplete rather
    than silently dropped.
    """
    if not results.runs:
        return "store is empty"
    names = results.configurations
    base = baseline or names[0]

    complete = [
        run for run in results.runs if all(name in run.results for name in names)
    ]
    incomplete = len(results.runs) - len(complete)
    view = ExperimentResults(runs=complete, configurations=names)

    rows: List[List[object]] = []
    for suite in view.suites():
        geo_time = view.geomean_normalized_cycles(base, suite=suite)
        geo_energy = view.geomean_normalized_energy(base, suite=suite)
        rows.append([f"geo. mean {suite} (time)"] + [geo_time[name] for name in names])
        rows.append([f"geo. mean {suite} (energy)"] + [geo_energy[name] for name in names])
    geo_time = view.geomean_normalized_cycles(base)
    geo_energy = view.geomean_normalized_energy(base)
    rows.append(["geo. mean all (time)"] + [geo_time[name] for name in names])
    rows.append(["geo. mean all (energy)"] + [geo_energy[name] for name in names])

    lines = [
        f"campaign: {len(view.runs)} benchmarks x {len(names)} configurations "
        f"(normalized to {base})"
    ]
    if incomplete:
        lines.append(f"note: {incomplete} benchmark(s) incomplete, excluded from means")
    lines.append(format_table(["series"] + list(names), rows))
    return "\n".join(lines)


def summarize_store(
    store: ResultStore,
    baseline: Optional[str] = None,
    instructions: Optional[int] = None,
    seed: Optional[int] = None,
    warmup_fraction: Optional[float] = None,
) -> str:
    """Geomean summary of a campaign directory (see :func:`summarize_results`).

    The filters are forwarded to :func:`results_from_store`; pass them when
    the directory accumulated sweeps at several trace lengths or seeds.
    """
    return summarize_results(
        results_from_store(
            store,
            instructions=instructions,
            seed=seed,
            warmup_fraction=warmup_fraction,
        ),
        baseline=baseline,
    )
