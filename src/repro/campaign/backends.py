"""Pluggable campaign store backends behind one URL-addressed interface.

The campaign layer persists one JSON-able record per simulated cell, keyed
by the cell's content hash.  :class:`StoreBackend` is the storage contract
extracted from the original directory-backed ``ResultStore``:

``get / put / has / keys / iterate``
    Record access by cell key.  ``put`` must be **atomic** (a crashed writer
    never leaves a truncated record) and **idempotent** (cell records are
    pure functions of the cell content, so double-writes are harmless and
    concurrent writers storing the same key store the same bytes).
``write_manifest / manifest / check_manifest``
    Campaign-manifest bookkeeping.  The JSON backend holds a single
    manifest file, so concurrent sweeps of *different* campaigns clobber
    each other last-writer-wins — ``check_manifest`` detects that and fails
    loudly with :class:`StoreConflictError`.  The SQLite backend resolves
    the conflict properly: manifests live in a table keyed by
    ``(campaign name, content digest)``, so no write ever erases another.

Backends are addressed by **store URL**:

``json:path/to/dir`` (or a bare path)
    :class:`JsonDirectoryBackend` — the original one-JSON-file-per-cell
    directory layout, unchanged on disk, so stores written before this
    interface existed keep resuming.
``sqlite:path/to/db``
    :class:`SqliteBackend` — a single SQLite database in WAL mode, safe for
    concurrent writers from multiple processes (the WAL allows one writer
    and many readers without blocking; writers queue on the database lock
    with a generous busy timeout).

:func:`parse_store_url` and :func:`repro.campaign.store.open_store` turn a
URL into a live store everywhere a ``--store`` flag or ``store=`` kwarg
exists (sweep / dse / executor / serve / telemetry-journal placement).
"""

from __future__ import annotations

import json
import os
import re
import sqlite3
import time
import uuid
from abc import ABC, abstractmethod
from pathlib import Path
from typing import Iterator, List, Optional, Tuple, Union


class StoreURLError(ValueError):
    """An unparseable or unsupported store URL (a usage error: exit 2)."""


class StoreConflictError(RuntimeError):
    """Concurrent writers clobbered each other's campaign manifest."""


#: recognised store URL schemes, in documentation order
STORE_SCHEMES: Tuple[str, ...] = ("json", "sqlite")

#: manifest bookkeeping keys the backends stamp into stored manifests;
#: stripped again by ``manifest()`` so callers see the pure campaign spec
_MANIFEST_META_KEYS = ("manifest_version", "manifest_writer")


def parse_store_url(url: Union[str, Path]) -> Tuple[str, str]:
    """Split a store URL into ``(scheme, path)``.

    ``json:DIR`` and ``sqlite:FILE`` select a backend explicitly; a bare
    path (no scheme) keeps the historical meaning — a JSON campaign
    directory.  Unknown schemes raise :class:`StoreURLError` naming the
    supported ones, so a typo never silently creates a directory called
    ``sqlit:foo``.
    """
    text = str(url)
    if not text:
        raise StoreURLError(
            f"empty store URL; expected <scheme>:<path> with scheme one of "
            f"{', '.join(STORE_SCHEMES)} (or a bare directory path)"
        )
    scheme, sep, rest = text.partition(":")
    if not sep:
        return "json", text
    if not re.match(r"^[A-Za-z][A-Za-z0-9+.-]*$", scheme):
        # "./results:odd" — the colon is part of a path, not a scheme.
        return "json", text
    if scheme not in STORE_SCHEMES:
        raise StoreURLError(
            f"unsupported store scheme {scheme!r} in {text!r}: supported "
            f"schemes are {', '.join(f'{s}:' for s in STORE_SCHEMES)} "
            "(a bare path selects json:)"
        )
    if not rest:
        raise StoreURLError(f"store URL {text!r} has no path after the scheme")
    return scheme, rest


def backend_for_url(url: Union[str, Path]) -> "StoreBackend":
    """Build the backend a store URL addresses."""
    scheme, path = parse_store_url(url)
    if scheme == "sqlite":
        return SqliteBackend(path)
    return JsonDirectoryBackend(path)


def _strip_meta(manifest: Optional[dict]) -> Optional[dict]:
    """A manifest without the backend bookkeeping keys (content identity)."""
    if manifest is None:
        return None
    return {k: v for k, v in manifest.items() if k not in _MANIFEST_META_KEYS}


def _dump_record(record: dict) -> str:
    """The canonical serialized form of a cell record.

    Both backends store exactly this text, so a cell computed against a
    JSON store and one computed against an SQLite store are bit-identical
    on disk — the acceptance contract of the pluggable-backend redesign.
    """
    return json.dumps(record, indent=1, sort_keys=True)


class StoreBackend(ABC):
    """Storage contract behind :class:`repro.campaign.store.ResultStore`."""

    #: URL scheme this backend answers to
    scheme: str = ""

    # ------------------------------------------------------------------
    @property
    @abstractmethod
    def url(self) -> str:
        """The canonical store URL addressing this backend."""

    @property
    @abstractmethod
    def artifact_dir(self) -> Path:
        """Directory for sidecar artifacts (``dse.json``, ``frontier.csv``)."""

    @property
    @abstractmethod
    def telemetry_path(self) -> Path:
        """Where this store's telemetry journal lives (may not exist yet)."""

    # ------------------------------------------------------------------
    @abstractmethod
    def has(self, key: str) -> bool:
        """True if a record for ``key`` has been persisted."""

    @abstractmethod
    def get(self, key: str) -> Optional[dict]:
        """The stored record of ``key``, or ``None``."""

    @abstractmethod
    def put(self, key: str, record: dict) -> None:
        """Persist one cell record atomically (idempotent on re-write)."""

    @abstractmethod
    def keys(self) -> List[str]:
        """Keys of all persisted cells (sorted for determinism)."""

    @abstractmethod
    def iterate(self) -> Iterator[dict]:
        """Iterate over all persisted records, in key order."""

    # ------------------------------------------------------------------
    @abstractmethod
    def write_manifest(self, manifest: dict) -> None:
        """Record the campaign manifest that produced (or extended) the store."""

    @abstractmethod
    def manifest(self) -> Optional[dict]:
        """The last stored campaign manifest, or ``None`` for a bare store."""

    def check_manifest(self) -> None:
        """Verify this writer's manifest survived; raise on a lost conflict.

        The base implementation is a no-op — backends whose manifest
        storage cannot lose writes (SQLite) need no check.
        """

    def close(self) -> None:
        """Release any held resources (connections); safe to call twice."""

    def __len__(self) -> int:
        return len(self.keys())


# ----------------------------------------------------------------------
# JSON directory backend (the original on-disk layout, unchanged)
# ----------------------------------------------------------------------
class JsonDirectoryBackend(StoreBackend):
    """One JSON file per cell under ``<root>/cells/``, manifest alongside.

    Layout (identical to the pre-interface ``ResultStore``, so existing
    campaign directories keep resuming)::

        <root>/
            campaign.json          # manifest of the campaign that (last) ran
            telemetry.jsonl        # append-only telemetry journal (opt-in)
            cells/
                <key>.json         # one record per completed cell

    Records are written atomically (temp file + ``os.replace``).  The single
    manifest file makes concurrent manifest writes last-writer-wins; every
    write stamps a version counter and a per-instance writer token, and
    :meth:`check_manifest` fails loudly when another writer with *different
    content* clobbered ours (identical content is a harmless race — two
    sweeps of the same campaign agree on the manifest byte for byte).
    """

    scheme = "json"
    MANIFEST = "campaign.json"
    CELL_DIR = "cells"
    TELEMETRY = "telemetry.jsonl"

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.cell_dir = self.root / self.CELL_DIR
        self.cell_dir.mkdir(parents=True, exist_ok=True)
        #: per-instance writer token: one executor (or DSE engine) instance
        #: writes several manifests legitimately; other instances conflict
        self._writer_token = uuid.uuid4().hex
        self._written_manifest: Optional[dict] = None

    # ------------------------------------------------------------------
    @property
    def url(self) -> str:
        return f"json:{self.root}"

    @property
    def artifact_dir(self) -> Path:
        return self.root

    @property
    def telemetry_path(self) -> Path:
        return self.root / self.TELEMETRY

    # ------------------------------------------------------------------
    def _cell_path(self, key: str) -> Path:
        return self.cell_dir / f"{key}.json"

    def _atomic_write(self, path: Path, text: str) -> None:
        tmp = path.with_suffix(".tmp")
        tmp.write_text(text)
        os.replace(tmp, path)

    # ------------------------------------------------------------------
    def has(self, key: str) -> bool:
        return self._cell_path(key).exists()

    def get(self, key: str) -> Optional[dict]:
        path = self._cell_path(key)
        if not path.exists():
            return None
        return json.loads(path.read_text())

    def put(self, key: str, record: dict) -> None:
        self._atomic_write(self._cell_path(key), _dump_record(record))

    def keys(self) -> List[str]:
        return sorted(path.stem for path in self.cell_dir.glob("*.json"))

    def iterate(self) -> Iterator[dict]:
        for key in self.keys():
            yield json.loads(self._cell_path(key).read_text())

    # ------------------------------------------------------------------
    def _read_manifest_raw(self) -> Optional[dict]:
        path = self.root / self.MANIFEST
        if not path.exists():
            return None
        return json.loads(path.read_text())

    def write_manifest(self, manifest: dict) -> None:
        on_disk = self._read_manifest_raw()
        self._check_clobber(on_disk)
        version = int(on_disk.get("manifest_version", 0)) if on_disk else 0
        payload = dict(manifest)
        payload["manifest_version"] = version + 1
        payload["manifest_writer"] = self._writer_token
        self._atomic_write(
            self.root / self.MANIFEST, json.dumps(payload, indent=1, sort_keys=True)
        )
        self._written_manifest = dict(manifest)

    def manifest(self) -> Optional[dict]:
        return _strip_meta(self._read_manifest_raw())

    def check_manifest(self) -> None:
        """Fail loudly if another writer replaced our manifest mid-sweep."""
        if self._written_manifest is None:
            return
        self._check_clobber(self._read_manifest_raw())

    def _check_clobber(self, on_disk: Optional[dict]) -> None:
        """Raise when a *different* manifest overwrote the one we wrote."""
        if self._written_manifest is None:
            return
        content = _strip_meta(on_disk)
        if on_disk is not None and on_disk.get("manifest_writer") == self._writer_token:
            return
        if content == self._written_manifest:
            return  # identical content: a harmless same-campaign race
        raise StoreConflictError(
            f"manifest conflict in {self.url}: another sweep overwrote "
            f"{self.root / self.MANIFEST} while this one was running "
            "(the json: backend keeps a single last-writer-wins manifest "
            "file; use an sqlite: store for concurrent campaigns)"
        )


# ----------------------------------------------------------------------
# SQLite backend (WAL: safe for concurrent multi-process writers)
# ----------------------------------------------------------------------
class SqliteBackend(StoreBackend):
    """All cells in one SQLite database, journaled in WAL mode.

    Cell records are stored as their canonical JSON text (the same bytes
    the directory backend writes), keyed by cell key, with idempotent
    upserts — concurrent writers computing the same cell store identical
    text, so overlapping sweeps from several processes converge on exactly
    the store a serial run produces.

    Manifests are kept one row per ``(campaign name, content digest)``:
    unlike the single ``campaign.json`` file, a second campaign (or a
    concurrently re-run one) never erases the first — :meth:`manifest`
    returns the most recently written row.

    The telemetry journal stays a sidecar JSON-lines file next to the
    database (``<db>.telemetry.jsonl``): it is append-only operational
    history with its own atomic-append contract, and keeping it a plain
    file preserves ``repro obs``'s ability to read journals without the
    store layer.
    """

    scheme = "sqlite"
    _SCHEMA = """
    CREATE TABLE IF NOT EXISTS cells (
        key    TEXT PRIMARY KEY,
        record TEXT NOT NULL
    );
    CREATE TABLE IF NOT EXISTS manifests (
        name       TEXT NOT NULL,
        digest     TEXT NOT NULL,
        manifest   TEXT NOT NULL,
        version    INTEGER NOT NULL,
        writer     TEXT NOT NULL,
        updated_at REAL NOT NULL,
        PRIMARY KEY (name, digest)
    );
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._writer_token = uuid.uuid4().hex
        #: connections are per (instance, pid): a forked pool worker that
        #: inherited this object must never reuse the parent's handle
        self._conn: Optional[sqlite3.Connection] = None
        self._conn_pid: Optional[int] = None
        self._connect()

    # ------------------------------------------------------------------
    def _connect(self) -> sqlite3.Connection:
        if self._conn is not None and self._conn_pid == os.getpid():
            return self._conn
        conn = sqlite3.connect(
            str(self.path), timeout=30.0, isolation_level=None, check_same_thread=False
        )
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")
        conn.executescript(self._SCHEMA)
        self._conn = conn
        self._conn_pid = os.getpid()
        return conn

    def close(self) -> None:
        if self._conn is not None and self._conn_pid == os.getpid():
            self._conn.close()
        self._conn = None
        self._conn_pid = None

    # ------------------------------------------------------------------
    @property
    def url(self) -> str:
        return f"sqlite:{self.path}"

    @property
    def artifact_dir(self) -> Path:
        return self.path.parent

    @property
    def telemetry_path(self) -> Path:
        return self.path.with_name(self.path.name + ".telemetry.jsonl")

    # ------------------------------------------------------------------
    def has(self, key: str) -> bool:
        row = self._connect().execute(
            "SELECT 1 FROM cells WHERE key = ?", (key,)
        ).fetchone()
        return row is not None

    def get(self, key: str) -> Optional[dict]:
        row = self._connect().execute(
            "SELECT record FROM cells WHERE key = ?", (key,)
        ).fetchone()
        if row is None:
            return None
        return json.loads(row[0])

    def put(self, key: str, record: dict) -> None:
        # One implicit transaction per statement (isolation_level=None +
        # single execute): atomic under WAL, and the upsert makes re-writes
        # of the same content-keyed record idempotent across processes.
        self._connect().execute(
            "INSERT INTO cells (key, record) VALUES (?, ?) "
            "ON CONFLICT(key) DO UPDATE SET record = excluded.record",
            (key, _dump_record(record)),
        )

    def keys(self) -> List[str]:
        rows = self._connect().execute("SELECT key FROM cells ORDER BY key").fetchall()
        return [row[0] for row in rows]

    def iterate(self) -> Iterator[dict]:
        rows = self._connect().execute(
            "SELECT record FROM cells ORDER BY key"
        ).fetchall()
        for row in rows:
            yield json.loads(row[0])

    # ------------------------------------------------------------------
    def write_manifest(self, manifest: dict) -> None:
        name = str(manifest.get("name", ""))
        text = json.dumps(manifest, sort_keys=True)
        import hashlib

        digest = hashlib.sha256(text.encode("utf-8")).hexdigest()[:20]
        conn = self._connect()
        conn.execute("BEGIN IMMEDIATE")
        try:
            row = conn.execute(
                "SELECT COALESCE(MAX(version), 0) FROM manifests WHERE name = ?",
                (name,),
            ).fetchone()
            conn.execute(
                "INSERT INTO manifests (name, digest, manifest, version, writer, "
                "updated_at) VALUES (?, ?, ?, ?, ?, ?) "
                "ON CONFLICT(name, digest) DO UPDATE SET "
                "updated_at = excluded.updated_at, writer = excluded.writer",
                (name, digest, text, int(row[0]) + 1, self._writer_token, time.time()),
            )
            conn.execute("COMMIT")
        except BaseException:
            conn.execute("ROLLBACK")
            raise

    def manifest(self) -> Optional[dict]:
        row = self._connect().execute(
            "SELECT manifest FROM manifests ORDER BY updated_at DESC, rowid DESC "
            "LIMIT 1"
        ).fetchone()
        if row is None:
            return None
        return json.loads(row[0])

    def manifests(self) -> List[dict]:
        """Every stored manifest, most recent first (nothing is ever lost)."""
        rows = self._connect().execute(
            "SELECT manifest FROM manifests ORDER BY updated_at DESC, rowid DESC"
        ).fetchall()
        return [json.loads(row[0]) for row in rows]
