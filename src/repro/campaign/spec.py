"""Declarative sweep campaigns: parameter grids over configurations x benchmarks.

A :class:`CampaignSpec` describes a full sweep — which benchmarks, which
:class:`~repro.sim.config.SimulationConfig` variants, how many instructions
per trace, how much warm-up — as plain data.  The spec expands into a list of
:class:`CampaignCell` objects (one simulation each); every cell has a
deterministic content hash (:func:`cell_key`) derived from the *complete*
configuration fingerprint, the benchmark, the trace length, the warm-up
fraction and the seed, so a persistent store can recognise already-computed
cells across processes and across runs.

Named presets cover the paper's sweeps:

``fig4``
    The five Fig. 4 configurations over all 38 benchmarks.
``fig4-mini``
    The same configurations over one representative benchmark per suite
    (quick smoke sweep).
``sec6d``
    The Sec. VI-D sensitivity grids — result-bus count, Input Buffer
    capacity, L1 hit latency and way-determination scheme — as MALEC option
    overrides over a locality-diverse benchmark subset.
"""

from __future__ import annotations

import enum
import hashlib
import json
from dataclasses import dataclass, fields, is_dataclass, replace
from functools import lru_cache
from typing import Callable, Dict, List, Sequence, Tuple

from repro.memory.address import AddressLayout
from repro.sim.config import (
    CacheParameters,
    InterfaceKind,
    MalecParameters,
    PipelineParameters,
    SimulationConfig,
    TLBParameters,
)
from repro.workloads.registry import (
    registered_handle,
    validate_workload,
    workload_trace_hash,
)
from repro.workloads.suites import (
    ALL_BENCHMARKS,
    LOCALITY_DIVERSE_BENCHMARKS,
    benchmark_profile,
)


# ----------------------------------------------------------------------
# Configuration (de)serialization
# ----------------------------------------------------------------------
def _encode(value):
    if is_dataclass(value) and not isinstance(value, type):
        return {f.name: _encode(getattr(value, f.name)) for f in fields(value)}
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, (tuple, list)):
        return [_encode(item) for item in value]
    return value


def config_to_dict(config: SimulationConfig) -> dict:
    """JSON-able dictionary capturing every field of ``config``."""
    return _encode(config)


def config_from_dict(data: dict) -> SimulationConfig:
    """Rebuild a :class:`SimulationConfig` from :func:`config_to_dict` output."""
    return SimulationConfig(
        name=data["name"],
        interface=InterfaceKind(data["interface"]),
        cache=CacheParameters(
            l1_hit_latency=data["cache"]["l1_hit_latency"],
            l2_latency=data["cache"]["l2_latency"],
            dram_latency=data["cache"]["dram_latency"],
            layout=AddressLayout(**data["cache"]["layout"]),
        ),
        tlb=TLBParameters(**data["tlb"]),
        pipeline=PipelineParameters(**data["pipeline"]),
        malec_options=MalecParameters(**data["malec_options"]),
        lq_entries=data["lq_entries"],
        sb_entries=data["sb_entries"],
        mb_entries=data["mb_entries"],
        include_buffer_energy=data["include_buffer_energy"],
        seed=data["seed"],
    )


# ----------------------------------------------------------------------
# Cells and keys
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CampaignCell:
    """One (configuration, workload) simulation of a campaign.

    ``benchmark`` names either a synthetic benchmark profile or a registered
    ingested trace (:mod:`repro.workloads.registry`).  For synthetic
    workloads ``seed`` is an offset added to the benchmark profile's own
    trace seed; zero reproduces the default trace every other harness in the
    repository generates for that benchmark.  For ingested workloads
    ``trace_hash`` pins the exact trace content: the cell key embeds it, so
    stored results are recognised across processes as long as the same trace
    bytes are registered again — and never collide with a different trace
    that happens to share a name.
    """

    benchmark: str
    config: SimulationConfig
    instructions: int
    warmup_fraction: float = 0.3
    seed: int = 0
    trace_hash: str = ""

    def key(self) -> str:
        """Deterministic content hash identifying this cell."""
        return cell_key(self)

    def trace_seed(self) -> int:
        """The RNG seed of this cell's synthetic trace.

        Ingested traces are not generated, so their cells use the campaign
        seed verbatim (it only disambiguates the worker-payload cache key).
        """
        if self.trace_hash:
            return self.seed
        return benchmark_profile(self.benchmark).seed + self.seed


@lru_cache(maxsize=16384)
def cell_key(cell: CampaignCell) -> str:
    """Stable hex digest of (config, benchmark, instructions, warmup, seed).

    The digest covers the *entire* configuration (not just its display name),
    so two configurations that differ in any parameter never collide, while
    renaming a configuration without changing parameters *does* change the
    key — the name is part of how results are aggregated.

    Memoised: cells are frozen (hashable) and campaigns ask for the same
    cell's key several times per run (store probe, record, assembly).
    """
    payload = {
        "benchmark": cell.benchmark,
        "config": config_to_dict(cell.config),
        "instructions": cell.instructions,
        "warmup_fraction": cell.warmup_fraction,
        "seed": cell.seed,
    }
    if cell.trace_hash:
        # Only present for ingested-trace cells, so every key computed before
        # this field existed — including records already on disk — is stable.
        payload["trace_hash"] = cell.trace_hash
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:20]


# ----------------------------------------------------------------------
# Campaign specification
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CampaignSpec:
    """A declarative sweep: configurations x benchmarks at fixed trace length."""

    name: str
    configurations: Tuple[SimulationConfig, ...]
    benchmarks: Tuple[str, ...] = ALL_BENCHMARKS
    instructions: int = 5_000
    warmup_fraction: float = 0.3
    seed: int = 0

    def __post_init__(self) -> None:
        if self.instructions <= 0:
            raise ValueError("campaigns need at least one instruction per trace")
        if not 0.0 <= self.warmup_fraction < 1.0:
            raise ValueError("warmup_fraction must lie in [0, 1)")
        if not self.configurations:
            raise ValueError("a campaign needs at least one configuration")
        if not self.benchmarks:
            raise ValueError("a campaign needs at least one benchmark")
        names = [config.name for config in self.configurations]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate configuration names in campaign: {names}")
        for benchmark in self.benchmarks:
            validate_workload(benchmark)  # raises KeyError for unknown names

    # ------------------------------------------------------------------
    def cells(self) -> List[CampaignCell]:
        """Expand the grid into cells, benchmark-major (matches Fig. 4 order)."""
        hashes = {
            benchmark: workload_trace_hash(benchmark) for benchmark in self.benchmarks
        }
        return [
            CampaignCell(
                benchmark=benchmark,
                config=config,
                instructions=self.instructions,
                warmup_fraction=self.warmup_fraction,
                seed=self.seed,
                trace_hash=hashes[benchmark],
            )
            for benchmark in self.benchmarks
            for config in self.configurations
        ]

    def configuration_names(self) -> List[str]:
        """Display names of the swept configurations, in grid order."""
        return [config.name for config in self.configurations]

    def describe(self) -> dict:
        """JSON-able manifest of the campaign (stored alongside results)."""
        manifest = {
            "name": self.name,
            "benchmarks": list(self.benchmarks),
            "configurations": [config_to_dict(c) for c in self.configurations],
            "instructions": self.instructions,
            "warmup_fraction": self.warmup_fraction,
            "seed": self.seed,
            "cells": len(self.benchmarks) * len(self.configurations),
        }
        traces = {
            benchmark: handle.fingerprint
            for benchmark in self.benchmarks
            for handle in [registered_handle(benchmark)]
            if handle is not None
        }
        if traces:
            manifest["traces"] = traces
        return manifest

    # ------------------------------------------------------------------
    def with_overrides(
        self,
        benchmarks: Sequence[str] = None,
        instructions: int = None,
        warmup_fraction: float = None,
        seed: int = None,
    ) -> "CampaignSpec":
        """Copy of the spec with some scalar knobs replaced (CLI overrides)."""
        changes = {}
        if benchmarks is not None:
            changes["benchmarks"] = tuple(benchmarks)
        if instructions is not None:
            changes["instructions"] = instructions
        if warmup_fraction is not None:
            changes["warmup_fraction"] = warmup_fraction
        if seed is not None:
            changes["seed"] = seed
        return replace(self, **changes) if changes else self


# ----------------------------------------------------------------------
# Presets for the paper's sweeps
# ----------------------------------------------------------------------
#: one representative benchmark per suite, used by the quick presets
_MINI_BENCHMARKS = ("gzip", "swim", "djpeg")

#: locality-diverse subset used by the Sec. VI-D sensitivity grids: the
#: paper's picks plus the two synthetic locality extremes (``ptrchase``,
#: ``streamwrite``), shared with the DSE space presets
_SEC6D_BENCHMARKS = LOCALITY_DIVERSE_BENCHMARKS


def _fig4() -> CampaignSpec:
    return CampaignSpec(
        name="fig4",
        configurations=tuple(SimulationConfig.figure4_suite()),
    )


def _fig4_mini() -> CampaignSpec:
    return CampaignSpec(
        name="fig4-mini",
        configurations=tuple(SimulationConfig.figure4_suite()),
        benchmarks=_MINI_BENCHMARKS,
    )


def _sec6d() -> CampaignSpec:
    configurations: List[SimulationConfig] = [SimulationConfig.base_1ldst()]
    for buses in (1, 2, 4, 6):
        configurations.append(
            SimulationConfig.malec(
                name=f"MALEC_{buses}bus",
                malec_options=MalecParameters(result_buses=buses),
            )
        )
    for capacity in (1, 3):
        configurations.append(
            SimulationConfig.malec(
                name=f"MALEC_ib{capacity}",
                malec_options=MalecParameters(input_buffer_capacity=capacity),
            )
        )
    for latency in (1, 3):
        configurations.append(SimulationConfig.malec(l1_hit_latency=latency))
    configurations.append(
        SimulationConfig.malec(
            name="MALEC_wdu",
            malec_options=MalecParameters(way_determination="wdu"),
        )
    )
    return CampaignSpec(
        name="sec6d",
        configurations=tuple(configurations),
        benchmarks=_SEC6D_BENCHMARKS,
    )


PRESETS: Dict[str, Callable[[], CampaignSpec]] = {
    "fig4": _fig4,
    "fig4-mini": _fig4_mini,
    "sec6d": _sec6d,
}

#: preset names in presentation order (shown in ``repro sweep`` CLI help)
PRESET_NAMES: Tuple[str, ...] = tuple(PRESETS)


def campaign_preset(name: str) -> CampaignSpec:
    """Build the named preset campaign (raises ``KeyError`` for unknown names)."""
    try:
        factory = PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown campaign preset {name!r}; choose from {', '.join(PRESET_NAMES)}"
        ) from None
    return factory()
