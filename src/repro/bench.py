"""Performance micro-harness behind ``repro bench``.

The ROADMAP's north star is a simulator that runs "as fast as the hardware
allows", which only means something if speed is *measured, recorded and
comparable across PRs*.  This module times the three workloads that dominate
every real use of the repository:

``trace_generation``
    Synthesising the per-benchmark instruction traces (pure workload-model
    cost, no simulation).

``single_config_run``
    One (configuration, trace) simulation — the unit of work every sweep
    parallelises — using the MALEC configuration on ``gzip``.

``fig4_mini_sweep``
    The ``fig4-mini`` campaign preset through the serial executor: the
    smallest end-to-end sweep that exercises trace caching, all five Fig. 4
    configurations and result assembly.

``figure4_gzip_djpeg_mcf``
    The exact workload of ``repro figure4 gzip djpeg mcf --instructions
    4000`` (the repository's canonical perf-acceptance command), run through
    the experiment runner.  Unlike ``fig4-mini`` it includes ``mcf``, whose
    pointer-chasing stalls exercise the pipeline's idle fast-forward.

Each scenario runs ``repeats`` times and reports the *minimum* wall time
(the usual best-of-N convention: the minimum is the least noisy estimator of
the true cost on a time-shared machine).  Results are written as
``BENCH_<rev>.json`` — see ``benchmarks/perf/README.md`` for the schema and
the workflow expected of optimisation PRs (attach before/after files).

The harness deliberately depends only on the public simulator API, so the
numbers survive internal rewrites — which is the point: the hot-path
refactors this repository undergoes must keep results bit-identical (the
golden tests check that) while moving these numbers down.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from repro.campaign.executor import ParallelExecutor
from repro.campaign.spec import campaign_preset
from repro.obs.hostinfo import detect_revision, host_metadata
from repro.sim.config import SimulationConfig
from repro.sim.simulator import run_configuration
from repro.workloads.suites import benchmark_profile
from repro.workloads.synthetic import generate_trace

#: benchmarks timed by the trace-generation scenario (one per suite)
TRACE_BENCHMARKS = ("gzip", "djpeg", "mcf")

#: benchmark driven through the single-configuration scenario
SINGLE_RUN_BENCHMARK = "gzip"

#: file-name prefix of every result file written by the harness
BENCH_PREFIX = "BENCH_"

#: current schema version of the emitted JSON
SCHEMA_VERSION = 1


@dataclass
class ScenarioResult:
    """Timing of one scenario: every repeat plus derived best-of-N values."""

    name: str
    runs: List[float]
    #: scenario-specific metadata (instruction counts, cycles, cells, ...)
    details: Dict[str, object] = field(default_factory=dict)

    @property
    def seconds(self) -> float:
        """Best (minimum) wall time across the repeats."""
        return min(self.runs)

    def as_dict(self) -> dict:
        """JSON-able representation stored in the ``BENCH_*.json`` file."""
        payload = dict(self.details)
        # Reserved keys always reflect the timing, never scenario details.
        payload["seconds"] = self.seconds
        payload["runs"] = self.runs
        return payload


def _time_repeats(repeats: int, workload: Callable[[], Dict[str, object]]):
    """Run ``workload`` ``repeats`` times; return (wall times, last details)."""
    runs: List[float] = []
    details: Dict[str, object] = {}
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        details = workload() or {}
        runs.append(time.perf_counter() - start)
    return runs, details


# ----------------------------------------------------------------------
# Scenarios
# ----------------------------------------------------------------------
def bench_trace_generation(instructions: int, repeats: int) -> ScenarioResult:
    """Time synthesising the traces of :data:`TRACE_BENCHMARKS`."""

    def workload() -> Dict[str, object]:
        total = 0
        for name in TRACE_BENCHMARKS:
            total += len(generate_trace(benchmark_profile(name), instructions))
        return {"benchmarks": list(TRACE_BENCHMARKS), "instructions": total}

    runs, details = _time_repeats(repeats, workload)
    result = ScenarioResult(name="trace_generation", runs=runs, details=details)
    result.details["instructions_per_second"] = (
        details["instructions"] / result.seconds if result.seconds else 0.0
    )
    return result


def bench_single_config_run(
    instructions: int, repeats: int, warmup_fraction: float = 0.3
) -> ScenarioResult:
    """Time one MALEC simulation of :data:`SINGLE_RUN_BENCHMARK`."""
    trace = generate_trace(
        benchmark_profile(SINGLE_RUN_BENCHMARK), instructions=instructions
    )

    def workload() -> Dict[str, object]:
        outcome = run_configuration(
            SimulationConfig.malec(), trace, warmup_fraction=warmup_fraction
        )
        return {
            "benchmark": SINGLE_RUN_BENCHMARK,
            "configuration": outcome.config_name,
            "instructions": instructions,
            "cycles": outcome.cycles,
        }

    runs, details = _time_repeats(repeats, workload)
    return ScenarioResult(name="single_config_run", runs=runs, details=details)


def bench_single_config_run_kernel(
    instructions: int, repeats: int, warmup_fraction: float = 0.3
) -> ScenarioResult:
    """Time the specialized kernel against the generic interpreter loop.

    The timed workload is :func:`bench_single_config_run`'s simulation with
    ``kernel="specialized"`` pinned; the same run with ``kernel="generic"``
    is timed alongside (same best-of-N) and reported in the details as
    ``generic_seconds`` / ``speedup_vs_generic``, documenting what the
    per-configuration generated kernels buy over the interpreted loop.
    Both runs are bit-identical by construction (enforced by
    ``tests/test_kernel_differential.py``); the compile cost is excluded by
    prewarming the kernel cache before timing, matching steady-state use.
    """
    from repro.sim.kernels import prewarm

    config = SimulationConfig.malec()
    trace = generate_trace(
        benchmark_profile(SINGLE_RUN_BENCHMARK), instructions=instructions
    )
    prewarm([config])

    def workload() -> Dict[str, object]:
        outcome = run_configuration(
            config, trace, warmup_fraction=warmup_fraction, kernel="specialized"
        )
        return {
            "benchmark": SINGLE_RUN_BENCHMARK,
            "configuration": outcome.config_name,
            "instructions": instructions,
            "cycles": outcome.cycles,
        }

    def generic_workload() -> Dict[str, object]:
        outcome = run_configuration(
            config, trace, warmup_fraction=warmup_fraction, kernel="generic"
        )
        return {"cycles": outcome.cycles}

    runs, details = _time_repeats(repeats, workload)
    generic_runs, _ = _time_repeats(repeats, generic_workload)
    result = ScenarioResult(name="single_config_run_kernel", runs=runs, details=details)
    generic_seconds = min(generic_runs)
    result.details["generic_seconds"] = generic_seconds
    result.details["speedup_vs_generic"] = (
        generic_seconds / result.seconds if result.seconds else 0.0
    )
    return result


def bench_fig4_mini_sweep(instructions: int, repeats: int) -> ScenarioResult:
    """Time the ``fig4-mini`` preset through the campaign engine.

    Runs with the engine's default parallelism (one worker per core; on a
    single-core host this is the serial path), i.e. exactly what
    ``repro sweep fig4-mini`` costs a user.
    """
    spec = campaign_preset("fig4-mini").with_overrides(instructions=instructions)

    def workload() -> Dict[str, object]:
        executor = ParallelExecutor()
        results = executor.run(spec)
        return {
            "preset": "fig4-mini",
            "instructions": instructions,
            "cells": len(spec.cells()),
            "benchmarks": len(results.runs),
            "jobs": executor.jobs,
            "used_pool": executor.used_pool,
        }

    runs, details = _time_repeats(repeats, workload)
    return ScenarioResult(name="fig4_mini_sweep", runs=runs, details=details)


def bench_fig4_mini_sweep_serial(instructions: int, repeats: int) -> ScenarioResult:
    """Time the ``fig4-mini`` preset through the *serial* executor path.

    The single-process signal: tracks the simulator hot path itself without
    pool scheduling, regardless of the host's core count.
    """
    spec = campaign_preset("fig4-mini").with_overrides(instructions=instructions)

    def workload() -> Dict[str, object]:
        executor = ParallelExecutor(jobs=1)
        results = executor.run(spec)
        return {
            "preset": "fig4-mini",
            "instructions": instructions,
            "cells": len(spec.cells()),
            "benchmarks": len(results.runs),
        }

    runs, details = _time_repeats(repeats, workload)
    return ScenarioResult(name="fig4_mini_sweep_serial", runs=runs, details=details)


def bench_trace_decode(instructions: int, repeats: int) -> ScenarioResult:
    """Time decoding a trace from ``.rtrc`` (the pool-worker payload path).

    The timed workload is :func:`repro.workloads.binfmt.load_rtrc` — exactly
    what a campaign/DSE pool worker pays per trace.  The JSONL parse of the
    same trace is timed alongside (same best-of-N) and reported in the
    details as ``jsonl_seconds``/``speedup_vs_jsonl``, documenting what the
    binary format buys over the line-per-instruction text form.
    """
    import tempfile

    from repro.workloads.binfmt import dump_rtrc, load_rtrc
    from repro.workloads.trace import MemoryTrace

    trace = generate_trace(
        benchmark_profile(SINGLE_RUN_BENCHMARK), instructions=instructions
    )
    with tempfile.TemporaryDirectory() as tmp:
        rtrc_path = Path(tmp) / "bench.rtrc"
        jsonl_path = Path(tmp) / "bench.jsonl"
        dump_rtrc(trace, rtrc_path)
        trace.to_jsonl(jsonl_path)

        def workload() -> Dict[str, object]:
            decoded = load_rtrc(rtrc_path)
            return {
                "benchmark": SINGLE_RUN_BENCHMARK,
                "instructions": len(decoded),
                "rtrc_bytes": rtrc_path.stat().st_size,
            }

        runs, details = _time_repeats(repeats, workload)
        jsonl_runs, _ = _time_repeats(
            repeats, lambda: {"n": len(MemoryTrace.from_jsonl(jsonl_path))}
        )
    result = ScenarioResult(name="trace_decode_rtrc", runs=runs, details=details)
    jsonl_seconds = min(jsonl_runs)
    result.details["jsonl_seconds"] = jsonl_seconds
    result.details["speedup_vs_jsonl"] = (
        jsonl_seconds / result.seconds if result.seconds else 0.0
    )
    return result


def bench_trace_columnar_decode(instructions: int, repeats: int) -> ScenarioResult:
    """Time the columnar trace lift against full object materialization.

    The timed workload is what a campaign pool worker pays per shipped
    payload on the default (columnar) frontend:
    :meth:`~repro.workloads.columnar.ColumnarTrace.from_rtrc_bytes` plus the
    batched :meth:`~repro.workloads.columnar.ColumnarTrace.pipeline_arrays`
    interpretation pass.  The object-path equivalent — ``decode_trace`` (one
    ``Instruction`` per record) plus ``MemoryTrace.pipeline_arrays`` — is
    timed alongside and reported as ``object_seconds`` /
    ``speedup_vs_objects``, documenting what the structure-of-arrays view
    buys over per-instruction objects.
    """
    from repro.workloads.binfmt import decode_trace, encode_trace
    from repro.workloads.columnar import ColumnarTrace

    trace = generate_trace(
        benchmark_profile(SINGLE_RUN_BENCHMARK), instructions=instructions
    )
    payload = encode_trace(trace)

    def workload() -> Dict[str, object]:
        view = ColumnarTrace.from_rtrc_bytes(payload)
        view.pipeline_arrays()
        return {
            "benchmark": SINGLE_RUN_BENCHMARK,
            "instructions": len(view),
            "rtrc_bytes": len(payload),
        }

    def object_workload() -> Dict[str, object]:
        decoded = decode_trace(payload)
        decoded.pipeline_arrays()
        return {"instructions": len(decoded)}

    runs, details = _time_repeats(repeats, workload)
    object_runs, _ = _time_repeats(repeats, object_workload)
    result = ScenarioResult(name="trace_columnar_decode", runs=runs, details=details)
    object_seconds = min(object_runs)
    result.details["object_seconds"] = object_seconds
    result.details["speedup_vs_objects"] = (
        object_seconds / result.seconds if result.seconds else 0.0
    )
    return result


def bench_figure4_acceptance(instructions: int, repeats: int) -> ScenarioResult:
    """Time the ``repro figure4 gzip djpeg mcf`` workload (acceptance metric)."""
    from repro.analysis.experiments import ExperimentRunner

    benchmarks = ("gzip", "djpeg", "mcf")

    def workload() -> Dict[str, object]:
        runner = ExperimentRunner(
            instructions=instructions, benchmarks=benchmarks, warmup_fraction=0.3
        )
        results = runner.run(SimulationConfig.figure4_suite())
        return {
            "benchmarks": list(benchmarks),
            "instructions": instructions,
            "cells": 5 * len(benchmarks),
            "benchmarks_completed": len(results.runs),
        }

    runs, details = _time_repeats(repeats, workload)
    return ScenarioResult(name="figure4_gzip_djpeg_mcf", runs=runs, details=details)


# ----------------------------------------------------------------------
# Harness driver
# ----------------------------------------------------------------------
#: scenario name -> builder; the canonical ordering of a full bench run
SCENARIO_NAMES = (
    "trace_generation",
    "single_config_run",
    "single_config_run_kernel",
    "fig4_mini_sweep",
    "fig4_mini_sweep_serial",
    "figure4_gzip_djpeg_mcf",
    "trace_decode_rtrc",
    "trace_columnar_decode",
)


def _scenario_builders(instructions: int, sweep_instructions: int, repeats: int):
    return {
        "trace_generation": lambda: bench_trace_generation(instructions, repeats),
        "single_config_run": lambda: bench_single_config_run(instructions, repeats),
        "single_config_run_kernel": lambda: bench_single_config_run_kernel(
            instructions, repeats
        ),
        "fig4_mini_sweep": lambda: bench_fig4_mini_sweep(
            sweep_instructions, repeats
        ),
        "fig4_mini_sweep_serial": lambda: bench_fig4_mini_sweep_serial(
            sweep_instructions, repeats
        ),
        "figure4_gzip_djpeg_mcf": lambda: bench_figure4_acceptance(
            instructions, repeats
        ),
        "trace_decode_rtrc": lambda: bench_trace_decode(instructions, repeats),
        "trace_columnar_decode": lambda: bench_trace_columnar_decode(
            instructions, repeats
        ),
    }


def run_benchmarks(
    instructions: int = 4000,
    sweep_instructions: int = 2000,
    repeats: int = 3,
    quick: bool = False,
    label: Optional[str] = None,
    scenarios: Optional[List[str]] = None,
) -> dict:
    """Execute the scenarios and return the complete report dictionary.

    ``quick`` shrinks the workloads to a few hundred instructions and one
    repeat — enough for CI to prove the harness runs, useless for comparing
    performance.  ``scenarios`` restricts the run to the named subset (in
    canonical order); unknown names raise ``ValueError``.
    """
    if quick:
        instructions = min(instructions, 600)
        sweep_instructions = min(sweep_instructions, 400)
        repeats = 1
    revision = detect_revision()
    builders = _scenario_builders(instructions, sweep_instructions, repeats)
    selected = list(SCENARIO_NAMES) if scenarios is None else list(scenarios)
    unknown = [name for name in selected if name not in builders]
    if unknown:
        raise ValueError(
            f"unknown bench scenario(s) {', '.join(sorted(unknown))}; "
            f"choose from {', '.join(SCENARIO_NAMES)}"
        )
    ordered = [name for name in SCENARIO_NAMES if name in selected]
    results = [builders[name]() for name in ordered]
    return {
        "schema": SCHEMA_VERSION,
        "label": label or revision,
        "revision": revision,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "host": host_metadata(revision),
        "params": {
            "instructions": instructions,
            "sweep_instructions": sweep_instructions,
            "repeats": repeats,
            "quick": quick,
        },
        "scenarios": {result.name: result.as_dict() for result in results},
        "total_seconds": sum(result.seconds for result in results),
    }


def default_output_dir() -> Path:
    """The standard location for bench records: ``benchmarks/perf`` at the
    repository root.

    Resolved from this module's location so results land in the repository
    regardless of the current working directory (a cwd-relative default is
    easy to lose); falls back to a cwd-relative path for installed copies
    that have no repository checkout around them.
    """
    root = Path(__file__).resolve().parents[2]
    candidate = root / "benchmarks" / "perf"
    if (root / "benchmarks").is_dir() or (root / ".git").exists():
        return candidate
    return Path("benchmarks") / "perf"


def write_report(
    report: dict, out_dir: Union[str, Path], out_file: Optional[Union[str, Path]] = None
) -> Path:
    """Write ``report`` as ``BENCH_<label>.json`` under ``out_dir``.

    ``out_file`` overrides the full output path (the ``--output`` flag).
    """
    if out_file is not None:
        path = Path(out_file)
        path.parent.mkdir(parents=True, exist_ok=True)
    else:
        out = Path(out_dir)
        out.mkdir(parents=True, exist_ok=True)
        safe_label = "".join(
            ch if (ch.isalnum() or ch in "-_.") else "-" for ch in str(report["label"])
        )
        path = out / f"{BENCH_PREFIX}{safe_label}.json"
    path.write_text(json.dumps(report, indent=1, sort_keys=True) + "\n")
    return path


def format_report(report: dict) -> str:
    """One-line-per-scenario human-readable summary."""
    lines = [
        f"bench {report['label']} (rev {report['revision']}, "
        f"python {report['python']}, repeats {report['params']['repeats']})"
    ]
    for name, scenario in report["scenarios"].items():
        lines.append(f"  {name:<20s} {scenario['seconds'] * 1000.0:>10.1f} ms")
    lines.append(f"  {'total':<20s} {report['total_seconds'] * 1000.0:>10.1f} ms")
    return "\n".join(lines)


def compare_host_warnings(before: dict, after: dict) -> List[str]:
    """Host-metadata mismatches that make ``before``/``after`` incomparable.

    Revision is excluded on purpose — comparing two revisions is the whole
    point of ``--compare``.  Reports written before host metadata existed
    fall back to their top-level python/platform fields.
    """
    fallback_keys = ("python", "platform")
    old = before.get("host") or {k: before.get(k) for k in fallback_keys}
    new = after.get("host") or {k: after.get(k) for k in fallback_keys}
    warnings: List[str] = []
    for key in ("cpu_count", "machine", "platform", "python"):
        old_value, new_value = old.get(key), new.get(key)
        if old_value is None or new_value is None:
            continue
        if old_value != new_value:
            warnings.append(
                f"host {key} differs: {old_value} (before) vs {new_value} "
                "(after) — timings are not directly comparable"
            )
    return warnings


def compare_reports(
    before: dict, after: dict, scenarios: Optional[List[str]] = None
) -> str:
    """Speedup table between two reports (``before`` / ``after``)."""
    lines = [f"speedup {before['label']} -> {after['label']}"]
    for name, scenario in after["scenarios"].items():
        if scenarios is not None and name not in scenarios:
            continue
        reference = before["scenarios"].get(name)
        if reference is None or not scenario["seconds"]:
            continue
        ratio = reference["seconds"] / scenario["seconds"]
        lines.append(
            f"  {name:<24s} {reference['seconds'] * 1000.0:>10.1f} ms -> "
            f"{scenario['seconds'] * 1000.0:>10.1f} ms   ({ratio:.2f}x)"
        )
    return "\n".join(lines)


def find_regressions(
    before: dict,
    after: dict,
    threshold_pct: float,
    scenarios: Optional[List[str]] = None,
) -> List[str]:
    """Scenarios of ``after`` slower than ``before`` by more than the threshold.

    Only scenarios present in both reports are considered (a renamed or new
    scenario has no baseline to regress against); ``scenarios`` restricts
    the gate further — the CI disabled-overhead check gates only the
    simulator hot-path scenarios at a tight threshold.
    """
    regressions: List[str] = []
    for name, scenario in after["scenarios"].items():
        if scenarios is not None and name not in scenarios:
            continue
        reference = before["scenarios"].get(name)
        if reference is None or not reference["seconds"]:
            continue
        slowdown_pct = (scenario["seconds"] / reference["seconds"] - 1.0) * 100.0
        if slowdown_pct > threshold_pct:
            regressions.append(f"{name}: {slowdown_pct:+.1f}% slower")
    return regressions


def bench_history(directory: Union[str, Path]) -> List[dict]:
    """Every readable ``BENCH_*.json`` under ``directory``, oldest first.

    Records sort by their ``timestamp`` field (filename as a tiebreak) so
    the table reads as a trajectory; unreadable or non-report files are
    skipped rather than aborting the whole history.
    """
    records = []
    for path in sorted(Path(directory).glob(f"{BENCH_PREFIX}*.json")):
        try:
            report = load_report(path)
        except (OSError, ValueError):
            continue
        records.append((str(report.get("timestamp", "")), path.name, report))
    records.sort(key=lambda item: (item[0], item[1]))
    return [report for _, _, report in records]


def format_history(reports: List[dict], scenarios: Optional[List[str]] = None) -> str:
    """Per-scenario trajectory table across committed bench records.

    One row per record (oldest first), one column per scenario in canonical
    order, best-of-N milliseconds.  Records taken on a different host than
    the most recent one are flagged with ``*``: their absolute numbers
    measure that host, not the code, so they break the trajectory.
    """
    from repro.analysis.reporting import format_table

    if not reports:
        return "no bench records found"
    names = [
        name
        for name in SCENARIO_NAMES
        if (scenarios is None or name in scenarios)
        and any(name in report.get("scenarios", {}) for report in reports)
    ]
    latest = reports[-1]
    flagged = False
    rows: List[List[object]] = []
    for report in reports:
        mismatched = bool(compare_host_warnings(report, latest))
        flagged = flagged or mismatched
        row: List[object] = [
            str(report.get("label", "?")) + ("*" if mismatched else ""),
            str(report.get("timestamp", ""))[:10],
        ]
        for name in names:
            scenario = report.get("scenarios", {}).get(name)
            row.append(f"{scenario['seconds'] * 1000.0:.1f}" if scenario else "-")
        rows.append(row)
    lines = [
        f"bench history: {len(reports)} records, milliseconds, oldest first",
        format_table(["record", "when"] + names, rows),
    ]
    if flagged:
        lines.append(
            "* host differs from the most recent record; timings not comparable"
        )
    return "\n".join(lines)


def load_report(path: Union[str, Path]) -> dict:
    """Read a ``BENCH_*.json`` file, validating the schema version."""
    report = json.loads(Path(path).read_text())
    if not isinstance(report, dict) or "scenarios" not in report:
        raise ValueError(f"{path}: not a bench report")
    return report


def _load_report_checked(path: Union[str, Path]) -> Optional[dict]:
    """Load a comparison report, or ``None`` after printing a usage error.

    Missing files, unreadable files and corrupt/non-report JSON are usage
    errors of ``--compare`` (exit 2), matching how ``sweep``/``dse`` reject
    unknown presets — never a traceback.
    """
    try:
        return load_report(path)
    except FileNotFoundError:
        print(f"repro bench: comparison file not found: {path}", file=sys.stderr)
    except OSError as error:
        print(f"repro bench: cannot read {path}: {error}", file=sys.stderr)
    except json.JSONDecodeError as error:
        print(f"repro bench: {path} is not valid JSON: {error}", file=sys.stderr)
    except ValueError as error:
        print(f"repro bench: {error}", file=sys.stderr)
    return None


def main_bench(args) -> int:
    """Implementation of the ``repro bench`` CLI sub-command.

    ``--compare OLD.json NEW.json`` is the pure comparison mode: nothing is
    benchmarked, the two reports are compared and the exit status reflects
    the ``--threshold`` regression gate (the CI bench-regression job).  With
    a single file, the benchmarks run first and the fresh report is compared
    against the file; the gate then only applies when ``--threshold`` was
    given explicitly (a gate on a live run is an opt-in, since two runs on a
    shared machine are noisier than two committed records).
    """
    compare = args.compare or []
    threshold = args.threshold
    scenarios = getattr(args, "scenarios", None)
    if getattr(args, "history", False):
        directory = args.out if args.out is not None else default_output_dir()
        if not Path(directory).is_dir():
            print(f"repro bench: no bench directory at {directory}", file=sys.stderr)
            return 2
        reports = bench_history(directory)
        if not reports:
            print(
                f"repro bench: no {BENCH_PREFIX}*.json records in {directory}",
                file=sys.stderr,
            )
            return 2
        print(format_history(reports, scenarios=scenarios))
        return 0
    if len(compare) > 2:
        print("--compare takes at most two files (OLD.json NEW.json)")
        return 2

    if len(compare) == 2:
        before = _load_report_checked(compare[0])
        after = _load_report_checked(compare[1])
        if before is None or after is None:
            return 2
        for warning in compare_host_warnings(before, after):
            print(f"repro bench: warning: {warning}", file=sys.stderr)
        print(compare_reports(before, after, scenarios=scenarios))
        regressions = find_regressions(
            before,
            after,
            threshold if threshold is not None else 20.0,
            scenarios=scenarios,
        )
        if regressions:
            print("regression beyond threshold:")
            for line in regressions:
                print(f"  {line}")
            return 1
        return 0

    try:
        report = run_benchmarks(
            instructions=args.instructions,
            sweep_instructions=args.sweep_instructions,
            repeats=args.repeats,
            quick=args.quick,
            label=args.label,
            scenarios=scenarios,
        )
    except ValueError as error:
        # Unknown --scenarios names: a usage error, not a traceback.
        print(f"repro bench: {error}", file=sys.stderr)
        return 2
    print(format_report(report))
    if not args.no_write:
        out_dir = args.out if args.out is not None else default_output_dir()
        path = write_report(report, out_dir, out_file=args.output)
        print(f"wrote {path}")
    if compare:
        before = _load_report_checked(compare[0])
        if before is None:
            return 2
        for warning in compare_host_warnings(before, report):
            print(f"repro bench: warning: {warning}", file=sys.stderr)
        print(compare_reports(before, report, scenarios=scenarios))
        if threshold is not None:
            regressions = find_regressions(
                before, report, threshold, scenarios=scenarios
            )
            if regressions:
                print("regression beyond threshold:")
                for line in regressions:
                    print(f"  {line}")
                return 1
    return 0
