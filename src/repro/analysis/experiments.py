"""Experiment runner: sweep configurations over benchmark suites.

:class:`ExperimentRunner` is the harness behind the Fig. 4 benchmarks and
examples: it generates (and caches) the synthetic trace of each benchmark,
runs every requested configuration over it and exposes the normalized
execution-time and energy views the paper plots, including the per-suite
geometric means.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.analysis.reporting import geometric_mean
from repro.sim.config import SimulationConfig
from repro.sim.simulator import SimulationResult, run_configuration
from repro.workloads.suites import ALL_BENCHMARKS, SUITES, benchmark_profile
from repro.workloads.synthetic import generate_trace
from repro.workloads.trace import MemoryTrace


@dataclass
class BenchmarkRun:
    """All configuration results for one benchmark."""

    benchmark: str
    suite: str
    results: Dict[str, SimulationResult] = field(default_factory=dict)

    def normalized_cycles(self, baseline: str) -> Dict[str, float]:
        """Execution time of every configuration relative to ``baseline``."""
        base = self.results[baseline].cycles
        return {name: result.cycles / base for name, result in self.results.items()}

    def normalized_energy(self, baseline: str) -> Dict[str, Dict[str, float]]:
        """Dynamic/leakage/total energy relative to ``baseline``'s total."""
        base = self.results[baseline]
        return {
            name: result.normalized_energy(base) for name, result in self.results.items()
        }


@dataclass
class ExperimentResults:
    """Results of a full sweep (benchmarks x configurations)."""

    runs: List[BenchmarkRun] = field(default_factory=list)
    configurations: List[str] = field(default_factory=list)

    # ------------------------------------------------------------------
    def run_for(self, benchmark: str) -> BenchmarkRun:
        """The :class:`BenchmarkRun` of ``benchmark``."""
        for run in self.runs:
            if run.benchmark == benchmark:
                return run
        raise KeyError(benchmark)

    def suites(self) -> List[str]:
        """Suites present in the sweep, in canonical order."""
        present = {run.suite for run in self.runs}
        return [suite for suite in SUITES if suite in present]

    # ------------------------------------------------------------------
    def geomean_normalized_cycles(
        self, baseline: str, suite: Optional[str] = None
    ) -> Dict[str, float]:
        """Per-configuration geometric mean of normalized execution time."""
        values: Dict[str, List[float]] = {name: [] for name in self.configurations}
        for run in self.runs:
            if suite is not None and run.suite != suite:
                continue
            normalized = run.normalized_cycles(baseline)
            for name in self.configurations:
                values[name].append(normalized[name])
        return {
            name: geometric_mean(series) if series else 0.0
            for name, series in values.items()
        }

    def geomean_normalized_energy(
        self, baseline: str, suite: Optional[str] = None, component: str = "total"
    ) -> Dict[str, float]:
        """Per-configuration geometric mean of normalized energy."""
        values: Dict[str, List[float]] = {name: [] for name in self.configurations}
        for run in self.runs:
            if suite is not None and run.suite != suite:
                continue
            normalized = run.normalized_energy(baseline)
            for name in self.configurations:
                values[name].append(normalized[name][component])
        return {
            name: geometric_mean(series) if series else 0.0
            for name, series in values.items()
        }

    def mean_stat(self, config: str, extractor) -> float:
        """Arithmetic mean of ``extractor(result)`` over all benchmarks."""
        values = [extractor(run.results[config]) for run in self.runs]
        return sum(values) / len(values) if values else 0.0


class ExperimentRunner:
    """Runs configuration sweeps over (subsets of) the benchmark suites.

    ``warmup_fraction`` of every trace is executed once per configuration to
    warm the caches, TLBs and way tables before measurement starts (the paper
    measures warmed-up Simpoint phases, so cold-start effects would otherwise
    dominate the short synthetic traces).
    """

    def __init__(
        self,
        instructions: int = 12_000,
        benchmarks: Optional[Sequence[str]] = None,
        warmup_fraction: float = 0.25,
    ) -> None:
        if instructions <= 0:
            raise ValueError("traces need at least one instruction")
        self.instructions = instructions
        self.benchmarks = list(benchmarks) if benchmarks is not None else list(ALL_BENCHMARKS)
        self.warmup_fraction = warmup_fraction
        self._trace_cache: Dict[str, MemoryTrace] = {}

    # ------------------------------------------------------------------
    def trace_for(self, benchmark: str) -> MemoryTrace:
        """The (cached) synthetic trace of ``benchmark``."""
        if benchmark not in self._trace_cache:
            profile = benchmark_profile(benchmark)
            self._trace_cache[benchmark] = generate_trace(profile, self.instructions)
        return self._trace_cache[benchmark]

    def run(self, configurations: Sequence[SimulationConfig]) -> ExperimentResults:
        """Run every configuration over every selected benchmark."""
        results = ExperimentResults(configurations=[config.name for config in configurations])
        for benchmark in self.benchmarks:
            profile = benchmark_profile(benchmark)
            trace = self.trace_for(benchmark)
            run = BenchmarkRun(benchmark=benchmark, suite=profile.suite)
            for config in configurations:
                run.results[config.name] = run_configuration(
                    config, trace, warmup_fraction=self.warmup_fraction
                )
            results.runs.append(run)
        return results
