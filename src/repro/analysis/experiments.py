"""Experiment runner: sweep configurations over benchmark suites.

:class:`ExperimentRunner` is the harness behind the Fig. 4 benchmarks and
examples: it generates (and caches) the synthetic trace of each benchmark,
runs every requested configuration over it and exposes the normalized
execution-time and energy views the paper plots, including the per-suite
geometric means.  Execution itself is delegated to the campaign subsystem
(:mod:`repro.campaign`), so the runner, the ``sweep`` CLI and the tests all
share one engine — including process-pool parallelism (``jobs``) and
store-backed resume (``store``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.reporting import geometric_mean
from repro.sim.config import SimulationConfig
from repro.sim.simulator import SimulationResult
from repro.workloads.registry import registered_handle, registered_trace
from repro.workloads.suites import ALL_BENCHMARKS, ALL_SUITES, benchmark_profile
from repro.workloads.synthetic import generate_trace
from repro.workloads.trace import MemoryTrace


@dataclass
class BenchmarkRun:
    """All configuration results for one benchmark."""

    benchmark: str
    suite: str
    results: Dict[str, SimulationResult] = field(default_factory=dict)

    def normalized_cycles(self, baseline: str) -> Dict[str, float]:
        """Execution time of every configuration relative to ``baseline``."""
        base = self.results[baseline].cycles
        return {name: result.cycles / base for name, result in self.results.items()}

    def normalized_energy(self, baseline: str) -> Dict[str, Dict[str, float]]:
        """Dynamic/leakage/total energy relative to ``baseline``'s total."""
        base = self.results[baseline]
        return {
            name: result.normalized_energy(base) for name, result in self.results.items()
        }


@dataclass
class ExperimentResults:
    """Results of a full sweep (benchmarks x configurations)."""

    runs: List[BenchmarkRun] = field(default_factory=list)
    configurations: List[str] = field(default_factory=list)

    # ------------------------------------------------------------------
    def run_for(self, benchmark: str) -> BenchmarkRun:
        """The :class:`BenchmarkRun` of ``benchmark``.

        Lookups are backed by a name->run index so repeated queries over a
        large sweep avoid rescanning, while ``runs`` remains a plain list.
        The index is invalidated by object identity of the list elements,
        so appends, removals and in-place replacements are all detected;
        duplicate benchmark names resolve to the first occurrence, matching
        the original linear scan.
        """
        cached = getattr(self, "_run_index", None)
        token = tuple(map(id, self.runs))
        if cached is None or cached[0] != token:
            # Reversed iteration: earlier occurrences overwrite later ones,
            # preserving first-match semantics for duplicate names.
            index = {run.benchmark: run for run in reversed(self.runs)}
            self._run_index = cached = (token, index)
        return cached[1][benchmark]

    def suites(self) -> List[str]:
        """Suites present in the sweep, in canonical order."""
        present = {run.suite for run in self.runs}
        return [suite for suite in ALL_SUITES if suite in present]

    # ------------------------------------------------------------------
    def geomean_normalized_cycles(
        self, baseline: str, suite: Optional[str] = None
    ) -> Dict[str, float]:
        """Per-configuration geometric mean of normalized execution time."""
        values: Dict[str, List[float]] = {name: [] for name in self.configurations}
        for run in self.runs:
            if suite is not None and run.suite != suite:
                continue
            normalized = run.normalized_cycles(baseline)
            for name in self.configurations:
                values[name].append(normalized[name])
        return {
            name: geometric_mean(series) if series else 0.0
            for name, series in values.items()
        }

    def geomean_normalized_energy(
        self, baseline: str, suite: Optional[str] = None, component: str = "total"
    ) -> Dict[str, float]:
        """Per-configuration geometric mean of normalized energy."""
        values: Dict[str, List[float]] = {name: [] for name in self.configurations}
        for run in self.runs:
            if suite is not None and run.suite != suite:
                continue
            normalized = run.normalized_energy(baseline)
            for name in self.configurations:
                values[name].append(normalized[name][component])
        return {
            name: geometric_mean(series) if series else 0.0
            for name, series in values.items()
        }

    def mean_stat(self, config: str, extractor) -> float:
        """Arithmetic mean of ``extractor(result)`` over all benchmarks."""
        values = [extractor(run.results[config]) for run in self.runs]
        return sum(values) / len(values) if values else 0.0


class ExperimentRunner:
    """Runs configuration sweeps over (subsets of) the benchmark suites.

    ``warmup_fraction`` of every trace is executed once per configuration to
    warm the caches, TLBs and way tables before measurement starts (the paper
    measures warmed-up Simpoint phases, so cold-start effects would otherwise
    dominate the short synthetic traces).
    """

    def __init__(
        self,
        instructions: int = 12_000,
        benchmarks: Optional[Sequence[str]] = None,
        warmup_fraction: float = 0.25,
    ) -> None:
        if instructions <= 0:
            raise ValueError("traces need at least one instruction")
        self.instructions = instructions
        self.benchmarks = list(benchmarks) if benchmarks is not None else list(ALL_BENCHMARKS)
        self.warmup_fraction = warmup_fraction
        # Keyed (benchmark, instructions, trace seed, trace hash) — the
        # campaign executor's cache shape, shared with it by run() so traces
        # resolved here and there are never produced twice.
        self._trace_cache: Dict[Tuple[str, int, int, str], MemoryTrace] = {}

    # ------------------------------------------------------------------
    def trace_for(self, benchmark: str) -> MemoryTrace:
        """The (cached) trace of ``benchmark`` — synthetic or ingested.

        Registered ingested traces are truncated to the runner's instruction
        budget when longer, matching what the campaign executor simulates.
        """
        ingested = registered_trace(benchmark)
        if ingested is not None:
            fingerprint = registered_handle(benchmark).fingerprint
            key = (benchmark, self.instructions, 0, fingerprint)
            if key not in self._trace_cache:
                self._trace_cache[key] = (
                    ingested
                    if len(ingested) <= self.instructions
                    else ingested.head(self.instructions)
                )
            return self._trace_cache[key]
        profile = benchmark_profile(benchmark)
        key = (benchmark, self.instructions, profile.seed, "")
        if key not in self._trace_cache:
            self._trace_cache[key] = generate_trace(profile, self.instructions)
        return self._trace_cache[key]

    def run(
        self,
        configurations: Sequence[SimulationConfig],
        jobs: Optional[int] = None,
        store=None,
        progress=None,
    ) -> ExperimentResults:
        """Run every configuration over every selected benchmark.

        ``jobs`` fans the sweep out over that many worker processes (the
        default uses one worker per CPU core);
        ``store`` (a :class:`~repro.campaign.store.ResultStore` or a store
        URL such as ``json:results/dir`` or ``sqlite:results.db``) persists
        every cell and lets a repeated run resume instead of recompute;
        ``progress`` is forwarded to the executor (see
        :class:`~repro.campaign.executor.ParallelExecutor`).
        """
        # Imported here: repro.campaign builds on this module's result types.
        from repro.campaign.executor import ParallelExecutor
        from repro.campaign.spec import CampaignSpec

        spec = CampaignSpec(
            name="experiment",
            configurations=tuple(configurations),
            benchmarks=tuple(self.benchmarks),
            instructions=self.instructions,
            warmup_fraction=self.warmup_fraction,
        )
        executor = ParallelExecutor(
            jobs=jobs, store=store, progress=progress, trace_cache=self._trace_cache
        )
        return executor.run(spec)
