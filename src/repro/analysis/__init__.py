"""Analysis utilities: locality studies, experiment running and reporting.

This package hosts the code that turns raw simulations into the paper's
figures and tables: the page/line locality analysis behind Fig. 1 and the
motivation of Sec. III, an experiment runner that sweeps configurations over
benchmark suites (Fig. 4a/4b), and small reporting helpers (geometric means,
text tables) shared by the benchmark harness and the examples.
"""

from repro.analysis.locality import (
    LocalityReport,
    PageLocalityAnalyzer,
    RUN_LENGTH_BUCKETS,
)
from repro.analysis.experiments import (
    BenchmarkRun,
    ExperimentRunner,
    ExperimentResults,
)
from repro.analysis.reporting import (
    format_frontier,
    format_table,
    frontier_csv,
    geometric_mean,
    normalize,
)

__all__ = [
    "LocalityReport",
    "PageLocalityAnalyzer",
    "RUN_LENGTH_BUCKETS",
    "BenchmarkRun",
    "ExperimentRunner",
    "ExperimentResults",
    "format_frontier",
    "format_table",
    "frontier_csv",
    "geometric_mean",
    "normalize",
]
