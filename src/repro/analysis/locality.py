"""Page and line locality analysis (Sec. III / Fig. 1).

The motivation for MALEC rests on two measurements over the load stream:

* the fraction of loads that are directly followed by one or more loads to
  the same page (70 % on average), and how that fraction grows when one, two
  or three *intermediate* accesses to a different page are tolerated
  (85 / 90 / 92 %);
* the distribution of same-page run lengths (Fig. 1's stacked bars: runs of
  1, 2, 3–4, 5–8 and >8 consecutive accesses), again as a function of the
  number of tolerated intermediate accesses;
* the equivalent same-*line* measurement (46 % of loads are directly
  followed by a load to the same cache line), which motivates load merging.

:class:`PageLocalityAnalyzer` computes all three over any address sequence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.memory.address import AddressLayout, DEFAULT_LAYOUT

#: Fig. 1 stacked-bar buckets: runs of exactly 1, exactly 2, 3-4, 5-8, >8.
RUN_LENGTH_BUCKETS: Tuple[str, ...] = ("x=1", "x=2", "2<x<=4", "4<x<=8", "8<x")


@dataclass
class LocalityReport:
    """Result of one locality analysis over an address stream."""

    accesses: int
    #: fraction of accesses followed by a same-page access, per allowed
    #: number of intermediate accesses (key = intermediates allowed)
    follow_fraction: Dict[int, float] = field(default_factory=dict)
    #: per intermediates-allowed: fraction of accesses belonging to runs in
    #: each of the :data:`RUN_LENGTH_BUCKETS`
    run_distribution: Dict[int, Dict[str, float]] = field(default_factory=dict)
    #: fraction of accesses directly followed by a same-line access
    same_line_follow: float = 0.0

    def summary(self) -> str:
        """Compact human-readable summary mirroring the Sec. III numbers."""
        parts = [f"accesses={self.accesses}"]
        for intermediates in sorted(self.follow_fraction):
            parts.append(
                f"same-page (<= {intermediates} intermediates): "
                f"{self.follow_fraction[intermediates] * 100:.1f}%"
            )
        parts.append(f"same-line follow: {self.same_line_follow * 100:.1f}%")
        return "\n".join(parts)


class PageLocalityAnalyzer:
    """Computes Fig. 1 style locality statistics over address sequences."""

    def __init__(self, layout: AddressLayout = DEFAULT_LAYOUT) -> None:
        self.layout = layout

    # ------------------------------------------------------------------
    def same_page_follow_fraction(
        self, addresses: Sequence[int], intermediates: int = 0
    ) -> float:
        """Fraction of accesses followed by a same-page access.

        An access counts when at least one of the next ``intermediates + 1``
        accesses touches the same page — i.e. up to ``intermediates`` accesses
        to *different* pages may sit in between, exactly the tolerance MALEC's
        Input Buffer provides by holding unmatched loads for later cycles.
        """
        if intermediates < 0:
            raise ValueError("intermediates cannot be negative")
        if len(addresses) < 2:
            return 0.0
        page_ids = [self.layout.page_id(address) for address in addresses]
        window = intermediates + 1
        matched = 0
        total = 0
        for index in range(len(page_ids) - 1):
            total += 1
            limit = min(len(page_ids), index + 1 + window)
            if page_ids[index] in page_ids[index + 1 : limit]:
                matched += 1
        return matched / total if total else 0.0

    def same_line_follow_fraction(self, addresses: Sequence[int]) -> float:
        """Fraction of accesses directly followed by a same-line access."""
        if len(addresses) < 2:
            return 0.0
        lines = [self.layout.line_number(address) for address in addresses]
        matched = sum(1 for a, b in zip(lines, lines[1:]) if a == b)
        return matched / (len(lines) - 1)

    # ------------------------------------------------------------------
    def run_length_distribution(
        self, addresses: Sequence[int], intermediates: int = 0
    ) -> Dict[str, float]:
        """Fraction of accesses in same-page runs of each Fig. 1 bucket.

        A *run* is a maximal group of accesses to one page in which at most
        ``intermediates`` consecutive accesses to other pages are tolerated
        between members.  Every access belongs to exactly one run of its own
        page; the distribution weights runs by their length (so the values
        sum to 1 and match Fig. 1's "consecutive accesses per page" axis).
        """
        if intermediates < 0:
            raise ValueError("intermediates cannot be negative")
        if not addresses:
            return {bucket: 0.0 for bucket in RUN_LENGTH_BUCKETS}
        page_ids = [self.layout.page_id(address) for address in addresses]

        run_lengths: List[int] = []
        #: open runs: page -> (length, gap since last member)
        open_runs: Dict[int, List[int]] = {}
        for page in page_ids:
            # Age every open run; close the ones whose gap exceeds the budget.
            closed = []
            for other_page, state in open_runs.items():
                if other_page == page:
                    continue
                state[1] += 1
                if state[1] > intermediates:
                    closed.append(other_page)
            for other_page in closed:
                run_lengths.append(open_runs.pop(other_page)[0])
            if page in open_runs:
                open_runs[page][0] += 1
                open_runs[page][1] = 0
            else:
                open_runs[page] = [1, 0]
        run_lengths.extend(state[0] for state in open_runs.values())

        counts = {bucket: 0 for bucket in RUN_LENGTH_BUCKETS}
        for length in run_lengths:
            counts[self._bucket(length)] += length
        total = sum(counts.values())
        return {bucket: counts[bucket] / total for bucket in RUN_LENGTH_BUCKETS}

    @staticmethod
    def _bucket(length: int) -> str:
        """Map a run length to its Fig. 1 bucket."""
        if length <= 1:
            return "x=1"
        if length == 2:
            return "x=2"
        if length <= 4:
            return "2<x<=4"
        if length <= 8:
            return "4<x<=8"
        return "8<x"

    # ------------------------------------------------------------------
    def analyze(
        self, addresses: Sequence[int], intermediates: Sequence[int] = (0, 1, 2, 3, 4, 8)
    ) -> LocalityReport:
        """Full locality report for one address stream."""
        report = LocalityReport(accesses=len(addresses))
        for value in intermediates:
            report.follow_fraction[value] = self.same_page_follow_fraction(addresses, value)
            report.run_distribution[value] = self.run_length_distribution(addresses, value)
        report.same_line_follow = self.same_line_follow_fraction(addresses)
        return report
