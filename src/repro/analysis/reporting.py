"""Small reporting helpers shared by benchmarks, examples and tests.

The paper reports suite-level results as geometric means of per-benchmark
normalized values (Fig. 4's ``geo. mean`` columns); these helpers compute the
means, normalize result dictionaries and render aligned text tables so every
benchmark target can print the same rows the paper plots.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Sequence


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values (0.0 for an empty sequence)."""
    values = list(values)
    if not values:
        return 0.0
    for value in values:
        if value <= 0:
            raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(value) for value in values) / len(values))


def normalize(values: Mapping[str, float], baseline_key: str) -> Dict[str, float]:
    """Divide every value by the value of ``baseline_key``."""
    baseline = values[baseline_key]
    if baseline == 0:
        raise ValueError("baseline value is zero")
    return {key: value / baseline for key, value in values.items()}


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    float_format: str = "{:.3f}",
) -> str:
    """Render a simple aligned text table.

    Floats are formatted with ``float_format``; all other values with
    ``str``.  Used by the benchmark harness to print the same rows/series the
    paper reports.
    """
    rendered: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        cells = []
        for value in row:
            if isinstance(value, float):
                cells.append(float_format.format(value))
            else:
                cells.append(str(value))
        rendered.append(cells)
    widths = [max(len(row[col]) for row in rendered) for col in range(len(headers))]
    lines = []
    for index, row in enumerate(rendered):
        line = "  ".join(cell.ljust(widths[col]) for col, cell in enumerate(row))
        lines.append(line.rstrip())
        if index == 0:
            lines.append("  ".join("-" * widths[col] for col in range(len(headers))))
    return "\n".join(lines)
