"""Small reporting helpers shared by benchmarks, examples and tests.

The paper reports suite-level results as geometric means of per-benchmark
normalized values (Fig. 4's ``geo. mean`` columns); these helpers compute the
means, normalize result dictionaries and render aligned text tables so every
benchmark target can print the same rows the paper plots.
"""

from __future__ import annotations

import csv
import io
import math
from typing import Dict, Iterable, List, Mapping, Optional, Sequence


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values (0.0 for an empty sequence)."""
    values = list(values)
    if not values:
        return 0.0
    for value in values:
        if value <= 0:
            raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(value) for value in values) / len(values))


def normalize(values: Mapping[str, float], baseline_key: str) -> Dict[str, float]:
    """Divide every value by the value of ``baseline_key``."""
    baseline = values[baseline_key]
    if baseline == 0:
        raise ValueError("baseline value is zero")
    return {key: value / baseline for key, value in values.items()}


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    float_format: str = "{:.3f}",
) -> str:
    """Render a simple aligned text table.

    Floats are formatted with ``float_format``; all other values with
    ``str``.  Used by the benchmark harness to print the same rows/series the
    paper reports.
    """
    rendered: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        cells = []
        for value in row:
            if isinstance(value, float):
                cells.append(float_format.format(value))
            else:
                cells.append(str(value))
        rendered.append(cells)
    widths = [max(len(row[col]) for row in rendered) for col in range(len(headers))]
    lines = []
    for index, row in enumerate(rendered):
        line = "  ".join(cell.ljust(widths[col]) for col, cell in enumerate(row))
        lines.append(line.rstrip())
        if index == 0:
            lines.append("  ".join("-" * widths[col] for col in range(len(headers))))
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Design-space frontier reports
# ----------------------------------------------------------------------
def _frontier_rows(candidates, ranks):
    """Shared row shape of the text and CSV frontier reports.

    ``candidates`` are evaluated DSE candidates (duck-typed: ``assignment``
    pairs, ``objective_keys``, ``values``, ``instructions`` and ``name``);
    all candidates of one report share the same dimensions and objectives.
    """
    candidates = list(candidates)
    if not candidates:
        return [], []
    dimension_names = [name for name, _ in candidates[0].assignment]
    objective_keys = list(candidates[0].objective_keys)
    headers = dimension_names + objective_keys + ["instructions"]
    if ranks is not None:
        headers.append("rank")
    rows = []
    for candidate in candidates:
        row = [value for _, value in candidate.assignment]
        row += list(candidate.values)
        row.append(candidate.instructions)
        if ranks is not None:
            row.append(ranks.get(candidate.name, ""))
        rows.append(row)
    return headers, rows


def format_frontier(
    candidates, ranks: Optional[Mapping[str, int]] = None
) -> str:
    """Aligned text table of a (ranked) Pareto frontier.

    One row per candidate: its dimension assignment, its objective values
    and the trace length it was judged at; with ``ranks`` (candidate name
    -> dominance rank) a rank column is appended.  Used by ``repro dse``
    and the examples.
    """
    headers, rows = _frontier_rows(candidates, ranks)
    if not rows:
        return "frontier is empty"
    return format_table(headers, rows, float_format="{:.4f}")


def frontier_csv(
    candidates, ranks: Optional[Mapping[str, int]] = None
) -> str:
    """CSV rendition of :func:`format_frontier` (header + one row per point).

    Floats are written with ``repr``-exact round-tripping (``csv`` uses
    ``str``, which is shortest-exact for Python floats), so a frontier
    artifact can be compared byte-for-byte across runs.
    """
    headers, rows = _frontier_rows(candidates, ranks)
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(headers if headers else ["empty"])
    for row in rows:
        writer.writerow(row)
    return buffer.getvalue()
