"""Command-line front end: ``python -m repro <command>``.

Three sub-commands cover the common workflows without writing any Python:

``compare``
    Run one benchmark through a chosen set of configurations and print
    normalized execution time and energy (the quickstart as a command).

``figure4``
    Sweep the five Fig. 4 configurations over one or more benchmarks and
    print the per-benchmark and geometric-mean normalized results.

``locality``
    Print the Sec. III / Fig. 1 page- and line-locality statistics of one or
    more benchmarks.

Examples::

    python -m repro compare gzip
    python -m repro figure4 gzip djpeg mcf --instructions 4000
    python -m repro locality h263dec swim
    python -m repro list
"""

from __future__ import annotations

import argparse
from typing import List, Optional, Sequence

from repro.analysis.experiments import ExperimentRunner
from repro.analysis.locality import PageLocalityAnalyzer
from repro.analysis.reporting import format_table
from repro.sim.config import SimulationConfig
from repro.sim.simulator import run_configuration
from repro.workloads.suites import ALL_BENCHMARKS, benchmark_profile
from repro.workloads.synthetic import generate_trace

_FIG4_ORDER = ["Base1ldst", "Base2ld1st_1cycleL1", "Base2ld1st", "MALEC", "MALEC_3cycleL1"]


def _add_common_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--instructions",
        type=int,
        default=5000,
        help="dynamic instructions per benchmark trace (default: 5000)",
    )
    parser.add_argument(
        "--warmup",
        type=float,
        default=0.3,
        help="fraction of the trace used to warm caches/TLBs (default: 0.3)",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'MALEC: A Multiple Access Low Energy Cache' (DATE 2013)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    compare = commands.add_parser(
        "compare", help="compare the three interfaces on one benchmark"
    )
    compare.add_argument("benchmark", choices=sorted(ALL_BENCHMARKS))
    _add_common_options(compare)

    figure4 = commands.add_parser(
        "figure4", help="run the five Fig. 4 configurations over benchmarks"
    )
    figure4.add_argument("benchmarks", nargs="+", choices=sorted(ALL_BENCHMARKS))
    _add_common_options(figure4)

    locality = commands.add_parser(
        "locality", help="print Sec. III / Fig. 1 locality statistics"
    )
    locality.add_argument("benchmarks", nargs="+", choices=sorted(ALL_BENCHMARKS))
    locality.add_argument("--instructions", type=int, default=5000)

    commands.add_parser("list", help="list the available benchmark profiles")
    return parser


# ----------------------------------------------------------------------
# Sub-command implementations
# ----------------------------------------------------------------------
def _cmd_list() -> int:
    rows = []
    for name in ALL_BENCHMARKS:
        profile = benchmark_profile(name)
        rows.append([name, profile.suite, profile.memory_fraction, len(profile.streams)])
    print(format_table(["benchmark", "suite", "mem fraction", "streams"], rows))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    trace = generate_trace(benchmark_profile(args.benchmark), instructions=args.instructions)
    configurations = [
        SimulationConfig.base_1ldst(),
        SimulationConfig.base_2ld1st(),
        SimulationConfig.malec(),
    ]
    baseline = None
    rows = []
    for config in configurations:
        result = run_configuration(config, trace, warmup_fraction=args.warmup)
        if baseline is None:
            baseline = result
        rows.append(
            [
                config.name,
                result.cycles,
                result.cycles / baseline.cycles,
                result.energy.total_pj / baseline.energy.total_pj,
                result.way_coverage,
                result.merged_load_fraction,
            ]
        )
    print(f"benchmark: {args.benchmark} ({args.instructions} instructions)")
    print(
        format_table(
            ["configuration", "cycles", "norm. time", "norm. energy", "coverage", "merged"],
            rows,
        )
    )
    return 0


def _cmd_figure4(args: argparse.Namespace) -> int:
    runner = ExperimentRunner(
        instructions=args.instructions,
        benchmarks=args.benchmarks,
        warmup_fraction=args.warmup,
    )
    results = runner.run(SimulationConfig.figure4_suite())
    rows = []
    for run in results.runs:
        cycles = run.normalized_cycles("Base1ldst")
        energy = run.normalized_energy("Base1ldst")
        rows.append(
            [run.benchmark]
            + [cycles[name] for name in _FIG4_ORDER]
            + [energy["MALEC"]["total"]]
        )
    geomean = results.geomean_normalized_cycles("Base1ldst")
    rows.append(["geo. mean"] + [geomean[name] for name in _FIG4_ORDER] + [
        results.geomean_normalized_energy("Base1ldst")["MALEC"]
    ])
    print(
        format_table(
            ["benchmark"] + _FIG4_ORDER + ["MALEC energy"],
            rows,
        )
    )
    return 0


def _cmd_locality(args: argparse.Namespace) -> int:
    analyzer = PageLocalityAnalyzer()
    rows = []
    for name in args.benchmarks:
        trace = generate_trace(benchmark_profile(name), instructions=args.instructions)
        loads = trace.load_addresses()
        rows.append(
            [name]
            + [analyzer.same_page_follow_fraction(loads, n) for n in (0, 1, 2, 3)]
            + [analyzer.same_line_follow_fraction(loads)]
        )
    print(
        format_table(
            ["benchmark", "<=0 interm.", "<=1", "<=2", "<=3", "same line"], rows
        )
    )
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point used by ``python -m repro`` and the console script."""
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "figure4":
        return _cmd_figure4(args)
    if args.command == "locality":
        return _cmd_locality(args)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
