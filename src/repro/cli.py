"""Command-line front end: ``python -m repro <command>``.

The sub-commands cover the common workflows without writing any Python (see
the top-level ``README.md`` for a full walk-through and the campaign
directory layout):

``compare``
    Run one benchmark through a chosen set of configurations and print
    normalized execution time and energy (the quickstart as a command).

``figure4``
    Sweep the five Fig. 4 configurations over one or more benchmarks and
    print the per-benchmark and geometric-mean normalized results
    (``--jobs N`` fans the sweep out over worker processes).

``sweep``
    Run a named campaign preset (``fig4``, ``fig4-mini``, ``sec6d``) through
    the parallel campaign engine.  With ``--out DIR`` every (configuration,
    benchmark) cell is persisted as one JSON record and a repeated
    invocation resumes — already-completed cells are skipped.

``dse``
    Explore a named configuration search space (``malec-mini``,
    ``malec-sensitivity``) with a pluggable strategy (``grid``, ``random``,
    ``halving``) and print the Pareto frontier over the selected objectives
    (normalized runtime, L1-subsystem energy, energy-delay product).  All
    evaluations flow through the campaign store (``--out DIR``), so an
    interrupted exploration resumes and strategies dedupe each other's
    cells; ``--csv FILE`` (default ``<out>/frontier.csv``) writes the
    frontier artifact.

``ingest``
    Work with externally captured memory traces: ``convert`` parses a
    valgrind-lackey / Dinero ``.din`` / CSV / JSONL file (gzip-aware) into
    the compact binary ``.rtrc`` format, with optional warm-up skip, stride
    subsampling and region-of-interest windowing; ``inspect`` prints a
    trace's statistics and content fingerprint; ``interleave`` round-robins
    several traces into one multiprogrammed workload.  ``figure4``,
    ``sweep`` and ``dse`` then accept the resulting files directly through
    ``--trace-file`` (repeatable), running ingested traces alongside — or
    instead of — the synthetic benchmarks.

``locality``
    Print the Sec. III / Fig. 1 page- and line-locality statistics of one or
    more benchmarks.

``bench``
    Time the simulator's hot paths (trace generation, one configuration run,
    the fig4-mini sweeps) and write a ``BENCH_<rev>.json`` record under
    ``benchmarks/perf`` at the repository root.  ``--compare OLD.json
    NEW.json [--threshold PCT]`` compares two records without running
    anything and exits non-zero on regression beyond the threshold (the CI
    bench-regression gate).  ``--history`` tabulates every committed record
    as a per-scenario trajectory (host mismatches flagged) without running
    anything.

``obs``
    Query the telemetry journals a campaign store accumulates
    (``telemetry.jsonl``, written by ``--metrics``/``--journal`` sweeps):
    ``history`` tabulates every recorded run (when, host, cells, cells/sec,
    kernel fallbacks), ``compare RUN_A RUN_B`` prints per-cell wall-time
    deltas and flags regressions beyond ``--threshold``, ``cells --slowest
    N`` lists the slowest cells of one run, and ``export`` renders a run's
    merged metrics as OpenMetrics/Prometheus text for external scrapers.
    Runs are addressed by id prefix or the shorthands ``last``/``prev``.

``report``
    Run benchmarks with the observation collector attached and print the
    per-run cycle-attribution breakdown (categories partition the run and
    sum to total cycles) plus the per-structure energy split.
    ``--timeline FILE`` additionally exports a sampled simulator timeline
    (ROB / load-queue / store-buffer / merge-buffer occupancy over cycles)
    as Chrome trace-event JSON for Perfetto / ``chrome://tracing``.

``profile``
    Profile one bench scenario under cProfile: a cumulative-time top-N
    table on stdout, plus ``--collapsed FILE`` writing flamegraph-ready
    collapsed stacks.

Global observability flags (before the sub-command): ``--verbose`` /
``--quiet`` / ``--log-json`` configure the library's stderr logging,
``--metrics`` switches the metrics registry on and dumps its snapshot to
stderr on exit; ``sweep``/``dse`` accept ``--trace-out FILE`` to export
wall-clock campaign spans (per-worker cell execution, DSE rung boundaries)
as Chrome trace-event JSON.  Interactive terminals get a self-updating
progress line on ``sweep``/``dse``/``figure4``.

Examples::

    python -m repro compare gzip
    python -m repro figure4 gzip djpeg mcf --instructions 4000
    python -m repro sweep fig4 --out results/fig4
    python -m repro sweep sec6d --jobs 2 --out results/sec6d
    python -m repro dse malec-mini --strategy random --budget 6 --instructions 500
    python -m repro dse malec-sensitivity --strategy halving --budget 24 --out results/dse
    python -m repro ingest convert app.lackey.gz -o app.rtrc --skip 1000
    python -m repro ingest inspect app.rtrc
    python -m repro ingest interleave app.rtrc db.rtrc -o mix.rtrc
    python -m repro sweep fig4-mini --trace-file app.rtrc --out results/app
    python -m repro locality h263dec swim
    python -m repro bench --quick
    python -m repro bench --compare BENCH_old.json BENCH_new.json --threshold 20
    python -m repro report gzip --config MALEC --timeline timeline.json
    python -m repro --metrics sweep fig4-mini --trace-out sweep-trace.json
    python -m repro --metrics sweep fig4-mini --jobs 4 --out results/fig4-mini
    python -m repro obs history results/fig4-mini
    python -m repro obs compare results/fig4-mini prev last --threshold 25
    python -m repro obs cells results/fig4-mini --slowest 5
    python -m repro obs export results/fig4-mini
    python -m repro bench --history
    python -m repro profile fig4_mini_sweep_serial --collapsed stacks.txt
    python -m repro list
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.experiments import ExperimentRunner
from repro.analysis.locality import PageLocalityAnalyzer
from repro.analysis.reporting import format_frontier, format_table, frontier_csv
from repro.campaign.aggregate import summarize_results, summarize_store
from repro.campaign.executor import ParallelExecutor
from repro.campaign.spec import PRESET_NAMES, campaign_preset
from repro.campaign.store import ResultStore, StoreURLError, open_store
from repro.dse.engine import run_dse
from repro.dse.objectives import (
    DEFAULT_OBJECTIVES,
    OBJECTIVE_NAMES,
    resolve_objectives,
)
from repro.dse.space import SPACE_PRESET_NAMES, space_preset
from repro.dse.strategies import STRATEGY_NAMES
from repro.obs import metrics as obs_metrics
from repro.obs.attribution import attribute_run, format_attribution
from repro.obs.collector import RunCollector
from repro.obs.logs import configure as configure_logging
from repro.obs.logs import run_context
from repro.obs.progress import ProgressReporter
from repro.obs.traceevent import TraceEventLog
from repro.sim.config import SimulationConfig
from repro.sim.simulator import run_configuration
from repro.workloads.binfmt import TraceFormatError, dump_rtrc
from repro.workloads.ingest import (
    TRACE_FORMATS,
    TraceParseError,
    interleave,
    load_trace,
    skip_warmup,
    subsample,
    window,
)
from repro.workloads.registry import (
    register_trace,
    registered_trace,
    validate_workload,
)
from repro.workloads.suites import EXTENDED_BENCHMARKS, benchmark_profile
from repro.workloads.synthetic import generate_trace

_FIG4_ORDER = ["Base1ldst", "Base2ld1st_1cycleL1", "Base2ld1st", "MALEC", "MALEC_3cycleL1"]


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {value}")
    return value


def _warmup_fraction(text: str) -> float:
    value = float(text)
    if not 0.0 <= value < 1.0:
        raise argparse.ArgumentTypeError(f"must lie in [0, 1), got {value}")
    return value


#: help text shared by every --store flag
_STORE_HELP = (
    "store URL: json:DIR (one JSON record per cell; a bare path means the "
    "same), or sqlite:FILE (single WAL database, safe for concurrent "
    "sweeps)"
)


def _open_store_flags(store: Optional[str], out: Optional[str]) -> Optional[ResultStore]:
    """Resolve the ``--store URL`` / deprecated ``--out DIR`` pair.

    ``--out DIR`` keeps its historical meaning (a JSON campaign directory);
    giving both flags, or an unsupported URL scheme, raises
    :class:`StoreURLError` — reported as a usage error (exit 2) by the
    callers.
    """
    if store is not None and out is not None:
        raise StoreURLError("pass --store URL or the deprecated --out DIR, not both")
    return open_store(store if store is not None else out)


def _add_trace_file_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace-file",
        action="append",
        default=None,
        dest="trace_files",
        metavar="FILE",
        help="run this ingested trace (.rtrc/.jsonl/lackey/.din/.csv, "
        "gzip-aware; repeatable).  Added to the selected benchmarks, or "
        "run alone when no benchmarks are selected",
    )


def _add_transform_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--window",
        default=None,
        metavar="START:STOP",
        help="keep only the region of interest [START, STOP) (applied first)",
    )
    parser.add_argument(
        "--skip",
        type=int,
        default=0,
        metavar="N",
        help="drop the first N instructions (external warm-up; applied second)",
    )
    parser.add_argument(
        "--stride",
        type=_positive_int,
        default=1,
        metavar="K",
        help="keep every K-th instruction (stride subsampling; applied last)",
    )


def _parse_window(text: str):
    """``START:STOP`` -> (start, stop); STOP may be empty (end of trace).

    Raises ``ValueError`` (a usage error: callers print the message and
    exit 2, never a traceback).
    """
    start_text, _, stop_text = text.partition(":")
    try:
        start = int(start_text) if start_text else 0
        stop = int(stop_text) if stop_text else None
    except ValueError:
        raise ValueError(
            f"--window expects START:STOP integers, got {text!r}"
        ) from None
    return start, stop


def _apply_transforms(trace, args):
    """Apply the shared convert transforms in documented order."""
    if args.window:
        start, stop = _parse_window(args.window)
        trace = window(trace, start, stop)
    if args.skip:
        trace = skip_warmup(trace, args.skip)
    if args.stride > 1:
        trace = subsample(trace, args.stride)
    return trace


def _register_trace_files(paths) -> List[str]:
    """Load and register every ``--trace-file``; returns the workload names."""
    names: List[str] = []
    for path in paths:
        handle = register_trace(load_trace(path))
        names.append(handle.name)
        print(f"ingested {path} as {handle.name} ({handle.length} instr)", file=sys.stderr)
    return names


def _merge_workloads(benchmarks, trace_files) -> Optional[List[str]]:
    """Combine ``--benchmarks``/positional names with ``--trace-file`` traces.

    Returns ``None`` to keep the preset's own grid (nothing was selected);
    otherwise the explicit workload list — ingested traces replace the grid
    when they are the only selection.
    """
    trace_names = _register_trace_files(trace_files or [])
    if benchmarks is None and not trace_names:
        return None
    return list(benchmarks or []) + trace_names


def _add_common_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--instructions",
        type=_positive_int,
        default=5000,
        help="dynamic instructions per benchmark trace (default: 5000)",
    )
    parser.add_argument(
        "--warmup",
        type=_warmup_fraction,
        default=0.3,
        help="fraction of the trace used to warm caches/TLBs (default: 0.3)",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'MALEC: A Multiple Access Low Energy Cache' (DATE 2013)",
    )
    # Global observability flags: placed before the sub-command.  The global
    # --quiet uses its own dest so it never collides with the sweep/dse
    # progress --quiet (which stays a sub-command flag).
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="log DEBUG and up from the library (stderr)",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        dest="log_quiet",
        help="log only errors from the library",
    )
    parser.add_argument(
        "--log-json",
        action="store_true",
        help="emit library logs as one JSON object per line",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="collect operational metrics and dump the registry snapshot "
        "as JSON to stderr on exit (off by default; never affects results)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    compare = commands.add_parser(
        "compare", help="compare the three interfaces on one benchmark"
    )
    compare.add_argument("benchmark", choices=sorted(EXTENDED_BENCHMARKS))
    _add_common_options(compare)

    figure4 = commands.add_parser(
        "figure4", help="run the five Fig. 4 configurations over benchmarks"
    )
    # No argparse choices= here: nargs="*" + choices rejects an empty list on
    # Python < 3.12, and trace-only invocations pass no benchmarks at all.
    # Names are validated in _cmd_figure4 (exit 2, like unknown presets).
    figure4.add_argument(
        "benchmarks",
        nargs="*",
        metavar="benchmark",
        help=f"benchmark profiles from `repro list` (e.g. {', '.join(sorted(EXTENDED_BENCHMARKS)[:3])}, ...)",
    )
    _add_common_options(figure4)
    figure4.add_argument(
        "--jobs",
        type=_positive_int,
        default=None,
        help="worker processes for the sweep (default: one per CPU core)",
    )
    _add_trace_file_option(figure4)

    sweep = commands.add_parser(
        "sweep", help="run a campaign preset through the parallel sweep engine"
    )
    # Unknown preset names are resolved (and rejected with the list of valid
    # presets) in _cmd_sweep, so they exit(2) without a traceback.
    sweep.add_argument(
        "preset",
        metavar="preset",
        help=f"campaign preset: one of {', '.join(PRESET_NAMES)}",
    )
    sweep.add_argument(
        "--benchmarks",
        nargs="+",
        choices=sorted(EXTENDED_BENCHMARKS),
        default=None,
        help="restrict the preset to these benchmarks (default: preset's grid)",
    )
    sweep.add_argument(
        "--instructions",
        type=_positive_int,
        default=None,
        help="override the preset's per-benchmark trace length",
    )
    sweep.add_argument(
        "--warmup",
        type=_warmup_fraction,
        default=None,
        help="override the preset's warm-up fraction",
    )
    sweep.add_argument(
        "--jobs",
        type=_positive_int,
        default=None,
        help="worker processes for the sweep (default: one per CPU core)",
    )
    sweep.add_argument(
        "--store",
        default=None,
        metavar="URL",
        help=f"{_STORE_HELP}; completed cells persist and re-runs resume "
        "(default: in-memory only)",
    )
    sweep.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="deprecated alias for --store json:DIR",
    )
    sweep.add_argument(
        "--quiet", action="store_true", help="suppress per-cell progress output"
    )
    sweep.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help="export per-worker cell-execution spans as Chrome trace-event "
        "JSON (open in Perfetto / chrome://tracing)",
    )
    sweep.add_argument(
        "--journal",
        default=None,
        metavar="FILE",
        help="append per-cell telemetry records to FILE regardless of "
        "--metrics (default: <out>/telemetry.jsonl, written automatically "
        "when both --out and --metrics are given)",
    )
    _add_trace_file_option(sweep)

    dse = commands.add_parser(
        "dse",
        help="explore a configuration search space; print the Pareto frontier",
    )
    # Unknown space names are resolved (and rejected with the list of valid
    # presets) in _cmd_dse, so they exit(2) without a traceback.
    dse.add_argument(
        "space",
        metavar="space",
        help=f"search-space preset: one of {', '.join(SPACE_PRESET_NAMES)}",
    )
    dse.add_argument(
        "--strategy",
        choices=list(STRATEGY_NAMES),
        default="grid",
        help="search strategy (default: grid)",
    )
    dse.add_argument(
        "--budget",
        type=_positive_int,
        default=None,
        help="maximum number of candidate configurations (default: the "
        "strategy's own default; grid sweeps the whole space)",
    )
    dse.add_argument(
        "--objectives",
        default=",".join(DEFAULT_OBJECTIVES),
        metavar="KEYS",
        help="comma-separated minimized objectives, from: "
        f"{', '.join(OBJECTIVE_NAMES)} (default: %(default)s)",
    )
    dse.add_argument(
        "--benchmarks",
        nargs="+",
        choices=sorted(EXTENDED_BENCHMARKS),
        default=None,
        help="restrict the space to these benchmarks (default: space's subset)",
    )
    dse.add_argument(
        "--instructions",
        type=_positive_int,
        default=None,
        help="override the space's full-length trace size",
    )
    dse.add_argument(
        "--warmup",
        type=_warmup_fraction,
        default=None,
        help="override the space's warm-up fraction",
    )
    dse.add_argument(
        "--jobs",
        type=_positive_int,
        default=None,
        help="worker processes for the evaluations (default: one per CPU core)",
    )
    dse.add_argument(
        "--seed",
        type=int,
        default=0,
        help="sampling seed for random/halving strategies (default: 0)",
    )
    dse.add_argument(
        "--store",
        default=None,
        metavar="URL",
        help=f"{_STORE_HELP}; every evaluated cell persists, interrupted "
        "explorations resume and strategies dedupe each other's cells "
        "(default: in-memory only)",
    )
    dse.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="deprecated alias for --store json:DIR",
    )
    dse.add_argument(
        "--csv",
        default=None,
        metavar="FILE",
        help="write the frontier as CSV to FILE "
        "(default: <store dir>/frontier.csv when --store/--out is given)",
    )
    dse.add_argument(
        "--quiet", action="store_true", help="suppress per-cell progress output"
    )
    dse.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help="export batch/rung boundaries and per-worker cell spans as "
        "Chrome trace-event JSON (open in Perfetto / chrome://tracing)",
    )
    _add_trace_file_option(dse)

    ingest = commands.add_parser(
        "ingest", help="convert, inspect and combine externally captured traces"
    )
    ingest_commands = ingest.add_subparsers(dest="ingest_command", required=True)

    convert = ingest_commands.add_parser(
        "convert", help="parse an external trace and write it as .rtrc (or JSONL)"
    )
    convert.add_argument("input", help="trace file to read (.gz transparently)")
    convert.add_argument(
        "-o",
        "--output",
        default=None,
        metavar="FILE",
        help="output path; .jsonl/.jsonl.gz writes JSONL, anything else the "
        "binary .rtrc format (default: input path with an .rtrc suffix)",
    )
    convert.add_argument(
        "--format",
        choices=("auto",) + TRACE_FORMATS,
        default="auto",
        help="input format (default: sniffed from the file extension)",
    )
    convert.add_argument(
        "--name", default=None, help="trace name embedded in the output"
    )
    _add_transform_options(convert)

    inspect = ingest_commands.add_parser(
        "inspect", help="print a trace's statistics and content fingerprint"
    )
    inspect.add_argument("inputs", nargs="+", metavar="FILE")
    inspect.add_argument(
        "--format",
        choices=("auto",) + TRACE_FORMATS,
        default="auto",
        help="input format (default: sniffed from each file extension)",
    )

    interleave_cmd = ingest_commands.add_parser(
        "interleave",
        help="round-robin several traces into one multiprogrammed workload",
    )
    interleave_cmd.add_argument("inputs", nargs="+", metavar="FILE")
    interleave_cmd.add_argument(
        "-o", "--output", required=True, metavar="FILE", help="output trace path"
    )
    interleave_cmd.add_argument(
        "--granularity",
        type=_positive_int,
        default=64,
        help="instructions taken from each trace per round (default: 64)",
    )
    interleave_cmd.add_argument(
        "--name", default=None, help="name of the merged trace (default: joined names)"
    )

    locality = commands.add_parser(
        "locality", help="print Sec. III / Fig. 1 locality statistics"
    )
    locality.add_argument("benchmarks", nargs="+", choices=sorted(EXTENDED_BENCHMARKS))
    locality.add_argument("--instructions", type=int, default=5000)

    bench = commands.add_parser(
        "bench", help="time the simulator hot paths; write BENCH_<rev>.json"
    )
    bench.add_argument(
        "--instructions",
        type=_positive_int,
        default=4000,
        help="trace length for trace-generation / single-run scenarios "
        "(default: 4000)",
    )
    bench.add_argument(
        "--sweep-instructions",
        type=_positive_int,
        default=2000,
        help="trace length for the fig4-mini sweep scenario (default: 2000)",
    )
    bench.add_argument(
        "--repeats",
        type=_positive_int,
        default=3,
        help="repeats per scenario; the best (minimum) time is reported "
        "(default: 3)",
    )
    bench.add_argument(
        "--quick",
        action="store_true",
        help="tiny workloads, one repeat: a CI smoke run, not a measurement",
    )
    bench.add_argument(
        "--label",
        default=None,
        help="label for the output file (default: short git revision)",
    )
    bench.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="directory for BENCH_<label>.json (default: benchmarks/perf at "
        "the repository root, wherever the command is run from)",
    )
    bench.add_argument(
        "--output",
        default=None,
        metavar="FILE",
        help="exact output file path (overrides --out and the BENCH_<label> "
        "naming)",
    )
    bench.add_argument(
        "--compare",
        nargs="+",
        default=None,
        metavar="FILE",
        help="with one file: run the benchmarks, then print a speedup table "
        "against it; with two files (OLD NEW): compare the two reports "
        "without running anything and exit non-zero on regression beyond "
        "--threshold",
    )
    bench.add_argument(
        "--threshold",
        type=float,
        default=None,
        metavar="PCT",
        help="fail (exit 1) when a scenario is more than PCT percent slower "
        "than the comparison baseline (default for two-file --compare: 20)",
    )
    bench.add_argument(
        "--no-write", action="store_true", help="print timings only, write nothing"
    )
    bench.add_argument(
        "--scenarios",
        nargs="+",
        default=None,
        metavar="NAME",
        help="restrict the run and any --compare gate to these scenarios "
        "(default: all)",
    )
    bench.add_argument(
        "--history",
        action="store_true",
        help="tabulate every BENCH_*.json under --out (default: "
        "benchmarks/perf) as a per-scenario trajectory, flagging records "
        "taken on a different host; runs nothing",
    )

    obs = commands.add_parser(
        "obs", help="query the telemetry journals of a campaign store"
    )
    obs_commands = obs.add_subparsers(dest="obs_command", required=True)

    def _obs_store_argument(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "store",
            nargs="?",
            default=None,
            metavar="STORE",
            help="campaign store: a store URL (json:DIR / sqlite:FILE), a "
            "store directory, or a telemetry.jsonl path",
        )
        sub.add_argument(
            "--store",
            dest="store_url",
            default=None,
            metavar="URL",
            help=_STORE_HELP,
        )

    obs_history = obs_commands.add_parser(
        "history", help="tabulate every run recorded in the journal"
    )
    _obs_store_argument(obs_history)

    obs_compare = obs_commands.add_parser(
        "compare", help="per-cell wall-time deltas between two runs"
    )
    _obs_store_argument(obs_compare)
    obs_compare.add_argument(
        "run_a", metavar="RUN_A", help="baseline run: id prefix, 'last' or 'prev'"
    )
    obs_compare.add_argument(
        "run_b", metavar="RUN_B", help="candidate run: id prefix, 'last' or 'prev'"
    )
    obs_compare.add_argument(
        "--threshold",
        type=float,
        default=20.0,
        metavar="PCT",
        help="flag cells more than PCT percent slower (default: 20)",
    )
    obs_compare.add_argument(
        "--check",
        action="store_true",
        help="exit 1 when any cell regresses beyond --threshold",
    )

    obs_cells = obs_commands.add_parser(
        "cells", help="list the slowest computed cells of one run"
    )
    _obs_store_argument(obs_cells)
    obs_cells.add_argument(
        "--run",
        default="last",
        metavar="RUN",
        help="run to inspect: id prefix, 'last' or 'prev' (default: last)",
    )
    obs_cells.add_argument(
        "--slowest",
        type=_positive_int,
        default=10,
        metavar="N",
        help="number of cells to list (default: 10)",
    )

    obs_export = obs_commands.add_parser(
        "export",
        help="render a run's merged metrics as OpenMetrics/Prometheus text",
    )
    _obs_store_argument(obs_export)
    obs_export.add_argument(
        "--run",
        default="last",
        metavar="RUN",
        help="run to export: id prefix, 'last' or 'prev' (default: last)",
    )

    serve = commands.add_parser(
        "serve",
        help="serve sweeps over HTTP from a shared store (submit, poll, "
        "fetch cells and frontiers)",
    )
    serve.add_argument(
        "--store",
        required=True,
        metavar="URL",
        help=f"{_STORE_HELP}; shared by every submitted sweep",
    )
    serve.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind address (default: %(default)s)",
    )
    serve.add_argument(
        "--port",
        type=int,
        default=8350,
        help="listen port; 0 picks a free one (default: %(default)s)",
    )
    serve.add_argument(
        "--jobs",
        type=_positive_int,
        default=None,
        help="default worker processes per submitted sweep (a submission "
        "may override with its own \"jobs\" field)",
    )

    report = commands.add_parser(
        "report",
        help="run benchmarks with the collector attached; print cycle and "
        "energy attribution",
    )
    report.add_argument(
        "benchmarks",
        nargs="*",
        metavar="benchmark",
        help="benchmark profiles to attribute (default: the fig4-mini trio)",
    )
    report.add_argument(
        "--config",
        action="append",
        default=None,
        dest="configs",
        metavar="NAME",
        help=f"configuration(s) to run, from: {', '.join(_FIG4_ORDER)} "
        "(repeatable; default: all five)",
    )
    _add_common_options(report)
    report.add_argument(
        "--timeline",
        default=None,
        metavar="FILE",
        help="export the sampled simulator timeline (structure occupancy "
        "over cycles) as Chrome trace-event JSON",
    )
    report.add_argument(
        "--sample-every",
        type=_positive_int,
        default=100,
        metavar="N",
        help="timeline sampling period in cycles (default: 100)",
    )
    report.add_argument(
        "--json",
        default=None,
        dest="json_out",
        metavar="FILE",
        help="also write every attribution as a JSON array to FILE",
    )
    report.add_argument(
        "--kernel-source",
        default=None,
        dest="kernel_source",
        metavar="NAME",
        help="print the generated specialized-kernel source for the named "
        f"configuration ({', '.join(_FIG4_ORDER)}) and exit",
    )
    _add_trace_file_option(report)

    profile = commands.add_parser(
        "profile",
        help="profile a bench scenario under cProfile (flamegraph-ready "
        "collapsed stacks with --collapsed)",
    )
    profile.add_argument(
        "scenario",
        metavar="scenario",
        help="bench scenario to profile (see `repro profile --list`)",
        nargs="?",
        default=None,
    )
    profile.add_argument(
        "--list", action="store_true", dest="list_scenarios",
        help="list the available scenarios and exit",
    )
    profile.add_argument(
        "--instructions",
        type=_positive_int,
        default=4000,
        help="trace length for the profiled workload (default: 4000)",
    )
    profile.add_argument(
        "--top",
        type=_positive_int,
        default=25,
        help="rows in the cumulative-time table (default: 25)",
    )
    profile.add_argument(
        "--collapsed",
        default=None,
        metavar="FILE",
        help="write collapsed stacks (flamegraph.pl / speedscope input)",
    )

    commands.add_parser("list", help="list the available benchmark profiles")
    return parser


# ----------------------------------------------------------------------
# Sub-command implementations
# ----------------------------------------------------------------------
def _cmd_list() -> int:
    rows = []
    for name in EXTENDED_BENCHMARKS:
        profile = benchmark_profile(name)
        rows.append([name, profile.suite, profile.memory_fraction, len(profile.streams)])
    print(format_table(["benchmark", "suite", "mem fraction", "streams"], rows))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    trace = generate_trace(benchmark_profile(args.benchmark), instructions=args.instructions)
    configurations = [
        SimulationConfig.base_1ldst(),
        SimulationConfig.base_2ld1st(),
        SimulationConfig.malec(),
    ]
    baseline = None
    rows = []
    for config in configurations:
        result = run_configuration(config, trace, warmup_fraction=args.warmup)
        if baseline is None:
            baseline = result
        rows.append(
            [
                config.name,
                result.cycles,
                result.cycles / baseline.cycles,
                result.energy.total_pj / baseline.energy.total_pj,
                result.way_coverage,
                result.merged_load_fraction,
            ]
        )
    print(f"benchmark: {args.benchmark} ({args.instructions} instructions)")
    print(
        format_table(
            ["configuration", "cycles", "norm. time", "norm. energy", "coverage", "merged"],
            rows,
        )
    )
    return 0


def _cell_progress(
    quiet: bool, fallback_lines: bool = True
) -> Optional[ProgressReporter]:
    """Per-cell progress reporter shared by ``sweep``/``dse``/``figure4``.

    Interactive terminals get one self-updating line (done/total, cells/s,
    ETA); non-interactive streams fall back to a plain line per cell when
    ``fallback_lines`` (the historical behaviour) or stay silent otherwise.
    """
    if quiet:
        return None
    return ProgressReporter(fallback_lines=fallback_lines)


def _write_trace_log(trace_log: Optional[TraceEventLog], path: Optional[str]) -> None:
    """Persist a trace-event log collected behind ``--trace-out``."""
    if trace_log is None or path is None:
        return
    trace_log.write(Path(path))
    print(f"trace events written to {path} ({len(trace_log)} events)")


def _cmd_sweep(args: argparse.Namespace) -> int:
    try:
        preset = campaign_preset(args.preset)
    except KeyError as error:
        # The raised message already names the valid presets; exit like any
        # other usage error (2) instead of surfacing a traceback.
        print(f"repro: {error.args[0]}", file=sys.stderr)
        return 2
    try:
        workloads = _merge_workloads(args.benchmarks, args.trace_files)
    except (TraceParseError, TraceFormatError, OSError, ValueError) as error:
        print(f"repro: {error}", file=sys.stderr)
        return 2
    spec = preset.with_overrides(
        benchmarks=workloads,
        instructions=args.instructions,
        warmup_fraction=args.warmup,
    )
    try:
        store = _open_store_flags(args.store, args.out)
    except StoreURLError as error:
        print(f"repro: {error}", file=sys.stderr)
        return 2
    trace_log = TraceEventLog() if args.trace_out else None
    progress = _cell_progress(args.quiet)

    executor = ParallelExecutor(
        jobs=args.jobs,
        store=store,
        progress=progress,
        trace_log=trace_log,
        journal=args.journal,
    )
    results = executor.run(spec)
    if progress is not None:
        progress.finish()
    _write_trace_log(trace_log, args.trace_out)
    ran, skipped = len(executor.completed_cells), len(executor.skipped_cells)
    print(
        f"campaign '{spec.name}': {ran} cell(s) simulated, {skipped} resumed "
        f"from store ({'serial' if not executor.used_pool else f'{executor.jobs} jobs'})"
    )
    if executor.active_journal is not None:
        print(
            f"telemetry journal: {executor.active_journal.path} "
            f"(run {executor.active_journal.run_id})"
        )
    baseline = spec.configuration_names()[0]
    if store is not None:
        print(f"results: {store.url} ({len(store)} records)")
        print()
        # Summarize the whole directory (it may hold more benchmarks than
        # this invocation swept), filtered to this sweep's grid parameters
        # so records from earlier sweeps at other settings don't collide.
        print(
            summarize_store(
                store,
                baseline=baseline,
                instructions=spec.instructions,
                seed=spec.seed,
                warmup_fraction=spec.warmup_fraction,
            )
        )
    else:
        print()
        print(summarize_results(results, baseline=baseline))
    return 0


def _cmd_dse(args: argparse.Namespace) -> int:
    try:
        space = space_preset(args.space)
    except KeyError as error:
        print(f"repro: {error.args[0]}", file=sys.stderr)
        return 2
    try:
        workloads = _merge_workloads(args.benchmarks, args.trace_files)
    except (TraceParseError, TraceFormatError, OSError, ValueError) as error:
        print(f"repro: {error}", file=sys.stderr)
        return 2
    space = space.with_overrides(
        benchmarks=workloads,
        instructions=args.instructions,
        warmup_fraction=args.warmup,
    )
    objectives = tuple(key.strip() for key in args.objectives.split(",") if key.strip())
    try:
        # Usage errors only: validate the objective keys up front so that a
        # ValueError escaping run_dse below is a genuine engine failure with
        # a traceback, not a silent exit(2).
        resolve_objectives(objectives)
    except ValueError as error:
        print(f"repro: {error}", file=sys.stderr)
        return 2
    try:
        store = _open_store_flags(args.store, args.out)
    except StoreURLError as error:
        print(f"repro: {error}", file=sys.stderr)
        return 2
    trace_log = TraceEventLog() if args.trace_out else None
    progress = _cell_progress(args.quiet)
    result = run_dse(
        space,
        strategy=args.strategy,
        objectives=objectives,
        budget=args.budget,
        jobs=args.jobs,
        store=store,
        seed=args.seed,
        progress=progress,
        trace_log=trace_log,
    )
    if progress is not None:
        progress.finish()
    _write_trace_log(trace_log, args.trace_out)

    print(
        f"space '{space.name}': {space.size} points, strategy {result.strategy}, "
        f"{len(result.pool)} candidate(s) at full length "
        f"({len(result.evaluations)} evaluation(s) total)"
    )
    print(
        f"cells: {result.cells_simulated} simulated, {result.cells_resumed} "
        f"resumed from store"
    )
    if store is not None:
        print(f"results: {store.url} ({len(store)} records)")
    print()
    print(f"Pareto frontier ({len(result.frontier)} point(s), all objectives minimized):")
    print(format_frontier(result.frontier, result.ranks))

    csv_path = args.csv
    if csv_path is None and store is not None:
        csv_path = str(store.root / "frontier.csv")
    if csv_path is not None:
        payload = frontier_csv(result.frontier, result.ranks)
        Path(csv_path).parent.mkdir(parents=True, exist_ok=True)
        Path(csv_path).write_text(payload)
        print(f"\nfrontier written to {csv_path}")
    return 0


def _cmd_figure4(args: argparse.Namespace) -> int:
    try:
        workloads = _merge_workloads(args.benchmarks or None, args.trace_files)
    except (TraceParseError, TraceFormatError, OSError, ValueError) as error:
        print(f"repro: {error}", file=sys.stderr)
        return 2
    if not workloads:
        print("repro: figure4 needs benchmark names and/or --trace-file", file=sys.stderr)
        return 2
    try:
        for name in workloads:
            validate_workload(name)
    except KeyError as error:
        print(f"repro: {error.args[0]}", file=sys.stderr)
        return 2
    runner = ExperimentRunner(
        instructions=args.instructions,
        benchmarks=workloads,
        warmup_fraction=args.warmup,
    )
    # Interactive-only progress: non-TTY figure4 output stays exactly the
    # final table, as before (fallback_lines=False).
    progress = _cell_progress(quiet=False, fallback_lines=False)
    results = runner.run(
        SimulationConfig.figure4_suite(), jobs=args.jobs, progress=progress
    )
    progress.finish()
    rows = []
    for run in results.runs:
        cycles = run.normalized_cycles("Base1ldst")
        energy = run.normalized_energy("Base1ldst")
        rows.append(
            [run.benchmark]
            + [cycles[name] for name in _FIG4_ORDER]
            + [energy["MALEC"]["total"]]
        )
    geomean = results.geomean_normalized_cycles("Base1ldst")
    rows.append(["geo. mean"] + [geomean[name] for name in _FIG4_ORDER] + [
        results.geomean_normalized_energy("Base1ldst")["MALEC"]
    ])
    print(
        format_table(
            ["benchmark"] + _FIG4_ORDER + ["MALEC energy"],
            rows,
        )
    )
    return 0


def _default_convert_output(input_path: str) -> Path:
    """``app.lackey.gz`` -> ``app.rtrc`` (next to the input)."""
    name = Path(input_path).name
    if name.endswith(".gz"):
        name = name[: -len(".gz")]
    return Path(input_path).parent / (Path(name).stem + ".rtrc")


def _write_trace(trace, output: Path) -> None:
    """Write ``trace`` in the format implied by ``output``'s extension."""
    text = str(output)
    if text.endswith((".jsonl", ".jsonl.gz")):
        trace.to_jsonl(output)
    else:
        dump_rtrc(trace, output)


def _cmd_ingest(args: argparse.Namespace) -> int:
    try:
        if args.ingest_command == "convert":
            trace = load_trace(args.input, fmt=args.format, name=args.name)
            trace = _apply_transforms(trace, args)
            output = (
                Path(args.output) if args.output else _default_convert_output(args.input)
            )
            output.parent.mkdir(parents=True, exist_ok=True)
            _write_trace(trace, output)
            print(
                f"wrote {output}: {trace.summary()}\n"
                f"fingerprint {trace.fingerprint()}"
            )
            return 0
        if args.ingest_command == "inspect":
            for path in args.inputs:
                trace = load_trace(path, fmt=args.format)
                print(f"{path}: {trace.summary()}")
                print(f"  fingerprint {trace.fingerprint()}")
            return 0
        if args.ingest_command == "interleave":
            traces = [load_trace(path) for path in args.inputs]
            merged = interleave(traces, granularity=args.granularity, name=args.name)
            output = Path(args.output)
            output.parent.mkdir(parents=True, exist_ok=True)
            _write_trace(merged, output)
            print(f"wrote {output}: {merged.summary()}")
            return 0
    except (TraceParseError, TraceFormatError, OSError, ValueError) as error:
        print(f"repro: {error}", file=sys.stderr)
        return 2
    raise AssertionError(
        f"unhandled ingest command {args.ingest_command!r}"
    )  # pragma: no cover


def _cmd_locality(args: argparse.Namespace) -> int:
    analyzer = PageLocalityAnalyzer()
    rows = []
    for name in args.benchmarks:
        trace = generate_trace(benchmark_profile(name), instructions=args.instructions)
        loads = trace.load_addresses()
        rows.append(
            [name]
            + [analyzer.same_page_follow_fraction(loads, n) for n in (0, 1, 2, 3)]
            + [analyzer.same_line_follow_fraction(loads)]
        )
    print(
        format_table(
            ["benchmark", "<=0 interm.", "<=1", "<=2", "<=3", "same line"], rows
        )
    )
    return 0


#: default ``repro report`` workloads: the fig4-mini trio
_REPORT_BENCHMARKS = ("gzip", "swim", "djpeg")


def _cmd_report(args: argparse.Namespace) -> int:
    if args.kernel_source is not None:
        suite = {config.name: config for config in SimulationConfig.figure4_suite()}
        if args.kernel_source not in suite:
            print(
                f"repro: unknown configuration {args.kernel_source!r}; choose "
                f"from {', '.join(_FIG4_ORDER)}",
                file=sys.stderr,
            )
            return 2
        # Imported lazily: the generator is only needed for this debug dump.
        from repro.sim.kernels import kernel_source

        print(kernel_source(suite[args.kernel_source]), end="")
        return 0
    try:
        workloads = _merge_workloads(args.benchmarks or None, args.trace_files)
    except (TraceParseError, TraceFormatError, OSError, ValueError) as error:
        print(f"repro: {error}", file=sys.stderr)
        return 2
    if not workloads:
        workloads = list(_REPORT_BENCHMARKS)
    try:
        for name in workloads:
            validate_workload(name)
    except KeyError as error:
        print(f"repro: {error.args[0]}", file=sys.stderr)
        return 2
    suite = {config.name: config for config in SimulationConfig.figure4_suite()}
    config_names = args.configs if args.configs else list(_FIG4_ORDER)
    configs = []
    for name in config_names:
        if name not in suite:
            print(
                f"repro: unknown configuration {name!r}; choose from "
                f"{', '.join(_FIG4_ORDER)}",
                file=sys.stderr,
            )
            return 2
        configs.append(suite[name])

    from repro.sim.kernels import resolve_kernel

    if resolve_kernel() == "specialized":
        # Attribution needs per-cycle collector callbacks the fused kernels do
        # not emit, so these runs always take the generic interpreter path.
        print(
            "note: collector attached; runs fall back to the generic "
            "interpreter (specialized kernels are bypassed)"
        )
        print()
    timeline = TraceEventLog() if args.timeline else None
    attributions = []
    first = True
    for benchmark in workloads:
        trace = registered_trace(benchmark)
        if trace is None:
            trace = generate_trace(
                benchmark_profile(benchmark), instructions=args.instructions
            )
        for pid, config in enumerate(configs):
            collector = RunCollector(
                sample_every=args.sample_every if timeline is not None else 0
            )
            result = run_configuration(
                config, trace, warmup_fraction=args.warmup, collector=collector
            )
            attribution = attribute_run(benchmark, result, collector)
            # The partition invariant (categories sum to total cycles) is a
            # hard guarantee; a violation is an engine bug, so let it raise.
            attribution.check()
            attributions.append(attribution)
            if not first:
                print()
            first = False
            print(format_attribution(attribution))
            if timeline is not None:
                track = len(attributions) - 1
                timeline.name_process(track, f"{benchmark} {config.name}")
                for cycle, rob, lq, sb, mb in collector.samples:
                    # Simulator timelines map cycles to trace microseconds.
                    timeline.add_counter(
                        "occupancy",
                        "sim.occupancy",
                        float(cycle),
                        {"rob": rob, "lq": lq, "sb": sb, "mb": mb},
                        pid=track,
                    )
    if timeline is not None:
        print()
        _write_trace_log(timeline, args.timeline)
    if args.json_out:
        payload = json.dumps(
            [attribution.as_dict() for attribution in attributions],
            indent=1,
            sort_keys=True,
        )
        target = Path(args.json_out)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(payload + "\n")
        print(f"attribution JSON written to {args.json_out}")
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    # Imported lazily: journal queries never need the simulator stack warm.
    from repro.obs import telemetry

    if args.store is not None and args.store_url is not None:
        print(
            "repro: pass the store positionally or with --store, not both",
            file=sys.stderr,
        )
        return 2
    target = args.store_url if args.store_url is not None else args.store
    if target is None:
        print("repro: obs needs a store (STORE argument or --store URL)", file=sys.stderr)
        return 2
    if args.store_url is not None or re.match(r"^[A-Za-z][A-Za-z0-9+.-]*:", target):
        # URL spelling: validate the scheme so a typo exits 2 with the
        # supported list instead of "no telemetry journal at bogus:...".
        from repro.campaign.backends import parse_store_url

        try:
            parse_store_url(target)
        except StoreURLError as error:
            print(f"repro: {error}", file=sys.stderr)
            return 2
    journal_path = telemetry.resolve_journal(target)
    if not journal_path.exists():
        print(
            f"repro: no telemetry journal at {journal_path} (run a sweep "
            "with --metrics and --out, or --journal, first)",
            file=sys.stderr,
        )
        return 2
    try:
        runs = telemetry.load_runs(journal_path)
    except (OSError, ValueError) as error:
        print(f"repro: cannot read {journal_path}: {error}", file=sys.stderr)
        return 2
    try:
        if args.obs_command == "history":
            print(telemetry.format_history(runs))
            return 0
        if args.obs_command == "compare":
            comparison = telemetry.compare_runs(
                telemetry.resolve_run(runs, args.run_a),
                telemetry.resolve_run(runs, args.run_b),
                threshold_pct=args.threshold,
            )
            print(telemetry.format_compare(comparison))
            if args.check and comparison["regressions"]:
                return 1
            return 0
        if args.obs_command == "cells":
            run = telemetry.resolve_run(runs, args.run)
            print(telemetry.format_cells(run, telemetry.slowest_cells(run, args.slowest)))
            return 0
        if args.obs_command == "export":
            run = telemetry.resolve_run(runs, args.run)
            dump = (run.footer or {}).get("metrics")
            if not isinstance(dump, dict):
                print(
                    f"repro: run {run.run_id} recorded no metrics dump "
                    "(the sweep ran without --metrics)",
                    file=sys.stderr,
                )
                return 2
            from repro.obs.metrics import render_openmetrics

            print(render_openmetrics(dump), end="")
            return 0
    except ValueError as error:
        # Unknown/ambiguous run tokens and malformed dumps are usage errors.
        print(f"repro: {error}", file=sys.stderr)
        return 2
    raise AssertionError(
        f"unhandled obs command {args.obs_command!r}"
    )  # pragma: no cover


def _cmd_serve(args: argparse.Namespace) -> int:
    # Imported lazily: the HTTP stack is only needed when actually serving.
    from repro.serve import ReproServer

    try:
        server = ReproServer(
            args.store, host=args.host, port=args.port, jobs=args.jobs
        )
    except StoreURLError as error:
        print(f"repro: {error}", file=sys.stderr)
        return 2
    except OSError as error:
        print(
            f"repro: cannot bind {args.host}:{args.port}: {error}", file=sys.stderr
        )
        return 2
    print(f"repro serve: listening on {server.url} (store {server.store.url})")
    print(
        "endpoints: POST /api/v1/campaigns, GET /api/v1/campaigns/<id>"
        "[/frontier], GET /api/v1/cells/<key>, GET /api/v1/health "
        "(Ctrl-C to stop)"
    )
    server.serve_forever()
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    # Imported lazily: pulling in repro.bench (and its workload imports) is
    # only worth it when actually profiling.
    from repro.obs.profile import PROFILE_SCENARIOS, run_profile

    if args.list_scenarios:
        for name in sorted(PROFILE_SCENARIOS):
            print(name)
        return 0
    if args.scenario is None:
        print("repro: profile needs a scenario (or --list)", file=sys.stderr)
        return 2
    try:
        report, stack_lines = run_profile(
            args.scenario,
            instructions=args.instructions,
            top=args.top,
            collapsed_out=args.collapsed,
        )
    except KeyError:
        print(
            f"repro: unknown scenario {args.scenario!r}; choose from "
            f"{', '.join(sorted(PROFILE_SCENARIOS))}",
            file=sys.stderr,
        )
        return 2
    print(report, end="")
    if args.collapsed:
        print(f"collapsed stacks written to {args.collapsed} ({stack_lines} lines)")
    return 0


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "list":
        return _cmd_list()
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "figure4":
        return _cmd_figure4(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "dse":
        return _cmd_dse(args)
    if args.command == "ingest":
        return _cmd_ingest(args)
    if args.command == "locality":
        return _cmd_locality(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "obs":
        return _cmd_obs(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "bench":
        from repro.bench import main_bench

        return main_bench(args)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point used by ``python -m repro`` and the console script."""
    args = _build_parser().parse_args(argv)
    configure_logging(
        verbose=args.verbose, quiet=args.log_quiet, json_lines=args.log_json
    )
    if args.metrics:
        obs_metrics.enable()
    try:
        with run_context(args.command):
            return _dispatch(args)
    finally:
        if args.metrics:
            print(
                json.dumps(
                    obs_metrics.registry.snapshot(), indent=1, sort_keys=True
                ),
                file=sys.stderr,
            )
            obs_metrics.disable()


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
