"""Source generator for specialized simulation kernels (PR 8).

Given a :class:`~repro.sim.config.SimulationConfig`, :func:`build_spec`
extracts every value the hot loop branches on into a flat dict of
primitives, and :func:`generate_source` emits the text of a standalone
Python module whose single entry point::

    kernel_run(pipeline, seqs, total, capacity, trace_arrays) -> PipelineResult | None

is the event-driven pipeline loop of
:meth:`repro.cpu.pipeline.OutOfOrderPipeline._run_event_driven` with the
interface tick, the acceptance checks and the stat accounting *fused in* and
specialized for that one configuration:

* config-dependent branches are resolved at generation time (interface kind,
  MALEC way determination on/off, merge granularity, TLB/cache geometry,
  buffer depths inlined as literals);
* attribute lookups are hoisted to locals once per run — but only for
  objects the run never rebinds (the generator documents each hoist; e.g.
  ``InputBuffer._held`` is rebound by ``retire`` and is therefore *never*
  hoisted);
* stat bumps are batched into local integer accumulators that flush into
  ``StatCounters`` once at the end of the run.  Sums of integers commute, so
  the flushed totals are bit-identical to per-access bumping.

Bit-identity strategy — *probe, then commit or delegate*: every inlined fast
path starts with side-effect-free probes (pure dict ``.get`` reads).  Only
when the whole probe succeeds does the kernel apply the inline effects;
otherwise it calls the exact original method before having mutated anything,
so slow paths (TLB misses, cache misses, way-hint mismatches, structure
materialization) run the canonical code and charge the canonical counters.
All simulation state stays canonical — the kernel creates and mutates the
same ``LoadQueueEntry``/``StoreBufferEntry``/``MemoryAccessRequest``/
``BankRequest`` objects the generic loop would, so a collector run, a
fast-forward, or a later generic run over the same interface observes
identical structures.

The emitted module also begins with a battery of *runtime guards*: if the
live pipeline/interface does not match the generation-time spec (someone
swapped the replacement policy, resized a buffer, attached a collector, …)
``kernel_run`` returns ``None`` before touching anything and the caller
falls back to the generic loop.
"""

from __future__ import annotations

from repro.sim.config import InterfaceKind, SimulationConfig

#: bump when the emitted code changes so content hashes (and caches) roll over
GENERATOR_VERSION = 1

#: interface kinds this generator can specialize
KIND_CLASSES = {
    "Base1ldst": "BaselineSingleInterface",
    "Base2ld1st": "BaselineDualLoadInterface",
    "MALEC": "MalecInterface",
}


def build_spec(config: SimulationConfig) -> dict:
    """Flatten ``config`` into the primitive values the generator consumes.

    The spec deliberately excludes ``name`` and ``seed``: two configurations
    differing only in those share one compiled kernel (content-hash cache).
    """
    layout = config.cache.layout
    line_mask = layout._line_offset_mask
    spec = {
        "generator": GENERATOR_VERSION,
        "kind": config.interface.value,
        "class_name": KIND_CLASSES[config.interface.value],
        "rob": config.pipeline.rob_entries,
        "fetch": config.pipeline.fetch_width,
        "issue": config.pipeline.issue_width,
        "commit": config.pipeline.commit_width,
        "lq": config.lq_entries,
        "sb": config.sb_entries,
        "hit_latency": config.cache.l1_hit_latency,
        "page_shift": layout.page_offset_bits,
        "page_off_mask": layout._page_offset_mask,
        "line_mask": line_mask,
        "line_neg_mask": ~line_mask,
        "nbanks": layout.l1_banks,
        "ways": layout.l1_associativity,
    }
    if config.interface is InterfaceKind.MALEC:
        malec = config.malec_options
        spec.update(
            way_determination=malec.way_determination,
            result_buses=malec.result_buses,
            merge_window=malec.merge_window,
            merge_granularity=malec.merge_granularity,
            held_capacity=malec.input_buffer_capacity,
            # MalecParameters does not expose this knob; the interface default
            # is guarded at runtime like every other assumption.
            new_loads_per_cycle=4,
        )
    return spec


# ----------------------------------------------------------------------
# Section builders.  Each returns text at its absolute indentation inside
# the generated ``kernel_run`` (4 = function body, 12 = tick body, 20 =
# issue-stage branch body).
# ----------------------------------------------------------------------
def _header(spec: dict, content_hash: str) -> str:
    kind = spec["kind"]
    extra = ""
    if kind == "MALEC":
        extra = (
            "from repro.core.arbitration import BankRequest\n"
            "from repro.core.request import AccessKind, MemoryAccessRequest\n"
            "\n"
            "AK_LOAD = AccessKind.LOAD\n"
            "AK_MBE = AccessKind.MBE\n"
        )
    else:
        extra = "from repro.interfaces.base import PendingLoad\n"
    return (
        f'"""Specialized {kind} simulation kernel '
        f"(repro.sim.kernels generator v{spec['generator']}).\n"
        f"\n"
        f"Auto-generated for configuration content hash {content_hash}; do not\n"
        f"edit.  Dump via `repro report --kernel-source CONFIG` or\n"
        f"`repro.sim.kernels.kernel_source(config)`.\n"
        f'"""\n'
        f"\n"
        f"import heapq\n"
        f"from collections import deque\n"
        f"\n"
        f"from repro.buffers.load_queue import LoadQueueEntry\n"
        f"from repro.buffers.store_buffer import StoreBufferEntry\n"
        f"from repro.cpu.pipeline import PipelineResult\n"
        f"{extra}"
        f"\n"
        f"\n"
        f"def kernel_run(pipeline, seqs, total, capacity, trace_arrays):\n"
    )


def _quiescent_expr(spec: dict) -> str:
    """The interface's quiescent() predicate over hoisted locals."""
    if spec["kind"] == "MALEC":
        return (
            "not pending_writebacks and store_buffer._committed_count == 0 "
            "and not ib._held and not ib._new and ib._mbe is None "
            "and not mbe_backlog"
        )
    return (
        "not pending_writebacks and store_buffer._committed_count == 0 "
        "and not pending_loads"
    )


def _guards(spec: dict) -> str:
    kind = spec["kind"]
    lines = [
        "    # ---- runtime guards: any mismatch falls back to the generic loop ----",
        "    interface = pipeline.interface",
        "    params = pipeline.params",
        "    stats = pipeline.stats",
        "    if pipeline.collector is not None:",
        "        return None",
        f'    if type(interface).__name__ != "{spec["class_name"]}":',
        "        return None",
        "    if interface.stats is not stats:",
        "        return None",
        "    if (",
        f"        params.rob_entries != {spec['rob']}",
        f"        or params.fetch_width != {spec['fetch']}",
        f"        or params.issue_width != {spec['issue']}",
        f"        or params.commit_width != {spec['commit']}",
        "        or params.compute_latency != 1",
        "    ):",
        "        return None",
        "    layout = interface.layout",
        "    if (",
        f"        layout.page_offset_bits != {spec['page_shift']}",
        f"        or layout._page_offset_mask != {spec['page_off_mask']}",
        f"        or layout._line_offset_mask != {spec['line_mask']}",
        f"        or layout.l1_banks != {spec['nbanks']}",
        "    ):",
        "        return None",
        "    load_queue = interface.load_queue",
        "    store_buffer = interface.store_buffer",
        "    merge_buffer = interface.merge_buffer",
        f"    if load_queue.entries != {spec['lq']} or store_buffer.entries != {spec['sb']}:",
        "        return None",
        "    l1 = interface.hierarchy.l1",
        "    banks = l1.banks",
        f"    if l1.hit_latency != {spec['hit_latency']} or len(banks) != {spec['nbanks']}:",
        "        return None",
        "    bank0 = banks[0]",
        f'    if bank0.array._replacement != "lru" or bank0.array.ways != {spec["ways"]}:',
        "        return None",
        "    translation = interface.translation",
        "    utlb = translation.utlb",
        '    if type(utlb._policy).__name__ != "SecondChanceReplacement":',
        "        return None",
    ]
    if kind == "Base1ldst":
        lines += [
            "    if (",
            "        interface.load_slots != 0",
            "        or interface.store_slots != 0",
            "        or interface.flexible_slots != 1",
            "    ):",
            "        return None",
        ]
    elif kind == "Base2ld1st":
        lines += [
            "    if (",
            "        interface.load_slots != 2",
            "        or interface.store_slots != 1",
            "        or interface.flexible_slots != 0",
            "        or interface.loads_per_cycle != 2",
            "        or interface._MAX_ACCESSES_PER_BANK != 2",
            "        or interface._MAX_WRITES_PER_BANK != 1",
            "    ):",
            "        return None",
        ]
    else:  # MALEC
        lines += [
            "    ib = interface.input_buffer",
            "    arbitration = interface.arbitration",
            "    if (",
            "        interface.load_slots != 1",
            "        or interface.store_slots != 0",
            "        or interface.flexible_slots != 2",
            f'        or interface.way_determination != "{spec["way_determination"]}"',
            f"        or ib.held_capacity != {spec['held_capacity']}",
            f"        or ib.new_loads_per_cycle != {spec['new_loads_per_cycle']}",
            f"        or arbitration.result_buses != {spec['result_buses']}",
            f"        or arbitration.merge_window != {spec['merge_window']}",
            f'        or arbitration.merge_granularity != "{spec["merge_granularity"]}"',
            "    ):",
            "        return None",
        ]
    return "\n".join(lines) + "\n"


def _prologue(spec: dict) -> str:
    kind = spec["kind"]
    lines = [
        "",
        "    # ---- hoisted structures (stable objects only: these attribute",
        "    # slots are mutated in place but never rebound during a run) ----",
        "    _values = stats._values",
        "    _live = stats._live",
        "    decompose = layout.decompose",
        "    translate_pair = translation.translate_pair",
        "    utlb_by_vpage_get = utlb._by_vpage.get",
        "    utlb_slots = utlb._slots",
        "    utlb_referenced = utlb._policy._referenced",
        "    lq_entries = load_queue._entries",
        "    sb_entries = store_buffer._entries",
        "    sb_by_tag = store_buffer._by_tag",
        "    mb_entries = merge_buffer._entries",
        "    load_parts = l1.load_parts",
        "    bank_tags = [bank.array._tags for bank in banks]",
        "    bank_sets = [bank.array._sets for bank in banks]",
        "    bank_policies = [bank.array._policies for bank in banks]",
        "    pending_writebacks = interface._pending_writebacks",
        "    drain_committed = interface._drain_committed_stores",
    ]
    if kind in ("Base1ldst", "Base2ld1st"):
        lines += [
            "    pending_loads = interface._pending_loads",
            "    writeback_to_cache = interface._writeback_to_cache",
            "    translate_probe = translation.translate_probe",
        ]
    if kind == "Base2ld1st":
        lines += [
            "    bank_index_of = layout.bank_index",
            "    line_address_of = layout.line_address",
            "    l1_store = l1.store",
        ]
    if kind == "MALEC":
        lines += [
            "    mbe_backlog = interface._mbe_backlog",
            "    feed_mbe_slot = interface._feed_mbe_slot",
            "    translate_page_pair = translation.translate_page_pair",
            "    store_parts = l1.store_parts",
            "    mk_deque = deque",
        ]
        wd = spec["way_determination"]
        if wd == "wt":
            lines += [
                "    way_tables = interface.way_tables",
                "    uwt_entries = way_tables.uwt._entries",
                "    predict_page = way_tables.predict_page",
                "    feedback_hit = way_tables.feedback_conventional_hit",
            ]
        elif wd == "wdu":
            lines += [
                "    wdu_predict = interface.wdu.predict",
                "    wdu_record = interface.wdu.record",
            ]
    lines += [
        "",
        "    # ---- stat handles (integer slots) and batched accumulators ----",
        "    h_if_loads_submitted = interface._h_loads_submitted",
        "    h_lq_allocate = load_queue._h_allocate",
        "    h_if_stores_submitted = interface._h_stores_submitted",
        "    h_sb_insert = store_buffer._h_insert",
        "    h_utlb_lookup = utlb._h_lookup",
        "    h_utlb_hit = utlb._h_hit",
        "    h_sb_forward = store_buffer._h_forward_hit",
        "    h_mb_forward = merge_buffer._h_forward_hit",
        "    h_if_load_accesses = interface._h_load_accesses",
        "    h_lq_completed = load_queue._h_completed",
        "    h_lq_latency = load_queue._h_total_latency",
        "    h_bk_ctrl = bank0._h_ctrl",
        "    h_bk_tag_read = bank0._h_tag_read",
        "    h_bk_data_read = bank0._h_data_read",
        "    h_bk_conventional = bank0._h_conventional_access",
        "    h_bk_subblock = bank0._h_subblock_pair_read",
        "    h_l1_load = l1._h_load",
        "    h_l1_load_hit = l1._h_load_hit",
    ]
    accs = [
        "acc_load_submit",
        "acc_store_submit",
        "acc_utlb_hit",
        "acc_sb_forward",
        "acc_mb_forward",
        "acc_load_accesses",
        "acc_lq_completed",
        "acc_lq_latency",
        "acc_l1_conv_hit",
    ]
    if kind in ("Base1ldst", "Base2ld1st"):
        lines += [
            "    h_sb_lookup_full = store_buffer._h_lookup_full",
            "    h_mb_lookup_full = merge_buffer._h_lookup_full",
        ]
        accs.append("acc_fwd_full")
    if kind == "Base2ld1st":
        lines += [
            "    h_if_bank_conflict = interface._h_bank_conflict",
            "    h_if_mbe_written = interface._h_mbe_written",
        ]
        accs += ["acc_bank_conflict", "acc_mbe_written"]
    if kind == "MALEC":
        lines += [
            "    h_sb_lookup_offset = store_buffer._h_lookup_offset",
            "    h_mb_lookup_offset = merge_buffer._h_lookup_offset",
            "    h_sb_page_shared = store_buffer._h_lookup_page_shared",
            "    h_mb_page_shared = merge_buffer._h_lookup_page_shared",
            "    h_bk_reduced = bank0._h_reduced_access",
            "    h_if_mbe_written = interface._h_mbe_written",
            "    h_if_loads_merged = interface._h_loads_merged",
            "    h_ib_load_in = ib._h_load_in",
            "    h_ib_page_compare = ib._h_page_compare",
            "    h_ib_group_selected = ib._h_group_selected",
            "    h_ib_group_size = ib._h_group_size",
            "    h_ib_overflow = ib._h_overflow_cycle",
            "    h_ib_held_loads = ib._h_held_loads",
            "    h_ib_mbe_out = ib._h_mbe_out",
            "    h_arb_mbe_conflict = arbitration._h_mbe_bank_conflict",
            "    h_arb_line_compare = arbitration._h_line_compare",
            "    h_arb_merged_load = arbitration._h_merged_load",
            "    h_arb_rej_bus = arbitration._h_rejected_result_bus",
            "    h_arb_rej_bank = arbitration._h_rejected_bank_conflict",
            "    h_arb_granted = arbitration._h_granted_load",
            "    h_arb_way_hint = arbitration._h_way_hint_assigned",
            "    h_arb_cycles = arbitration._h_cycles",
            "    h_arb_bank_accesses = arbitration._h_bank_accesses",
            "    h_m_group_cycles = interface._h_group_cycles",
            "    h_m_group_loads = interface._h_group_loads",
        ]
        accs += [
            "acc_fwd_split",
            "acc_l1_reduced_hit",
            "acc_mbe_written",
            "acc_loads_merged",
            "acc_ib_load_in",
            "acc_page_compare",
            "acc_group_selected",
            "acc_group_size",
            "acc_mbe_out",
            "acc_ib_overflow",
            "acc_held_loads",
            "acc_end_cycles",
            "acc_line_compare",
            "acc_merged_load",
            "acc_rej_bus",
            "acc_rej_bank",
            "acc_granted",
            "acc_way_hint_assigned",
            "acc_arb_mbe_conflict",
            "acc_arb_cycles",
            "acc_bank_accesses",
            "acc_shared_page",
            "acc_group_cycles",
            "acc_group_loads",
        ]
        if spec["way_determination"] in ("wt", "wdu"):
            lines += [
                "    h_way_lookup = interface._h_way_lookup",
                "    h_way_known = interface._h_way_known",
                "    h_m_reduced = interface._h_reduced_access",
            ]
            accs += ["acc_way_unknown", "acc_way_known", "acc_way_reduced"]
        if spec["way_determination"] == "wt":
            lines += ["    h_uwt_read = way_tables.uwt._h_read"]
            accs += ["acc_uwt_read"]
    for i in range(0, len(accs), 4):
        lines.append("    " + " = ".join(accs[i : i + 4]) + " = 0")
    return "\n".join(lines) + "\n"


def _loop_head(spec: dict) -> str:
    q = _quiescent_expr(spec)
    return f"""
    # ---- event-driven loop state (transcribed from _run_event_driven) ----
    max_cycles = pipeline.max_cycles or (200 * total + 100000)
    heappush = heapq.heappush
    heappop = heapq.heappop
    # Single-component EventWheel, inlined: per-cycle buckets + a min-heap
    # with one entry per distinct bucket cycle (see repro.sim.events).
    wheel_buckets = {{}}
    wheel_buckets_get = wheel_buckets.get
    wheel_buckets_pop = wheel_buckets.pop
    wheel_heap = []
    NEVER = float("inf")
    wheel_next = NEVER
    next_fetch = 0
    committed = 0
    cycle = 0
    last_commit_cycle = 0
    rob_q = deque()
    rob_len = 0
    in_rob = bytearray(capacity)
    issued_f = bytearray(capacity)
    completed_f = bytearray(capacity)
    produced = bytearray(capacity)
    pending_deps = [0] * capacity
    kinds, addresses, sizes, producers_of = trace_arrays
    consumers = [None] * capacity
    ready_fifo = deque()
    ready_heap = []
    deferred = []
    deferred_has_load = False
    deferred_blocking = False
    due_next = []
    store_order = []
    store_order_head = 0
    loads = stores = computes = 0
    cycles_counted = 0
    issued_total = 0
    dispatched_total = 0
    fast_forwarded = 0
    interface_active = not ({q})

    while committed < total:
        if cycle > max_cycles:
            raise RuntimeError(
                "pipeline exceeded %d cycles; likely deadlock (%d/%d committed)"
                % (max_cycles, committed, total)
            )

        # 1. Retire completions scheduled for this cycle.
        if due_next:
            due_now = due_next
            due_next = []
            for seq in due_now:
                if completed_f[seq]:
                    continue
                completed_f[seq] = 1
                produced[seq] = 1
                waiting = consumers[seq]
                if waiting is not None:
                    consumers[seq] = None
                    for consumer in waiting:
                        left = pending_deps[consumer] - 1
                        pending_deps[consumer] = left
                        if left == 0 and not issued_f[consumer]:
                            heappush(ready_heap, consumer)
        if wheel_next <= cycle:
            while wheel_heap and wheel_heap[0] <= cycle:
                for seq in wheel_buckets_pop(heappop(wheel_heap)):
                    if completed_f[seq]:
                        continue
                    completed_f[seq] = 1
                    produced[seq] = 1
                    waiting = consumers[seq]
                    if waiting is not None:
                        consumers[seq] = None
                        for consumer in waiting:
                            left = pending_deps[consumer] - 1
                            pending_deps[consumer] = left
                            if left == 0 and not issued_f[consumer]:
                                heappush(ready_heap, consumer)
            wheel_next = wheel_heap[0] if wheel_heap else NEVER
"""


def _issue_stage(spec: dict) -> str:
    head = f"""
        # 2. Issue ready instructions (oldest first, up to issue width).
        if ready_fifo or ready_heap or deferred:
            loads_used = stores_used = flex_used = 0
            issued = 0
            postponed = []
            postponed_load = False
            loads_blocked = stores_blocked = False
            di = 0
            dn = len(deferred)
            simple = not dn and not ready_heap
            while issued < {spec['issue']}:
                if simple:
                    if not ready_fifo:
                        break
                    seq = ready_fifo.popleft()
                else:
                    s_def = deferred[di] if di < dn else NEVER
                    s_fifo = ready_fifo[0] if ready_fifo else NEVER
                    s_heap = ready_heap[0] if ready_heap else NEVER
                    if s_def <= s_fifo:
                        if s_def <= s_heap:
                            if s_def is NEVER:
                                break
                            seq = s_def
                            di += 1
                        else:
                            seq = heappop(ready_heap)
                    elif s_fifo <= s_heap:
                        seq = ready_fifo.popleft()
                    else:
                        seq = heappop(ready_heap)
                if not in_rob[seq] or issued_f[seq]:
                    continue
                kind = kinds[seq]
                if kind == 0:  # compute (1-cycle latency guaranteed by guard)
                    issued_f[seq] = 1
                    due_next.append(seq)
                    issued += 1
                elif kind == 1:  # load
{_issue_load(spec)}
                else:  # store
{_issue_store(spec)}
            if di < dn:
                postponed += deferred[di:]
                deferred_blocking = True
            else:
                deferred_blocking = False
            deferred = postponed
            deferred_has_load = postponed_load
            issued_total += issued
"""
    return head


def _issue_load(spec: dict) -> str:
    kind = spec["kind"]
    if kind == "Base1ldst":
        accept = (
            f"not loads_blocked\n"
            f"                        and flex_used == 0\n"
            f"                        and len(lq_entries) < {spec['lq']}\n"
            f"                        and len(pending_loads) < 4"
        )
        consume = "flex_used = 1"
    elif kind == "Base2ld1st":
        accept = (
            f"not loads_blocked\n"
            f"                        and loads_used < 2\n"
            f"                        and len(lq_entries) < {spec['lq']}\n"
            f"                        and len(pending_loads) < 4"
        )
        consume = "loads_used += 1"
    else:  # MALEC: dedicated slot first, then flexible (reserve_load_slot)
        return f"""\
                    accepted = False
                    if (
                        not loads_blocked
                        and len(lq_entries) < {spec['lq']}
                        and len(ib._new) < {spec['new_loads_per_cycle']}
                        and len(ib._held) < {spec['held_capacity'] + 1}
                    ):
                        if loads_used < 1:
                            loads_used += 1
                            accepted = True
                        elif flex_used < 2:
                            flex_used += 1
                            accepted = True
                    if accepted:
                        issued_f[seq] = 1
                        address = addresses[seq]
                        lq_entries[seq] = LoadQueueEntry(
                            tag=seq,
                            virtual_address=address,
                            dispatch_cycle=cycle,
                            issue_cycle=cycle,
                        )
                        acc_load_submit += 1
                        acc_ib_load_in += 1
                        ib._new.append(
                            MemoryAccessRequest(
                                kind=AK_LOAD,
                                virtual_address=address,
                                size=sizes[seq],
                                arrival_cycle=cycle,
                                tag=seq,
                                layout=layout,
                            )
                        )
                        interface_active = True
                        issued += 1
                    else:
                        loads_blocked = True
                        postponed.append(seq)
                        postponed_load = True"""
    return f"""\
                    if (
                        {accept}
                    ):
                        {consume}
                        issued_f[seq] = 1
                        address = addresses[seq]
                        lq_entries[seq] = LoadQueueEntry(
                            tag=seq,
                            virtual_address=address,
                            dispatch_cycle=cycle,
                            issue_cycle=cycle,
                        )
                        acc_load_submit += 1
                        pending_loads.append(
                            PendingLoad(
                                tag=seq,
                                virtual_address=address,
                                size=sizes[seq],
                                submit_cycle=cycle,
                            )
                        )
                        interface_active = True
                        issued += 1
                    else:
                        loads_blocked = True
                        postponed.append(seq)
                        postponed_load = True"""


def _issue_store(spec: dict) -> str:
    kind = spec["kind"]
    if kind == "Base1ldst":
        slot_check = "flex_used == 0"
        consume = "flex_used = 1"
    elif kind == "Base2ld1st":
        slot_check = "stores_used < 1"
        consume = "stores_used += 1"
    else:
        slot_check = "flex_used < 2"
        consume = "flex_used += 1"
    if kind == "MALEC":
        probe = ""  # MALEC does not translate at store submission
    else:
        # _on_store_submitted: translate_probe with the uTLB-hit fast path
        probe = f"""
                        vpage = address >> {spec['page_shift']}
                        slot = utlb_by_vpage_get(vpage)
                        if slot is not None:
                            acc_utlb_hit += 1
                            utlb_referenced[slot] = True
                        else:
                            translate_probe(address)"""
    return f"""\
                    in_store_order = (
                        store_order_head < len(store_order)
                        and store_order[store_order_head] == seq
                    )
                    if (
                        not stores_blocked
                        and in_store_order
                        and len(sb_entries) < {spec['sb']}
                        and {slot_check}
                    ):
                        {consume}
                        store_order_head += 1
                        issued_f[seq] = 1
                        address = addresses[seq]
                        sb_entry = StoreBufferEntry(
                            tag=seq,
                            virtual_address=address,
                            size=sizes[seq],
                            cycle=cycle,
                        )
                        sb_entries.append(sb_entry)
                        sb_by_tag[seq] = sb_entry
                        acc_store_submit += 1{probe}
                        interface_active = True
                        due_next.append(seq)
                        issued += 1
                    else:
                        stores_blocked = True
                        postponed.append(seq)"""


# The shared fragments below are emitted at several indentation depths; they
# are written indent-relative and shifted with _shift().
def _shift(text: str, spaces: int) -> str:
    pad = " " * spaces
    return "\n".join(pad + line if line.strip() else line for line in text.split("\n"))


def _translate_pair_inline(spec: dict, addr: str, indent: int) -> str:
    """uTLB-hit fast path of TLBHierarchy.translate_pair; miss delegates."""
    text = f"""\
vpage = {addr} >> {spec['page_shift']}
slot = utlb_by_vpage_get(vpage)
if slot is not None:
    acc_utlb_hit += 1
    utlb_referenced[slot] = True
    physical = (
        utlb_slots[slot].physical_page << {spec['page_shift']}
    ) | ({addr} & {spec['page_off_mask']})
    translation_latency = 0
else:
    physical, translation_latency = translate_pair({addr})"""
    return _shift(text, indent)


def _forwarding_inline(spec: dict, addr: str, size: str, acc_charge: str, indent: int) -> str:
    """BaseL1Interface._forwarding_lookups with the charge batched."""
    text = f"""\
{acc_charge} += 1
fwd_end = {addr} + {size}
for fw_entry in reversed(sb_entries):
    fw_start = fw_entry.virtual_address
    if fw_start < fwd_end and {addr} < fw_start + fw_entry.size:
        acc_sb_forward += 1
        break
if mb_entries:
    fw_line = {addr} & {spec['line_neg_mask']}
    for fw_entry in mb_entries:
        if fw_entry.line_address == fw_line:
            acc_mb_forward += 1
            break"""
    return _shift(text, indent)


def _l1_conventional_inline(spec: dict, phys: str, indent: int) -> str:
    """Conventional (no way hint) L1 load probe; any miss delegates.

    Sets ``latency`` (and ``l1_hit``/``l1_way`` for MALEC's feedback path).
    """
    text = f"""\
pparts = decompose({phys})
pbank = pparts[5]
tags_map = bank_tags[pbank].get(pparts[6])
l1_way = tags_map.get(pparts[7]) if tags_map is not None else None
policy = bank_policies[pbank].get(pparts[6]) if l1_way is not None else None
if policy is not None:
    lru_stack = policy._stack
    if lru_stack[0] != l1_way:
        lru_stack.remove(l1_way)
        lru_stack.insert(0, l1_way)
    acc_l1_conv_hit += 1
    l1_hit = True
    reduced = False
    latency = {spec['hit_latency']}
else:
    l1_hit, l1_way, latency, reduced, _b, _w = load_parts({phys})"""
    return _shift(text, indent)


def _release_and_schedule(indent: int, tag: str, ready: str) -> str:
    """LoadQueue.complete_release fused with the pipeline's completion
    scheduling (independent state, so interleaving them per completion is
    equivalent to the generic release-all-then-schedule-all order)."""
    text = f"""\
lq_entry = lq_entries.pop({tag})
lq_entry.complete_cycle = {ready}
lq_issue = lq_entry.issue_cycle
if lq_issue is not None:
    acc_lq_latency += {ready} - lq_issue
    acc_lq_completed += 1
if 0 <= {tag} < capacity and in_rob[{tag}] and not completed_f[{tag}]:
    if {ready} <= cycle + 1:
        due_next.append({tag})
    else:
        bucket = wheel_buckets_get({ready})
        if bucket is None:
            wheel_buckets[{ready}] = [{tag}]
            heappush(wheel_heap, {ready})
        else:
            bucket.append({tag})
        if {ready} < wheel_next:
            wheel_next = {ready}"""
    return _shift(text, indent)


def _tick(spec: dict) -> str:
    kind = spec["kind"]
    if kind == "Base1ldst":
        return _tick_1ldst(spec)
    if kind == "Base2ld1st":
        return _tick_2ld1st(spec)
    return _tick_malec(spec)


def _tick_1ldst(spec: dict) -> str:
    return f"""\
            if store_buffer._committed_count:
                drain_committed(cycle)
            if pending_loads:
                load = pending_loads.popleft()
                address = load.virtual_address
{_translate_pair_inline(spec, "address", 16)}
{_forwarding_inline(spec, "address", "load.size", "acc_fwd_full", 16)}
{_l1_conventional_inline(spec, "physical", 16)}
                acc_load_accesses += 1
                tag = load.tag
                ready_cycle = cycle + translation_latency + latency
{_release_and_schedule(16, "tag", "ready_cycle")}
            elif pending_writebacks:
                writeback_to_cache(pending_writebacks.popleft())
"""


def _tick_2ld1st(spec: dict) -> str:
    return f"""\
            if store_buffer._committed_count:
                drain_committed(cycle)
            if pending_loads or pending_writebacks:
                completions = []
                bank_accesses = {{}}
                bank_writes = {{}}
                serviced = 0
                deferred_loads = []
                while pending_loads and serviced < 2:
                    load = pending_loads.popleft()
                    address = load.virtual_address
                    bank = bank_index_of(address)
                    if bank_accesses.get(bank, 0) >= 2:
                        deferred_loads.append(load)
                        acc_bank_conflict += 1
                        continue
{_translate_pair_inline(spec, "address", 20)}
{_forwarding_inline(spec, "address", "load.size", "acc_fwd_full", 20)}
{_l1_conventional_inline(spec, "physical", 20)}
                    bank_accesses[bank] = bank_accesses.get(bank, 0) + 1
                    completions.append(
                        (load.tag, cycle + translation_latency + latency)
                    )
                    acc_load_accesses += 1
                    serviced += 1
                for load in reversed(deferred_loads):
                    pending_loads.appendleft(load)
                if pending_writebacks:
                    writeback = pending_writebacks[0]
                    if writeback.physical_line_address is None:
                        physical, _lat = translate_pair(writeback.virtual_line_address)
                        writeback.physical_line_address = line_address_of(physical)
                    bank = bank_index_of(writeback.physical_line_address)
                    if bank_writes.get(bank, 0) < 1 and bank_accesses.get(bank, 0) < 2:
                        pending_writebacks.popleft()
                        l1_store(writeback.physical_line_address)
                        acc_mbe_written += 1
                        bank_accesses[bank] = bank_accesses.get(bank, 0) + 1
                        bank_writes[bank] = bank_writes.get(bank, 0) + 1
                for tag, ready_cycle in completions:
{_release_and_schedule(20, "tag", "ready_cycle")}
"""


def _merge_scan(spec: dict) -> str:
    """ArbitrationUnit's merge window scan, granularity resolved now."""
    gran = spec["merge_granularity"]
    if gran == "none":
        return ""
    if gran == "line":
        predicate = "owner_primary._line_number == request._line_number"
    elif gran == "subblock_pair":
        predicate = (
            "owner_primary._line_number == request._line_number\n"
            "                            and owner_primary._subblock_pair"
            " == request._subblock_pair"
        )
    else:  # subblock
        predicate = (
            "owner_primary._line_number == request._line_number\n"
            "                            and subblock_of(owner_primary.virtual_address)\n"
            "                            == subblock_of(request.virtual_address)"
        )
    return f"""
                    if position <= {spec['merge_window']}:
                        for owner in bank_owner.values():
                            if owner.is_write:
                                continue
                            acc_line_compare += 1
                            owner_primary = owner.primary
                            if (
                                {predicate}
                            ):
                                if loads_granted >= {spec['result_buses']}:
                                    break
                                owner.merged.append(request)
                                serviced.append(request)
                                loads_granted += 1
                                merged = True
                                acc_merged_load += 1
                                break"""


def _predict_fragment(spec: dict) -> str:
    wd = spec["way_determination"]
    if wd == "wt":
        # WayTableHierarchy.predict_page: a second uTLB probe of the same
        # page (count_event=False: touch but no lookup/hit counters).
        return """\
                slot = utlb_by_vpage_get(page)
                if slot is not None:
                    utlb_referenced[slot] = True
                    way_tables._last_uwt_slot = slot
                    acc_uwt_read += 1
                    way_entry = uwt_entries[slot]
                else:
                    way_entry = predict_page(page)"""
    return "                way_entry = None"


def _assign_ways(spec: dict) -> str:
    if spec["way_determination"] != "wt":
        return ""
    return """
                if way_entry is not None:
                    wt_codes = way_entry._codes
                    wt_decode = way_entry._decode_tbl
                    for bank_request in bank_requests:
                        lip = bank_request.primary.line_in_page
                        way = wt_decode[lip][wt_codes[lip]]
                        if way is not None:
                            bank_request.way_hint = way
                            bank_request.primary.way_hint = way
                            for request in bank_request.merged:
                                request.way_hint = way
                            acc_way_hint_assigned += 1"""


def _way_acct(spec: dict, indent: int) -> str:
    if spec["way_determination"] == "none":
        return ""
    text = """\
if way_hint is None:
    acc_way_unknown += 1
elif reduced:
    acc_way_reduced += 1
else:
    acc_way_known += 1"""
    return "\n" + _shift(text, indent)


def _feedback(spec: dict) -> str:
    wd = spec["way_determination"]
    if wd == "wt":
        return """
                    if way_hint is None and l1_hit:
                        feedback_hit(physical_address, l1_way)"""
    if wd == "wdu":
        return """
                    if way_hint is None and l1_hit:
                        if l1_way is not None:
                            wdu_record(physical_address, l1_way)"""
    return ""


def _wdu_predict(spec: dict) -> str:
    if spec["way_determination"] != "wdu":
        return ""
    return """
                    prediction = wdu_predict(physical_address)
                    if prediction.known:
                        way_hint = prediction.way"""


def _tick_malec(spec: dict) -> str:
    subblock_hoist = ""
    if spec["merge_granularity"] == "subblock":
        subblock_hoist = "\n                subblock_of = layout.subblock_in_line"
    return f"""\
            if store_buffer._committed_count:
                drain_committed(cycle)
            if mbe_backlog or ib._held or ib._new or ib._mbe is not None:
                if mbe_backlog and ib._mbe is None:
                    feed_mbe_slot(cycle)
                held = ib._held
                new = ib._new
                mbe = ib._mbe{subblock_hoist}
                # ---- InputBuffer.select_group ----
                if held:
                    leader = held[0]
                elif new:
                    leader = new[0]
                else:
                    leader = mbe
                page = leader.virtual_page
                members = []
                compares = -1
                for request in held:
                    compares += 1
                    if request.virtual_page == page:
                        members.append(request)
                for request in new:
                    compares += 1
                    if request.virtual_page == page:
                        members.append(request)
                if mbe is not None:
                    compares += 1
                    if mbe.virtual_page == page:
                        members.append(mbe)
                if compares:
                    acc_page_compare += compares
                acc_group_selected += 1
                acc_group_size += len(members)
                # ---- translate_page_pair (uTLB-hit fast path) ----
                slot = utlb_by_vpage_get(page)
                if slot is not None:
                    acc_utlb_hit += 1
                    utlb_referenced[slot] = True
                    physical_page = utlb_slots[slot].physical_page
                    translation_latency = 0
                else:
                    physical_page, translation_latency = translate_page_pair(page)
{_predict_fragment(spec)}
                # ---- ArbitrationUnit.arbitrate ----
                bank_owner = {{}}
                bank_requests = []
                serviced = []
                loads_granted = 0
                for position, request in enumerate(members):
                    bank = request.bank_index
                    if request.is_mbe:
                        if bank in bank_owner:
                            acc_arb_mbe_conflict += 1
                            continue
                        bank_request = BankRequest(
                            bank=bank, primary=request, is_write=True
                        )
                        bank_owner[bank] = bank_request
                        bank_requests.append(bank_request)
                        serviced.append(request)
                        continue
                    merged = False{_merge_scan(spec)}
                    if merged:
                        continue
                    if loads_granted >= {spec['result_buses']}:
                        acc_rej_bus += 1
                        continue
                    if bank in bank_owner:
                        acc_rej_bank += 1
                        continue
                    bank_request = BankRequest(
                        bank=bank, primary=request, is_write=False
                    )
                    bank_owner[bank] = bank_request
                    bank_requests.append(bank_request)
                    serviced.append(request)
                    loads_granted += 1
                    acc_granted += 1{_assign_ways(spec)}
                acc_arb_cycles += 1
                acc_bank_accesses += len(bank_requests)
                if loads_granted:
                    acc_shared_page += 1
                completions = []
                # ---- per-bank servicing (_service_bank_request) ----
                for bank_request in bank_requests:
                    primary = bank_request.primary
                    address = primary.virtual_address
                    physical_address = (
                        physical_page << {spec['page_shift']}
                    ) | (address & {spec['page_off_mask']})
                    primary.physical_address = physical_address
                    way_hint = bank_request.way_hint{_wdu_predict(spec)}
                    if bank_request.is_write:
                        reduced = store_parts(physical_address, way_hint=way_hint)[3]
                        acc_mbe_written += 1{_way_acct(spec, 24)}
                        continue
                    merged_requests = bank_request.merged
{_forwarding_inline(spec, "address", "primary.size", "acc_fwd_split", 20)}
                    for request in merged_requests:
                        maddr = request.virtual_address
                        request.physical_address = (
                            physical_page << {spec['page_shift']}
                        ) | (maddr & {spec['page_off_mask']})
{_forwarding_inline(spec, "maddr", "request.size", "acc_fwd_split", 24)}
                    # ---- L1 load: reduced / conventional probe, else delegate
                    pparts = decompose(physical_address)
                    pbank = pparts[5]
                    set_index = pparts[6]
                    ptag = pparts[7]
                    if way_hint is not None:
                        l1_hit = False
                        lines = bank_sets[pbank].get(set_index)
                        if lines is not None:
                            line = lines[way_hint]
                            if line.valid and line.tag == ptag:
                                policy = bank_policies[pbank].get(set_index)
                                tags_map = bank_tags[pbank].get(set_index)
                                tags_way = (
                                    tags_map.get(ptag) if tags_map is not None else None
                                )
                                if policy is not None and tags_way is not None:
                                    lru_stack = policy._stack
                                    if lru_stack[0] != tags_way:
                                        lru_stack.remove(tags_way)
                                        lru_stack.insert(0, tags_way)
                                    acc_l1_reduced_hit += 1
                                    l1_hit = True
                                    l1_way = way_hint
                                    reduced = True
                                    latency = {spec['hit_latency']}
                        if not l1_hit:
                            l1_hit, l1_way, latency, reduced, _b, _w = load_parts(
                                physical_address, way_hint=way_hint
                            )
                    else:
                        tags_map = bank_tags[pbank].get(set_index)
                        l1_way = tags_map.get(ptag) if tags_map is not None else None
                        policy = (
                            bank_policies[pbank].get(set_index)
                            if l1_way is not None
                            else None
                        )
                        if policy is not None:
                            lru_stack = policy._stack
                            if lru_stack[0] != l1_way:
                                lru_stack.remove(l1_way)
                                lru_stack.insert(0, l1_way)
                            acc_l1_conv_hit += 1
                            l1_hit = True
                            reduced = False
                            latency = {spec['hit_latency']}
                        else:
                            l1_hit, l1_way, latency, reduced, _b, _w = load_parts(
                                physical_address
                            )
                    acc_load_accesses += 1
                    acc_loads_merged += len(merged_requests){_way_acct(spec, 20)}{_feedback(spec)}
                    ready_cycle = cycle + translation_latency + latency
                    if primary.tag is not None:
                        completions.append((primary.tag, ready_cycle))
                    for request in merged_requests:
                        if request.tag is not None:
                            completions.append((request.tag, ready_cycle))
                # ---- InputBuffer.retire + end_cycle ----
                serviced_ids = {{request.request_id for request in serviced}}
                held2 = mk_deque(
                    request
                    for request in held
                    if request.request_id not in serviced_ids
                )
                new2 = [
                    request
                    for request in new
                    if request.request_id not in serviced_ids
                ]
                if mbe is not None and mbe.request_id in serviced_ids:
                    ib._mbe = None
                    acc_mbe_out += 1
                if new2:
                    held2.extend(new2)
                ib._held = held2
                ib._new = []
                held_count = len(held2)
                if held_count > {spec['held_capacity']}:
                    acc_ib_overflow += 1
                acc_held_loads += held_count
                acc_end_cycles += 1
                acc_group_cycles += 1
                acc_group_loads += loads_granted
                for tag, ready_cycle in completions:
{_release_and_schedule(20, "tag", "ready_cycle")}
"""


def _loop_tail(spec: dict) -> str:
    q = _quiescent_expr(spec)
    return f"""
        # 4. Commit in order (commit_store inlined: StoreBuffer.mark_committed).
        if rob_q and completed_f[rob_q[0]]:
            commits = 0
            while commits < {spec['commit']} and rob_q and completed_f[rob_q[0]]:
                seq = rob_q.popleft()
                rob_len -= 1
                commits += 1
                committed += 1
                last_commit_cycle = cycle
                kind = kinds[seq]
                if kind == 1:
                    loads += 1
                elif kind == 2:
                    stores += 1
                    sb_entry = sb_by_tag.get(seq)
                    if sb_entry is not None and not sb_entry.committed:
                        sb_entry.committed = True
                        store_buffer._committed_count += 1
                    interface_active = True
                else:
                    computes += 1
                in_rob[seq] = 0
                consumers[seq] = None

        cycles_counted += 1

        # 5. Fetch / dispatch into the ROB.
        if next_fetch < total:
            fetched = 0
            while (
                fetched < {spec['fetch']}
                and next_fetch < total
                and rob_len < {spec['rob']}
            ):
                seq = seqs[next_fetch]
                rob_q.append(seq)
                rob_len += 1
                in_rob[seq] = 1
                if kinds[seq] == 2:
                    store_order.append(seq)
                pending = 0
                producers = producers_of[seq]
                if producers:
                    for producer in producers:
                        if produced[producer] or not in_rob[producer]:
                            continue
                        waiting = consumers[producer]
                        if waiting is None:
                            waiting = consumers[producer] = []
                        waiting.append(seq)
                        pending += 1
                    pending_deps[seq] = pending
                if pending == 0:
                    ready_fifo.append(seq)
                next_fetch += 1
                fetched += 1
            dispatched_total += fetched

        cycle += 1

        # 6. Re-arm / disarm the interface event (quiescent() inlined).
        if interface_active and ({q}):
            interface_active = False

        # 7. Clock jump to the next wheel event when this cycle was a no-op.
        if (
            not ready_fifo
            and not ready_heap
            and not due_next
            and not interface_active
            and wheel_next is not NEVER
            and wheel_next > cycle
            and (next_fetch >= total or rob_len >= {spec['rob']})
            and committed < total
            and not (rob_q and completed_f[rob_q[0]])
            and (
                not deferred
                or (
                    not deferred_blocking
                    and not deferred_has_load
                    and (
                        store_order_head >= len(store_order)
                        or store_order[store_order_head] not in deferred
                        or len(sb_entries) >= {spec['sb']}
                    )
                )
            )
        ):
            skipped = wheel_next - cycle
            cycles_counted += skipped
            fast_forwarded += skipped
            cycle = wheel_next
"""


def _flush_row(guard: str, targets, indent: int = 4) -> str:
    pad = " " * indent
    lines = [f"{pad}if {guard}:"]
    for handle, amount in targets:
        lines.append(f"{pad}    _values[{handle}] += {amount}")
        lines.append(f"{pad}    _live[{handle}] = True")
    return "\n".join(lines)


def _epilogue(spec: dict) -> str:
    kind = spec["kind"]
    rows = [
        _flush_row(
            "acc_load_submit",
            [("h_if_loads_submitted", "acc_load_submit"), ("h_lq_allocate", "acc_load_submit")],
        ),
        _flush_row(
            "acc_store_submit",
            [("h_if_stores_submitted", "acc_store_submit"), ("h_sb_insert", "acc_store_submit")],
        ),
        _flush_row(
            "acc_utlb_hit",
            [("h_utlb_lookup", "acc_utlb_hit"), ("h_utlb_hit", "acc_utlb_hit")],
        ),
        _flush_row("acc_sb_forward", [("h_sb_forward", "acc_sb_forward")]),
        _flush_row("acc_mb_forward", [("h_mb_forward", "acc_mb_forward")]),
        _flush_row(
            "acc_lq_completed",
            [("h_lq_completed", "acc_lq_completed"), ("h_lq_latency", "acc_lq_latency")],
        ),
        _flush_row(
            "acc_l1_conv_hit",
            [
                ("h_bk_ctrl", "acc_l1_conv_hit"),
                ("h_bk_tag_read", f"acc_l1_conv_hit * {spec['ways']}"),
                ("h_bk_data_read", f"acc_l1_conv_hit * {spec['ways']}"),
                ("h_bk_conventional", "acc_l1_conv_hit"),
                ("h_bk_subblock", "acc_l1_conv_hit"),
                ("h_l1_load", "acc_l1_conv_hit"),
                ("h_l1_load_hit", "acc_l1_conv_hit"),
            ],
        ),
    ]
    if kind in ("Base1ldst", "Base2ld1st"):
        rows += [
            _flush_row(
                "acc_fwd_full",
                [("h_sb_lookup_full", "acc_fwd_full"), ("h_mb_lookup_full", "acc_fwd_full")],
            ),
            _flush_row("acc_load_accesses", [("h_if_load_accesses", "acc_load_accesses")]),
        ]
    if kind == "Base2ld1st":
        rows += [
            _flush_row("acc_bank_conflict", [("h_if_bank_conflict", "acc_bank_conflict")]),
            _flush_row("acc_mbe_written", [("h_if_mbe_written", "acc_mbe_written")]),
        ]
    if kind == "MALEC":
        rows += [
            _flush_row(
                "acc_fwd_split",
                [("h_sb_lookup_offset", "acc_fwd_split"), ("h_mb_lookup_offset", "acc_fwd_split")],
            ),
            # loads_merged is bumped (possibly with 0) alongside every
            # load_accesses bump, so its liveness follows that guard.
            _flush_row(
                "acc_load_accesses",
                [
                    ("h_if_load_accesses", "acc_load_accesses"),
                    ("h_if_loads_merged", "acc_loads_merged"),
                ],
            ),
            _flush_row(
                "acc_l1_reduced_hit",
                [
                    ("h_bk_ctrl", "acc_l1_reduced_hit"),
                    ("h_bk_data_read", "acc_l1_reduced_hit"),
                    ("h_bk_reduced", "acc_l1_reduced_hit"),
                    ("h_bk_subblock", "acc_l1_reduced_hit"),
                    ("h_l1_load", "acc_l1_reduced_hit"),
                    ("h_l1_load_hit", "acc_l1_reduced_hit"),
                ],
            ),
            _flush_row("acc_mbe_written", [("h_if_mbe_written", "acc_mbe_written")]),
            _flush_row("acc_ib_load_in", [("h_ib_load_in", "acc_ib_load_in")]),
            _flush_row("acc_page_compare", [("h_ib_page_compare", "acc_page_compare")]),
            # group_size/held_loads/group_loads/bank_accesses take zero-amount
            # bumps in the generic path (which still set the live flag), so
            # they flush under their companion once-per-event guards.
            _flush_row(
                "acc_group_selected",
                [
                    ("h_ib_group_selected", "acc_group_selected"),
                    ("h_ib_group_size", "acc_group_size"),
                ],
            ),
            _flush_row("acc_mbe_out", [("h_ib_mbe_out", "acc_mbe_out")]),
            _flush_row("acc_ib_overflow", [("h_ib_overflow", "acc_ib_overflow")]),
            _flush_row("acc_end_cycles", [("h_ib_held_loads", "acc_held_loads")]),
            _flush_row("acc_line_compare", [("h_arb_line_compare", "acc_line_compare")]),
            _flush_row("acc_merged_load", [("h_arb_merged_load", "acc_merged_load")]),
            _flush_row("acc_rej_bus", [("h_arb_rej_bus", "acc_rej_bus")]),
            _flush_row("acc_rej_bank", [("h_arb_rej_bank", "acc_rej_bank")]),
            _flush_row("acc_granted", [("h_arb_granted", "acc_granted")]),
            _flush_row("acc_way_hint_assigned", [("h_arb_way_hint", "acc_way_hint_assigned")]),
            _flush_row("acc_arb_mbe_conflict", [("h_arb_mbe_conflict", "acc_arb_mbe_conflict")]),
            _flush_row(
                "acc_arb_cycles",
                [("h_arb_cycles", "acc_arb_cycles"), ("h_arb_bank_accesses", "acc_bank_accesses")],
            ),
            _flush_row(
                "acc_shared_page",
                [("h_sb_page_shared", "acc_shared_page"), ("h_mb_page_shared", "acc_shared_page")],
            ),
            _flush_row(
                "acc_group_cycles",
                [("h_m_group_cycles", "acc_group_cycles"), ("h_m_group_loads", "acc_group_loads")],
            ),
        ]
        if spec["way_determination"] in ("wt", "wdu"):
            rows += [
                "    way_total = acc_way_unknown + acc_way_known + acc_way_reduced",
                _flush_row("way_total", [("h_way_lookup", "way_total")]),
                "    way_known_total = acc_way_known + acc_way_reduced",
                _flush_row("way_known_total", [("h_way_known", "way_known_total")]),
                _flush_row("acc_way_reduced", [("h_m_reduced", "acc_way_reduced")]),
            ]
        if spec["way_determination"] == "wt":
            rows += [_flush_row("acc_uwt_read", [("h_uwt_read", "acc_uwt_read")])]
    body = "\n".join(rows)
    return f"""
    # ---- run boundary: flush batched accumulators, then finalize ----
    pipeline.fast_forwarded_cycles += fast_forwarded
{body}
    total_cycles = last_commit_cycle + 1
    interface.finalize(total_cycles)
    stats.add("pipeline.issued", issued_total)
    stats.add("pipeline.cycles", cycles_counted)
    stats.add("pipeline.dispatched", dispatched_total)
    stats.set("pipeline.total_cycles", total_cycles)
    stats.set("pipeline.committed", committed)
    return PipelineResult(
        cycles=total_cycles,
        instructions=total,
        loads=loads,
        stores=stores,
        computes=computes,
    )
"""


def generate_source(spec: dict, content_hash: str = "unhashed") -> str:
    """Emit the kernel module source for ``spec``."""
    if spec["kind"] not in KIND_CLASSES:
        raise ValueError(f"cannot specialize interface kind {spec['kind']!r}")
    tick = _tick(spec)
    return (
        _header(spec, content_hash)
        + _guards(spec)
        + _prologue(spec)
        + _loop_head(spec)
        + _issue_stage(spec)
        + "\n        # 3. Interface tick: drain + service + completions, fused.\n"
        + "        if interface_active:\n"
        + tick
        + _loop_tail(spec)
        + _epilogue(spec)
    )
