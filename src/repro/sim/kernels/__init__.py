"""Specialized simulation kernels: per-configuration generated hot loops.

``compile_kernel(config)`` turns a :class:`~repro.sim.config.SimulationConfig`
into a :class:`KernelProgram` — an ``exec``-compiled module whose
``kernel_run(pipeline, seqs, total, capacity, trace_arrays)`` entry point is
the event-driven pipeline loop fused with the configuration's interface tick
and batched stat accounting (see :mod:`repro.sim.kernels.generator`).

Programs are cached per *content hash*: a digest of the primitive spec the
generator consumed (excluding the config's name and seed) plus the generator
version, so every sweep cell sharing a configuration shape compiles once —
including across pool workers when the campaign executor's initializer calls
:func:`prewarm` with the campaign's distinct configs.

Selection follows the PR-7 frontend pattern: ``"specialized"`` is the
default, ``kernel="generic"`` / ``REPRO_SIM_KERNEL=generic`` keeps the
original interpreted loop as the differential-testing oracle.

Generated sources are registered with :mod:`linecache` under a synthetic
``<repro-kernel-...>`` filename, so tracebacks out of exec-compiled code show
real source lines; ``repro report --kernel-source CONFIG`` dumps the same
text for offline reading.
"""

from __future__ import annotations

import hashlib
import linecache
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Optional

from repro.sim.config import SimulationConfig
from repro.sim.kernels.generator import (
    GENERATOR_VERSION,
    KIND_CLASSES,
    build_spec,
    generate_source,
)

__all__ = [
    "GENERATOR_VERSION",
    "KERNELS",
    "KERNEL_ENV",
    "KernelProgram",
    "compile_kernel",
    "content_hash",
    "kernel_source",
    "prewarm",
    "resolve_kernel",
]

#: environment variable selecting the process-wide default kernel
KERNEL_ENV = "REPRO_SIM_KERNEL"

#: recognised kernel selections
KERNELS = ("specialized", "generic")

_DEFAULT_KERNEL = "specialized"


def resolve_kernel(explicit: Optional[str] = None) -> str:
    """The effective kernel selection.

    Explicit argument (a ``kernel=`` parameter or a
    :class:`repro.api.RunOptions` field) beats the *deprecated*
    ``REPRO_SIM_KERNEL`` environment variable — consulted through
    :func:`repro.api.env_fallback`, which emits the ``DeprecationWarning``
    — beats the built-in default (``"specialized"``), mirroring
    :func:`repro.workloads.columnar.resolve_frontend`.
    """
    choice = explicit
    if choice is None:
        from repro.api import env_fallback

        choice = (env_fallback(KERNEL_ENV) or "").lower() or _DEFAULT_KERNEL
    if choice not in KERNELS:
        raise ValueError(f"kernel {choice!r} not in {KERNELS}")
    return choice


@dataclass(frozen=True)
class KernelProgram:
    """A compiled specialized kernel plus its provenance."""

    kind: str
    content_hash: str
    filename: str
    source: str
    entry: Callable


def content_hash(config: SimulationConfig) -> str:
    """Digest of everything the generated code depends on.

    Two configs differing only in ``name``/``seed`` hash identically (the
    spec excludes both), so sweep cells share one compiled kernel.  The
    generator version is part of the spec, so emitted-code changes roll the
    hash over.
    """
    spec = build_spec(config)
    payload = repr(sorted(spec.items())).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


#: per-process program cache, keyed by content hash
_CACHE: Dict[str, KernelProgram] = {}

_CACHE_LIMIT = 512


def _bump(name: str, amount: float = 1.0) -> None:
    """Bump an obs counter iff metrics are on (lazy import: repro.obs pulls
    in the simulator, which imports this module — a top-level import would
    be circular)."""
    from repro.obs import metrics as obs_metrics

    if obs_metrics.enabled():
        obs_metrics.registry.counter(name).inc(amount)


def kernel_source(config: SimulationConfig) -> str:
    """The generated module text for ``config`` (for dumping/debugging)."""
    digest = content_hash(config)
    return generate_source(build_spec(config), digest)


def compile_kernel(config: SimulationConfig, _count: bool = True) -> KernelProgram:
    """Build (or fetch from the per-process cache) ``config``'s kernel.

    Bumps ``kernel.cache.hit``/``kernel.cache.miss`` when metrics are on;
    :func:`prewarm` passes ``_count=False`` so warm-up compiles stay out of
    the hit/miss ledger and the counters stay invariant across job counts
    (prewarmed pool worker vs cold serial path).
    """
    digest = content_hash(config)
    program = _CACHE.get(digest)
    if program is not None:
        if _count:
            _bump("kernel.cache.hit")
        return program
    if _count:
        _bump("kernel.cache.miss")
    spec = build_spec(config)
    source = generate_source(spec, digest)
    filename = f"<repro-kernel-{spec['kind']}-{digest[:8]}>"
    # Register with linecache so tracebacks through exec-compiled code show
    # real source lines with real line numbers.
    linecache.cache[filename] = (
        len(source),
        None,
        source.splitlines(keepends=True),
        filename,
    )
    namespace: Dict[str, object] = {}
    exec(compile(source, filename, "exec"), namespace)
    program = KernelProgram(
        kind=spec["kind"],
        content_hash=digest,
        filename=filename,
        source=source,
        entry=namespace["kernel_run"],
    )
    if len(_CACHE) >= _CACHE_LIMIT:
        _CACHE.clear()
    _CACHE[digest] = program
    return program


def prewarm(configs: Iterable[SimulationConfig]) -> int:
    """Compile the kernels of ``configs`` (deduplicated); returns the count.

    Called from pool-worker initializers so every worker pays each distinct
    configuration's generation+compile cost once, up front, instead of on its
    first cell.
    """
    compiled = 0
    seen = set()
    for config in configs:
        digest = content_hash(config)
        if digest in seen:
            continue
        seen.add(digest)
        compile_kernel(config, _count=False)
        compiled += 1
    if compiled:
        # Counts distinct configs *processed*, not cache misses, so the value
        # is deterministic whether or not the cache was already warm.
        _bump("kernel.prewarm", compiled)
    return compiled
